"""Quickstart: customize a processor for a real-time task set.

Builds a small multi-tasking workload, derives each task's custom-
instruction configuration curve, and selects configurations so the task set
meets all deadlines under EDF with minimum utilization — the core flow of
the DATE 2007 paper.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_task_set, customize, programs_for, simulate_taskset


def main() -> None:
    # 1. Pick a workload: two embedded kernels sharing one processor.
    programs = programs_for(("crc32", "ndes"))

    # 2. Build the task set.  Periods are scaled so the *software-only*
    #    utilization is 1.10 — the set misses deadlines without help.
    task_set = build_task_set(programs, target_utilization=1.10, name="demo")
    print(f"software-only utilization: {task_set.utilization:.3f} (unschedulable)")

    # 3. Ask the DATE 2007 selection algorithm for the best configuration
    #    of custom instructions under a CFU area budget.
    budget = 0.5 * task_set.max_area
    result = customize(task_set, budget, policy="edf")
    print(f"area budget              : {budget:.1f} adders")
    print(f"chosen configurations    : {result.assignment}")
    print(f"utilization after        : {result.utilization_after:.3f}")
    print(f"schedulable              : {result.schedulable}")
    print(f"utilization reduction    : {result.utilization_reduction_pct:.1f}%")

    # 4. Independently validate with the discrete-event EDF simulator.
    import math

    tasks = task_set.tasks
    from repro.rtsched import simulate

    sim = simulate(
        [math.floor(t.period) for t in tasks],
        [
            math.ceil(t.configurations[j].cycles)
            for t, j in zip(tasks, result.assignment)
        ],
        policy="edf",
        horizon=20.0 * max(t.period for t in tasks),
    )
    print(f"simulation confirms      : {sim.schedulable} "
          f"(observed utilization {sim.observed_utilization:.3f})")


if __name__ == "__main__":
    main()
