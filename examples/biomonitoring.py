"""Chapter 8 walkthrough: customizing a wearable bio-monitoring platform.

Two applications share one low-power processor: continuous vital-sign
monitoring (ECG/PPG filtering, peak detection, pulse-transit-time blood-
pressure estimation) and fall detection.  All kernels are fixed-point.
The example customizes each kernel, then schedules the full application mix
on one processor and shows how custom instructions reclaim headroom.

Run:  python examples/biomonitoring.py
"""

from __future__ import annotations

from repro import build_task, customize
from repro.enumeration import build_candidate_library
from repro.rtsched import scale_periods_for_utilization
from repro.selection import build_configuration_curve
from repro.workloads import BIOMONITOR_KERNELS, biomonitor_program


def main() -> None:
    print("== per-kernel customization ==")
    print(f"{'kernel':14} {'sw cycles':>10} {'best cycles':>12} {'speedup':>8} {'area':>7}")
    tasks = []
    for name in BIOMONITOR_KERNELS:
        program = biomonitor_program(name)
        library = build_candidate_library(program)
        curve = build_configuration_curve(program, library.candidates)
        sw, hw = curve[0].cycles, curve[-1].cycles
        print(
            f"{name:14} {sw:10.0f} {hw:12.0f} {sw / hw:8.2f} {curve[-1].area:7.1f}"
        )
        tasks.append(build_task(program))

    print("\n== multi-tasking schedulability on one processor ==")
    task_set = scale_periods_for_utilization(tasks, 1.15, name="biomonitor")
    print(f"software-only utilization: {task_set.utilization:.3f} (over-committed)")
    for frac in (0.25, 0.5, 1.0):
        res = customize(task_set, task_set.max_area * frac, policy="edf")
        print(
            f"  CFU area {frac * 100:3.0f}%: U = {res.utilization_after:.3f}"
            f"  schedulable={res.schedulable}"
            f"  (area used {res.area:.0f} adders)"
        )
    print(
        "\nCustomization turns an infeasible sensing workload into a\n"
        "schedulable one — the headroom can host extra processing or be\n"
        "traded for battery life via voltage scaling."
    )


if __name__ == "__main__":
    main()
