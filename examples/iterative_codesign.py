"""Chapter 5 walkthrough: top-down iterative custom-instruction generation.

Instead of enumerating candidates for every task up front (bottom-up), the
iterative flow zooms into the bottleneck task, the critical basic blocks on
its WCET path, and the heaviest regions inside them — generating custom
instructions with MLGP only where they move the system-level needle.

Run:  python examples/iterative_codesign.py
"""

from __future__ import annotations

import time

from repro import CH5_TASK_SETS, iterative_customization, programs_for


def main() -> None:
    names = CH5_TASK_SETS[2]
    print(f"task set: {', '.join(names)}")
    programs = programs_for(names)
    wcets = [p.wcet() for p in programs]

    u_in = 1.3  # over-committed: unschedulable in software
    periods = [w * len(programs) / u_in for w in wcets]
    print(f"software utilization: {u_in:.2f} -> target 1.00\n")

    t0 = time.perf_counter()
    result = iterative_customization(programs, periods, u_target=1.0)
    elapsed = time.perf_counter() - t0

    print("iteration  bottleneck task  utilization  new CIs")
    for rec in result.records:
        print(
            f"{rec.iteration:9d}  {rec.task:15s}  {rec.utilization:11.3f}"
            f"  {rec.new_cis:7d}"
        )
    print(
        f"\nfinal utilization {result.utilization:.3f} "
        f"({'target met' if result.met_target else 'target NOT met'}) "
        f"in {elapsed:.1f}s"
    )
    print(
        f"custom instructions committed: {len(result.custom_instructions)}, "
        f"hardware area (isomorphism-shared): {result.total_area:.0f} adders"
    )
    by_task: dict[str, int] = {}
    for ci in result.custom_instructions:
        by_task[ci.task] = by_task.get(ci.task, 0) + 1
    print("per-task CI counts:", dict(sorted(by_task.items())))
    print(
        "\nNote how only the bottleneck tasks were customized at all — the\n"
        "point of the top-down flow: no candidate enumeration is wasted on\n"
        "tasks that never constrain schedulability."
    )


if __name__ == "__main__":
    main()
