"""Chapter 6 walkthrough: runtime reconfiguration for a JPEG encoder.

The JPEG pipeline's hot loops need more custom-instruction area than the
fabric offers in a single configuration.  This example partitions the CIS
versions spatially and temporally (thesis Algorithm 6), comparing against
the greedy heuristic, the optimal exhaustive search and a static (single
configuration) design across reconfiguration costs.

Run:  python examples/jpeg_reconfiguration.py
"""

from __future__ import annotations

from repro import exhaustive_partition, greedy_partition, iterative_partition
from repro.reconfig import spatial_select
from repro.workloads import JPEG_MAX_AREA, JPEG_RHO, jpeg_loops, jpeg_trace


def describe(loops, solution) -> str:
    parts: dict[int, list[str]] = {}
    for i, j in enumerate(solution.partition.selection):
        if j == 0:
            continue
        parts.setdefault(solution.partition.config_of[i], []).append(
            f"{loops[i].name}(v{j})"
        )
    return " | ".join(", ".join(v) for v in parts.values()) or "(all software)"


def main() -> None:
    loops, trace = jpeg_loops(), jpeg_trace()
    total_best = sum(lp.versions[lp.best_version].area for lp in loops)
    print(
        f"JPEG hot loops: {len(loops)}; best-version area {total_best:.0f} AU "
        f"vs fabric {JPEG_MAX_AREA:.0f} AU -> reconfiguration needed\n"
    )

    _sel, static_gain = spatial_select(loops, JPEG_MAX_AREA)
    print(f"static single configuration: gain {static_gain:.0f} Kcycles\n")

    print(f"{'rho(K)':>7} {'greedy':>8} {'iterative':>10} {'optimal':>8}  configurations (iterative)")
    for rho in (0.0, 5.0, JPEG_RHO, 30.0, 60.0):
        gr = greedy_partition(loops, trace, JPEG_MAX_AREA, rho)
        it = iterative_partition(loops, trace, JPEG_MAX_AREA, rho)
        ex = exhaustive_partition(loops, trace, JPEG_MAX_AREA, rho, time_budget=60)
        print(
            f"{rho:7.0f} {gr.gain:8.0f} {it.gain:10.0f} {ex.gain:8.0f}"
            f"  k={it.n_configurations}: {describe(loops, it)}"
        )

    print(
        "\nAt low reconfiguration cost the fabric is time-multiplexed across\n"
        "several configurations (gain well above the static bound); as the\n"
        "cost rises the partitioner collapses back to a single configuration."
    )


if __name__ == "__main__":
    main()
