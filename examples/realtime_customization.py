"""Chapter 3 walkthrough: EDF vs RMS customization and energy savings.

Reproduces the DATE 2007 study on one task set: sweeps the CFU area budget,
selects optimal custom-instruction configurations under both scheduling
policies, and estimates the energy saved by pairing customization with
TM5400-style static voltage scaling.

Run:  python examples/realtime_customization.py
"""

from __future__ import annotations

from repro import CH3_TASK_SETS, build_task_set, customize, programs_for
from repro.rtsched import energy_improvement


def main() -> None:
    names = CH3_TASK_SETS[3]
    print(f"task set 3: {', '.join(names)}\n")
    programs = programs_for(names)
    task_set = build_task_set(programs, target_utilization=1.05, name="ts3")
    max_area = task_set.max_area
    print(f"software-only utilization: {task_set.utilization:.3f}")
    print(f"max useful CFU area      : {max_area:.0f} adders\n")

    header = f"{'area%':>6} {'EDF U':>7} {'RMS U':>7} {'EDF energy%':>12} {'RMS energy%':>12}"
    print(header)
    print("-" * len(header))
    for pct in (10, 25, 50, 75, 100):
        budget = max_area * pct / 100
        edf = customize(task_set, budget, policy="edf")
        rms = customize(task_set, budget, policy="rms")

        def fmt_u(res):
            return f"{res.utilization_after:7.3f}" if res.assignment else "     --"

        def fmt_e(res, policy):
            if res.assignment is None:
                return "          --"
            imp = energy_improvement(task_set, None, list(res.assignment), policy)
            return f"{imp:12.1f}" if imp is not None else "          --"

        print(
            f"{pct:5d}% {fmt_u(edf)} {fmt_u(rms)} {fmt_e(edf, 'edf')} {fmt_e(rms, 'rms')}"
        )

    print(
        "\nCustom instructions lower the utilization enough to (a) make an\n"
        "over-committed task set schedulable and (b) let voltage scaling\n"
        "drop to a slower, lower-voltage operating point — the energy win."
    )


if __name__ == "__main__":
    main()
