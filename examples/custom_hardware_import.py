"""Extension walkthrough: feeding measured hardware numbers into the solvers.

The synthetic substrate is only a stand-in: every solver consumes plain
(area, cycles/gain) tables.  This example shows the JSON path a user with
real synthesis results would take — write a CIS-version table for their
application's hot loops, load it back, and run the Chapter 6 partitioner
on it.

Run:  python examples/custom_hardware_import.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import io as repro_io
from repro.reconfig import CISVersion, HotLoop, greedy_partition, iterative_partition
from repro.report import format_table


def main() -> None:
    # 1. A hardware engineer's measured table: loop -> synthesized CIS
    #    versions (areas in LUT-equivalents, gains in Kcycles per run).
    loops = [
        HotLoop("sobel_x", (CISVersion(0, 0), CISVersion(410, 220),
                            CISVersion(840, 395))),
        HotLoop("sobel_y", (CISVersion(0, 0), CISVersion(410, 215),
                            CISVersion(840, 390))),
        HotLoop("magnitude", (CISVersion(0, 0), CISVersion(260, 130))),
        HotLoop("threshold", (CISVersion(0, 0), CISVersion(120, 60))),
        HotLoop("histogram", (CISVersion(0, 0), CISVersion(310, 95))),
    ]
    # Per-frame trace: both Sobel passes, then magnitude/threshold, with a
    # histogram pass every other frame.
    frame = [0, 1, 2, 3]
    trace = []
    for i in range(12):
        trace += frame + ([4] if i % 2 else [])

    # 2. Persist and reload through the JSON artifact format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "edge_detect.json"
        repro_io.save_json(repro_io.hot_loops_to_dict(loops, trace), path)
        print(f"wrote {path.name} ({path.stat().st_size} bytes)")
        loaded_loops, loaded_trace = repro_io.hot_loops_from_dict(
            repro_io.load_json(path)
        )

    # 3. Partition for a fabric of 1000 units with a 25 Kcycle reload.
    max_area, rho = 1000.0, 25.0
    it = iterative_partition(loaded_loops, loaded_trace, max_area, rho)
    gr = greedy_partition(loaded_loops, loaded_trace, max_area, rho)
    print(format_table(
        ["algorithm", "net gain (Kcycles)", "configs"],
        [("iterative", f"{it.gain:.0f}", it.n_configurations),
         ("greedy", f"{gr.gain:.0f}", gr.n_configurations)],
    ))
    print("\nchosen versions (iterative):")
    for i, lp in enumerate(loaded_loops):
        j = it.partition.selection[i]
        v = lp.versions[j]
        where = f"config {it.partition.config_of[i]}" if j else "software"
        print(f"  {lp.name:10s} v{j} (area {v.area:.0f}, gain {v.gain:.0f}) -> {where}")


if __name__ == "__main__":
    main()
