"""Extension walkthrough: the full Chapter 6 flow from source model to fabric.

Starts from a multi-kernel streaming *program* (not hand-written loop
tables): hot loops are detected from the profile, CIS version curves are
generated per loop by candidate enumeration + selection, the loop trace is
derived from the syntax tree, and the iterative partitioner then decides
which versions share which fabric configuration — the complete design flow
of thesis Figure 6.3.

Run:  python examples/pipeline_extraction.py
"""

from __future__ import annotations

from repro.reconfig import (
    extract_hot_loops,
    greedy_partition,
    iterative_partition,
    spatial_select,
)
from repro.report import format_table, sparkline
from repro.workloads import synth_pipeline_program


def main() -> None:
    program = synth_pipeline_program("videoapp", n_kernels=6, frames=24)
    print(f"program {program.name}: {len(program.basic_blocks)} blocks, "
          f"avg cycles {program.avg_cycles():.0f}")

    extracted = extract_hot_loops(program)
    loops, trace = list(extracted.loops), list(extracted.trace)
    print(f"hot loops: {len(loops)} (coverage {extracted.coverage:.0%}); "
          f"trace length {len(trace)}\n")

    rows = []
    for lp in loops:
        areas = [v.area for v in lp.versions]
        gains = [v.gain for v in lp.versions]
        rows.append(
            (lp.name, len(lp.versions), f"{max(areas):.0f}",
             f"{max(gains):.0f}", sparkline(gains))
        )
    print(format_table(
        ["loop", "versions", "max area", "max gain", "gain curve"], rows
    ))

    max_area = 0.4 * sum(max(v.area for v in lp.versions) for lp in loops)
    print(f"\nfabric: one configuration = {max_area:.0f} adders")
    _sel, static_gain = spatial_select(loops, max_area)
    rows = [("static (no reconfig)", f"{static_gain:.0f}", 1)]
    for rho in (0.0, 2000.0, 20000.0):
        it = iterative_partition(loops, trace, max_area, rho)
        gr = greedy_partition(loops, trace, max_area, rho)
        rows.append((f"iterative rho={rho:.0f}", f"{it.gain:.0f}", it.n_configurations))
        rows.append((f"greedy    rho={rho:.0f}", f"{gr.gain:.0f}", gr.n_configurations))
    print(format_table(["solution", "net gain", "configs"], rows))
    print(
        "\nCheap reconfiguration lets the pipeline time-multiplex the fabric\n"
        "per stage (several configurations); as the cost rises the optimum\n"
        "collapses back to the single best static configuration."
    )


if __name__ == "__main__":
    main()
