"""Extension walkthrough: customizing a multiprocessor SoC.

Distributes a task set over M identical processors (worst-fit by
utilization), then splits a *global* CFU-area budget across the processors
with a min-max dynamic program so the bottleneck processor's utilization is
minimized — extending the DATE 2007 single-processor flow to partitioned
EDF (thesis Section 2.4 leaves MPSoC customization as related/future work).

Run:  python examples/mpsoc_customization.py
"""

from __future__ import annotations

from repro.core import build_task, customize_mpsoc
from repro.report import format_table
from repro.workloads import programs_for


def main() -> None:
    names = ("crc32", "lms", "ndes", "adpcm", "edn", "jfdctint")
    programs = programs_for(names)
    tasks = [build_task(p) for p in programs]
    # Tighten periods so one processor alone would be overloaded.
    from repro.rtsched import scale_periods_for_utilization

    task_set = scale_periods_for_utilization(tasks, 1.6, name="mpsoc")
    total_area = 0.5 * task_set.max_area
    print(f"6 tasks, software utilization {task_set.utilization:.2f} "
          f"(>1: needs more than one processor)\n")

    rows = []
    for m in (1, 2, 3):
        res = customize_mpsoc(task_set.tasks, m, total_area)
        rows.append(
            (
                m,
                f"{res.max_utilization:.3f}",
                "yes" if res.schedulable else "no",
                " | ".join(",".join(t) for t in res.processor_tasks),
            )
        )
    print(format_table(
        ["processors", "max U", "schedulable", "task partition"], rows
    ))

    res = customize_mpsoc(task_set.tasks, 2, total_area)
    print("\nbudget split across processors (2-CPU case):")
    for i, (budget, util) in enumerate(zip(res.budgets, res.utilizations)):
        print(f"  cpu{i}: area {budget:7.1f}  ->  U = {util:.3f}")
    print(
        "\nThe min-max allocation pushes area to the bottleneck processor\n"
        "first — equal splits would leave one side unschedulable longer."
    )


if __name__ == "__main__":
    main()
