"""Chapter 4 walkthrough: exact vs ε-approximate Pareto trade-offs.

Shows both stages of the approximation scheme: the intra-task workload-area
curve of a single benchmark, then the inter-task utilization-area curve of
a whole task set, with the ε-approximation guarantee checked against the
exact curves.

Run:  python examples/pareto_tradeoffs.py
"""

from __future__ import annotations

import time

from repro import (
    CIOption,
    TaskCurve,
    approx_utilization_curve,
    approx_workload_curve,
    build_task,
    exact_utilization_curve,
    exact_workload_curve,
    get_program,
    programs_for,
)
from repro.enumeration import build_candidate_library
from repro.pareto import is_eps_cover
from repro.selection import select_greedy


def intra_stage() -> None:
    print("== intra-task stage: workload-area curve of g721decode ==")
    program = get_program("g721decode")
    library = build_candidate_library(program)
    chosen = select_greedy(library.candidates, float("inf"))[:40]
    options = [
        CIOption(
            delta=library.candidates[i].total_gain,
            area=max(1, round(library.candidates[i].area * 50)),  # gate units
        )
        for i in chosen
    ]
    base = program.avg_cycles()

    t0 = time.perf_counter()
    exact = exact_workload_curve(base, options)
    t_exact = time.perf_counter() - t0
    for eps in (0.69, 3.0):
        t0 = time.perf_counter()
        approx = approx_workload_curve(base, options, eps)
        t_approx = time.perf_counter() - t0
        print(
            f"eps={eps:4.2f}: {len(approx):3d} points vs {len(exact)} exact "
            f"({t_exact / max(t_approx, 1e-9):5.1f}x faster), "
            f"eps-cover={is_eps_cover(approx, exact, eps)}"
        )


def inter_stage() -> None:
    print("\n== inter-task stage: utilization-area curve of a task set ==")
    programs = programs_for(("crc32", "lms", "ndes"))
    tasks = [build_task(p, max_configs=10) for p in programs]
    curves = [
        TaskCurve(
            period=t.period,
            workloads=tuple(c.cycles for c in t.configurations),
            areas=tuple(round(c.area * 50) for c in t.configurations),
        )
        for t in tasks
    ]
    exact = exact_utilization_curve(curves)
    approx = approx_utilization_curve(curves, eps=0.69)
    print(f"exact curve: {len(exact)} points; eps=0.69 curve: {len(approx)} points")
    print(f"eps-cover holds: {is_eps_cover(approx, exact, 0.69)}\n")
    print(f"{'area(gates)':>12} {'utilization':>12}  configuration")
    for p in approx:
        print(f"{p.cost:12.0f} {p.value:12.4f}  {p.choice}")


def main() -> None:
    intra_stage()
    inter_stage()


if __name__ == "__main__":
    main()
