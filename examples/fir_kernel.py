"""A real FIR-filter kernel ingested as a first-class workload.

The decorated function below is ordinary Python — you can call it, test
it, profile it.  `repro.frontend` compiles it into the same structured
program model (`Seq`/`Loop`/`IfElse` over dataflow graphs) the synthetic
benchmarks use, so the whole stack — candidate enumeration, configuration
curves, Pareto selection, MLGP, the job service — runs on it unchanged.

This file doubles as the bundled kernel for the CLI quickstart:

    python -m repro ingest examples/fir_kernel.py --dot fir.dot
    python -m repro curve fir_filter.json

Run:  python examples/fir_kernel.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.frontend import ingest_function, kernel  # noqa: E402


@kernel(bounds={"i": 32}, avg_trips={"i": 24}, taken_probs={0: 0.1})
def fir_filter(x, h, n, acc):
    """A saturating fixed-point FIR tap loop with output scaling."""
    for i in range(n):
        acc = acc + x[i] * h[i]  # fuses into a 3-input MAC
    acc = acc >> 2
    if acc > 32767:  # saturate (taken rarely, per the hint)
        acc = 32767
    lo = -32768 if acc < -32768 else acc
    return lo


def main() -> None:
    # The function still runs as plain Python.
    taps = [1, 2, 3, 4]
    assert fir_filter([5, 6, 7, 8], taps, 4, 0) == (5 + 12 + 21 + 32) >> 2

    # Compile it into a Program: loop bound/trip and branch probability
    # come from the @kernel hints above.
    program = ingest_function(fir_filter)
    max_bb, avg_bb = program.block_stats()
    print(f"ingested {program.name!r}: {len(program.basic_blocks)} blocks, "
          f"max/avg size {max_bb}/{avg_bb:.1f}")
    print(f"wcet {program.wcet():.0f} cycles, "
          f"avg {program.avg_cycles():.1f} cycles")

    # The front-end output is a normal workload: identify custom
    # instructions and build its area/cycles configuration curve.
    from repro.core import build_task

    task = build_task(program, use_cache=False)
    print("configuration curve (area -> cycles):")
    for cfg in task.configurations:
        print(f"  {cfg.area:6.1f} adders -> {cfg.cycles:8.0f} cycles")
    speedup = task.configurations[0].cycles / task.configurations[-1].cycles
    print(f"best speedup {speedup:.2f}x")


if __name__ == "__main__":
    main()
