"""Chapter 4 benches: Tables 4.1/4.2 and Figure 4.4.

* Table 4.1 — composition of the five task sets (6-10 tasks each);
* Table 4.2 — analysis-time speedup of the ε-approximation scheme over the
  exact Pareto computation for ε in {0.21, 0.44, 0.69, 3.0};
* Figure 4.4 — exact vs. ε-approximate Pareto curves: (a) workload-area for
  g721decode (intra-task), (b) utilization-area for task set 1 (inter-task).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import cached_task, emit, once
from repro.enumeration import build_candidate_library
from repro.pareto import (
    CIOption,
    TaskCurve,
    approx_utilization_curve,
    approx_workload_curve,
    exact_utilization_curve,
    exact_workload_curve,
    is_eps_cover,
)
from repro.workloads import CH4_TASK_SETS, get_program

EPSILONS = (0.21, 0.44, 0.69, 3.0)

#: Cost-axis unit: the thesis reports hardware area in logic gates
#: (1K - 23K gates per task); one 32-bit adder is about 50 gates.
GATES_PER_ADDER = 50


def _intra_options(name: str, cap: int = 60) -> tuple[float, list[CIOption]]:
    """Per-task CI options (workload delta, integer area) for the intra stage."""
    program = get_program(name)
    library = build_candidate_library(program)
    # Keep the strongest non-overlapping candidates as independent options.
    from repro.selection import select_greedy

    chosen = select_greedy(library.candidates, float("inf"))[:cap]
    options = [
        CIOption(
            delta=library.candidates[i].total_gain,
            area=max(1, round(library.candidates[i].area * GATES_PER_ADDER)),
        )
        for i in chosen
    ]
    base = program.avg_cycles()
    return base, options


def _task_curves(names: tuple[str, ...]) -> list[TaskCurve]:
    curves = []
    seen: dict[str, int] = {}
    for name in names:
        salt = seen.get(name, 0)
        seen[name] = salt + 1
        task = cached_task(name, salt)
        curves.append(
            TaskCurve(
                period=task.period,
                workloads=tuple(c.cycles for c in task.configurations),
                areas=tuple(
                    max(0, round(c.area * GATES_PER_ADDER))
                    for c in task.configurations
                ),
            )
        )
    return curves


def test_table_4_1(benchmark):
    def run():
        return [
            f"{k} | {len(names)} tasks | {', '.join(names)}"
            for k, names in sorted(CH4_TASK_SETS.items())
        ]

    rows = once(benchmark, run)
    emit("table_4_1_task_sets", ["Task set | Size | Benchmarks", *rows])


def test_table_4_2(benchmark):
    """Approximation-scheme speedup over the exact Pareto computation."""

    def run():
        lines = ["eps    " + "  ".join(f"ts{k:>6d}" for k in sorted(CH4_TASK_SETS))]
        exact_times = {}
        for k, names in sorted(CH4_TASK_SETS.items()):
            curves = _task_curves(names)
            t0 = time.perf_counter()
            exact_utilization_curve(curves)
            exact_times[k] = time.perf_counter() - t0
        for eps in EPSILONS:
            cells = []
            for k, names in sorted(CH4_TASK_SETS.items()):
                curves = _task_curves(names)
                t0 = time.perf_counter()
                approx_utilization_curve(curves, eps)
                dt = time.perf_counter() - t0
                speedup = exact_times[k] / dt if dt > 0 else float("inf")
                cells.append(f"{speedup:8.1f}")
            lines.append(f"{eps:5.2f}  " + "  ".join(cells))
        return lines

    lines = once(benchmark, run)
    emit("table_4_2_approx_speedup", lines)


def test_figure_4_4a(benchmark):
    """Exact vs ε-approximate workload-area curves for g721decode."""

    def run():
        base, options = _intra_options("g721decode")
        exact = exact_workload_curve(base, options)
        lines = [f"exact points: {len(exact)}"]
        for eps in (0.69, 3.0):
            approx = approx_workload_curve(base, options, eps)
            cover = is_eps_cover(approx, exact, eps)
            lines.append(
                f"eps={eps:4.2f}: points={len(approx)} "
                f"({100 * (1 - len(approx) / max(1, len(exact))):.0f}% fewer) "
                f"eps-cover={cover}"
            )
            lines.extend(
                f"  {p.cost:10.0f} {p.value:14.0f}" for p in approx
            )
        return lines, exact

    lines, exact = once(benchmark, run)
    emit("figure_4_4a_intra_pareto", lines)
    assert len(exact) >= 2
    assert all("eps-cover=True" in l for l in lines if "eps-cover" in l)


def test_figure_4_4b(benchmark):
    """Exact vs ε-approximate utilization-area curves for task set 1."""

    def run():
        curves = _task_curves(CH4_TASK_SETS[1])
        exact = exact_utilization_curve(curves)
        lines = [f"exact points: {len(exact)}"]
        for eps in (0.69, 3.0):
            approx = approx_utilization_curve(curves, eps)
            cover = is_eps_cover(approx, exact, eps)
            lines.append(
                f"eps={eps:4.2f}: points={len(approx)} eps-cover={cover}"
            )
            lines.extend(
                f"  {p.cost:10.0f} {p.value:10.4f}" for p in approx
            )
        return lines

    lines = once(benchmark, run)
    emit("figure_4_4b_inter_pareto", lines)
    assert all("eps-cover=True" in l for l in lines if "eps-cover" in l)
