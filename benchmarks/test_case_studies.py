"""Extension case-study benches beyond the thesis's own evaluation.

* SDR mode switching — the thesis's Section 2.1 motivating scenario
  ("runtime selection of encryption standard"): static vs reconfigurable
  fabric across mode dwell lengths and reconfiguration costs;
* program-derived JPEG-like pipeline — the full Figure 6.3 flow from a
  program model through hot-loop extraction to fabric partitioning.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit, once
from repro.reconfig import (
    extract_hot_loops,
    greedy_partition,
    iterative_partition,
    spatial_select,
)
from repro.workloads import SDR_MAX_AREA, sdr_loops, sdr_trace, synth_pipeline_program


def test_sdr_mode_switching(benchmark):
    """Static vs reconfigurable design across mode dwell lengths."""

    def run():
        lines = ["dwell_frames  rho   static  reconfig  configs  advantage"]
        for dwell in (5, 20, 80, 320):
            for rho in (20.0, 100.0, 500.0):
                loops = sdr_loops(frames_per_dwell=dwell)
                trace = sdr_trace(frames_per_dwell=dwell)
                _sel, static = spatial_select(loops, SDR_MAX_AREA)
                it = iterative_partition(loops, trace, SDR_MAX_AREA, rho)
                lines.append(
                    f"{dwell:12d}  {rho:4.0f}  {static:6.0f}  {it.gain:8.0f}"
                    f"  {it.n_configurations:7d}  {it.gain / static:9.2f}"
                )
        return lines

    lines = once(benchmark, run)
    emit("case_study_sdr_mode_switching", lines)
    # Shape: advantage grows with dwell length at fixed rho; at very short
    # dwells the partitioner falls back to the static design (ratio 1.0).
    for rho in ("20", "100", "500"):
        series = [
            float(l.split()[5]) for l in lines[1:] if l.split()[1] == rho
        ]
        assert series == sorted(series)
        assert series[-1] >= 1.0
    long_dwell_cheap = [
        float(l.split()[5])
        for l in lines[1:]
        if l.split()[0] == "320" and l.split()[1] == "20"
    ][0]
    assert long_dwell_cheap > 1.5


def test_pipeline_extraction_flow(benchmark):
    """Program model -> hot loops -> partitioned fabric (Figure 6.3)."""

    def run():
        program = synth_pipeline_program("videoapp", n_kernels=6, frames=24)
        extracted = extract_hot_loops(program)
        loops, trace = list(extracted.loops), list(extracted.trace)
        max_area = 0.4 * sum(max(v.area for v in lp.versions) for lp in loops)
        lines = [
            f"hot loops: {len(loops)}  coverage: {extracted.coverage:.2f}  "
            f"trace: {len(trace)}  fabric: {max_area:.0f}",
            "rho     static  greedy  iterative  configs",
        ]
        _sel, static = spatial_select(loops, max_area)
        for rho in (0.0, 2000.0, 20000.0):
            gr = greedy_partition(loops, trace, max_area, rho)
            it = iterative_partition(loops, trace, max_area, rho)
            lines.append(
                f"{rho:6.0f}  {static:6.0f}  {gr.gain:6.0f}  {it.gain:9.0f}"
                f"  {it.n_configurations:7d}"
            )
        return lines

    lines = once(benchmark, run)
    emit("case_study_pipeline_extraction", lines)
    # Shape: with free reconfiguration the pipeline beats static clearly.
    free = lines[2].split()
    assert float(free[3]) > float(free[1])
