"""Partitioning-layer speed harness (perf trajectory for future PRs).

Times the Chapter 5-7 partitioning stack on the Table 5.1 workload and
writes ``benchmarks/results/BENCH_partitioning.json``:

* ``mlgp.engine`` — one full region sweep per benchmark, reference vs
  fast MLGP engine, both cache-cold and cache-free; the engines' results
  are asserted bit-identical while timing.
* ``mlgp.pipeline`` — the repeated same-seed sweep the ch5 generation
  pipeline performs, pre-PR stack (reference engine, no region cache)
  vs current stack (fast engine + content-keyed ``mlgp`` cache).
* ``kway`` — reference vs fast k-way refinement on a seeded graph.
* ``reconfig`` / ``dp`` — cold vs warm content-cache runs of the Ch. 6
  iterative partitioner and the Ch. 7 DP.

Guards: the MLGP engine alone must be >= 2x; the pipeline layer
(engine + cache) must be >= 5x on the repeated sweep; warm cache runs
must beat cold ones.
"""

from __future__ import annotations

import random
import time

from benchmarks.common import emit_json
from repro import cache
from repro.mlgp import mlgp_fast
from repro.mlgp.mlgp import mlgp_partition
from repro.mtreconfig.dp import dp_solution
from repro.mtreconfig.workload import synthetic_reconfig_tasks
from repro.reconfig.extract import extract_hot_loops
from repro.reconfig.iterative import iterative_partition
from repro.reconfig.kwaypart import kway_partition
from repro.workloads import get_program

#: The thesis Table 5.1 benchmark set (the MLGP evaluation workload).
TABLE_5_1 = (
    "adpcm",
    "sha",
    "jfdctint",
    "g721decode",
    "lms",
    "ndes",
    "rijndael",
    "3des",
    "aes",
    "blowfish",
)

#: Repetitions of the same-seed sweep in the pipeline-layer comparison.
PIPELINE_REPS = 3


def _region_work(name: str) -> list[tuple[object, tuple, int]]:
    """(dfg, region, seed) jobs for one benchmark's full region sweep."""
    prog = get_program(name)
    work = []
    for bi, blk in enumerate(prog.basic_blocks):
        for region in blk.dfg.regions():
            if len(region) >= 2:
                work.append((blk.dfg, region, bi))
    return work


def _sweep(work, engine: str, use_cache: bool) -> tuple[float, list]:
    """Run one region sweep; returns (seconds, results)."""
    results = []
    t0 = time.perf_counter()
    for dfg, region, seed in work:
        r = mlgp_partition(
            dfg, region, seed=seed, engine=engine, use_cache=use_cache
        )
        results.append((r.partitions, r.gains, r.areas))
    return time.perf_counter() - t0, results


def _bench_mlgp_engine() -> dict:
    """Engine-pure comparison: reference vs fast, no caches anywhere."""
    per_benchmark = {}
    ref_total = fast_total = 0.0
    for name in TABLE_5_1:
        work = _region_work(name)
        t_ref, ref_results = _sweep(work, "reference", use_cache=False)
        mlgp_fast._CTX_CACHE.clear()  # cold context, engine pays full setup
        t_fast, fast_results = _sweep(work, "fast", use_cache=False)
        assert ref_results == fast_results, f"engines diverged on {name}"
        ref_total += t_ref
        fast_total += t_fast
        per_benchmark[name] = {
            "regions": len(work),
            "reference_seconds": round(t_ref, 4),
            "fast_seconds": round(t_fast, 4),
            "speedup": round(t_ref / t_fast, 2),
        }
    return {
        "workload": "table_5_1_full_region_sweep",
        "per_benchmark": per_benchmark,
        "reference_seconds": round(ref_total, 4),
        "fast_seconds": round(fast_total, 4),
        "speedup": round(ref_total / fast_total, 2),
    }


def _bench_mlgp_pipeline() -> dict:
    """Layer comparison on the repeated same-seed sweep of the pipeline.

    Pre-PR the generation pipeline re-ran the reference engine on every
    repeated (dfg, region, seed) visit — there was no region-level cache.
    The current stack runs the fast engine behind the content-keyed
    ``mlgp`` cache, so repeats are hits.
    """
    work = [job for name in TABLE_5_1 for job in _region_work(name)]
    pre_total = post_total = 0.0
    pre_last = post_last = None
    cache.clear()
    mlgp_fast._CTX_CACHE.clear()
    for _rep in range(PIPELINE_REPS):
        t, pre_last = _sweep(work, "reference", use_cache=False)
        pre_total += t
    for _rep in range(PIPELINE_REPS):
        t, post_last = _sweep(work, "fast", use_cache=True)
        post_total += t
    assert pre_last == post_last, "pipeline stacks diverged"
    return {
        "workload": "table_5_1_repeated_sweep",
        "reps": PIPELINE_REPS,
        "regions_per_rep": len(work),
        "pre_pr_seconds": round(pre_total, 4),
        "current_seconds": round(post_total, 4),
        "speedup": round(pre_total / post_total, 2),
    }


def _bench_kway() -> dict:
    rng = random.Random(1500)
    n, density = 1500, 0.006
    edges = {}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                edges[(u, v)] = rng.uniform(0.5, 10.0)
    for u in range(n - 1):
        edges.setdefault((u, u + 1), rng.uniform(0.5, 5.0))
    weights = [rng.uniform(0.5, 4.0) for _ in range(n)]
    best_ref = best_fast = float("inf")
    for _rep in range(3):
        t0 = time.perf_counter()
        ref = kway_partition(n, edges, weights, k=8, seed=1,
                             engine="reference")
        best_ref = min(best_ref, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fast = kway_partition(n, edges, weights, k=8, seed=1, engine="fast")
        best_fast = min(best_fast, time.perf_counter() - t0)
        assert ref == fast, "k-way engines diverged"
    return {
        "workload": f"random_graph_n{n}_k8",
        "edges": len(edges),
        "reference_seconds": round(best_ref, 4),
        "fast_seconds": round(best_fast, 4),
        "speedup": round(best_ref / best_fast, 2),
    }


def _bench_reconfig_warm() -> dict:
    ex = extract_hot_loops(get_program("3des"))
    cache.clear()
    t0 = time.perf_counter()
    cold = iterative_partition(ex.loops, ex.trace, 150.0, 400.0, seed=2)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = iterative_partition(ex.loops, ex.trace, 150.0, 400.0, seed=2)
    warm_s = time.perf_counter() - t0
    assert cold.partition == warm.partition and cold.gain == warm.gain
    return {
        "workload": "3des_hot_loops",
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / max(warm_s, 1e-9), 1),
    }


def _bench_dp_warm() -> dict:
    tasks = synthetic_reconfig_tasks(16, seed=5)
    cache.clear()
    t0 = time.perf_counter()
    cold = dp_solution(tasks, 2000.0, 5000.0)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = dp_solution(tasks, 2000.0, 5000.0)
    warm_s = time.perf_counter() - t0
    assert cold.solution == warm.solution
    return {
        "workload": "synthetic_16_tasks",
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / max(warm_s, 1e-9), 1),
    }


def test_partitioning_speed_trajectory():
    """End-to-end partitioning perf snapshot with correctness asserts."""
    engine = _bench_mlgp_engine()
    pipeline = _bench_mlgp_pipeline()
    kway = _bench_kway()
    reconfig = _bench_reconfig_warm()
    dp = _bench_dp_warm()

    payload = {
        "mlgp": {"engine": engine, "pipeline": pipeline},
        "kway": kway,
        "reconfig": reconfig,
        "dp": dp,
        "speedups": {
            "mlgp_engine": engine["speedup"],
            "mlgp_pipeline": pipeline["speedup"],
            "kway_engine": kway["speedup"],
            "reconfig_warm_cache": reconfig["speedup"],
            "dp_warm_cache": dp["speedup"],
        },
    }
    emit_json("BENCH_partitioning", payload)

    assert engine["speedup"] >= 2.0, (
        f"MLGP fast engine only {engine['speedup']}x vs reference "
        "(soft guard: >= 2x)"
    )
    assert pipeline["speedup"] >= 5.0, (
        f"partitioning pipeline only {pipeline['speedup']}x vs the "
        "pre-PR stack (target: >= 5x)"
    )
    assert kway["speedup"] > 1.0, "fast k-way slower than reference"
    assert reconfig["speedup"] > 1.0, "warm reconfig cache not faster"
    assert dp["speedup"] > 1.0, "warm dp cache not faster"
