"""Customization-as-a-service throughput harness (``BENCH_service.json``).

Measures what the job server buys over batch CLI invocations on a
repeated mixed chapter-3-to-7 workload (identify / curve / pareto / mlgp
/ reconfig / mtreconfig):

* ``serial_sweep_s`` — the baseline: every job computed directly with
  cold caches, like a loop of independent ``repro`` CLI invocations
  (each CLI process starts with an empty in-process cache; process
  startup itself is *not* charged, so the baseline is conservative);
* ``cold_sweep_s``   — the same sweep submitted through the server with
  cold caches: the one-time cost of filling the result store;
* ``warm_sweep_s``   — the sweep repeated through the server: every
  submit is an at-rest result hit;
* ``warm_sweep_journal_s`` — the warm sweep against a server with the
  write-ahead job journal enabled: the durability tax, asserted to stay
  under 10% of warm throughput;
* the coalescing phase — N concurrent identical requests against a cold
  key must collapse to exactly one computation (the counter is asserted
  here and recorded in the payload).

The server runs inline (no process pool): the bench measures dedup and
cache-tier effects, not process fan-out, and inline keeps it meaningful
under the chaos job's ``REPRO_NO_PROCESS_POOL=1``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from benchmarks.common import emit_json, once
from repro import cache
from repro.service import jobs as jobs_mod
from repro.service.client import ServiceClient
from repro.service.server import ServerThread

#: One sweep of the mixed workload: every pipeline chapter represented,
#: sized so a sweep stays in CI scale.
MIX: tuple[tuple[str, dict], ...] = (
    ("identify", {"benchmark": "crc32"}),
    ("identify", {"benchmark": "bitcount"}),
    ("curve", {"benchmark": "crc32"}),
    ("curve", {"benchmark": "sha"}),
    ("pareto", {"benchmarks": ["crc32", "bitcount"]}),
    ("mlgp", {"benchmarks": ["crc32"], "utilization": 1.05}),
    ("reconfig", {}),
    ("mtreconfig", {"benchmarks": [], "tasks": 6}),
)

#: Warm sweeps through the service (the repeated-workload phase).
WARM_SWEEPS = 5
#: Concurrent identical requests in the coalescing phase.
COALESCE_CLIENTS = 8


def _serial_sweep() -> float:
    """The equivalent serial CLI loop: cold caches for every job."""
    t0 = time.perf_counter()
    for kind, params in MIX:
        cache.clear()  # each CLI invocation starts cold
        _, norm = jobs_mod.resolve_job(kind, params)
        jobs_mod.compute_job(kind, norm)
    return time.perf_counter() - t0


def _sweep_via(client: ServiceClient) -> tuple[float, list[dict]]:
    t0 = time.perf_counter()
    rows = []
    for kind, params in MIX:
        t1 = time.perf_counter()
        resp = client.submit(kind, params)
        rows.append({
            "kind": kind,
            "latency_s": time.perf_counter() - t1,
            "disposition": resp["disposition"],
        })
    return time.perf_counter() - t0, rows


def _coalesce_phase(address: dict) -> dict:
    """N concurrent identical cold requests; returns the dedup counters."""
    cache.clear()  # make the key cold again
    results: list[str] = []
    lock = threading.Lock()

    def go() -> None:
        with ServiceClient(**address) as c:
            resp = c.submit("curve", {"benchmark": "sha"})
            with lock:
                results.append(resp["disposition"])

    threads = [threading.Thread(target=go) for _ in range(COALESCE_CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return {
        "clients": COALESCE_CLIENTS,
        "dispositions": sorted(results),
        "computed": results.count("queued"),
        "coalesced": results.count("coalesced"),
        "cached": results.count("cached"),
    }


def test_service_perf(benchmark):
    def run() -> dict:
        cache.set_enabled(True)
        cache.set_cache_dir(None)
        cache.reset_backend()
        try:
            serial_s = _serial_sweep()

            cache.clear()
            with ServerThread(use_processes=False, workers=2) as srv:
                with ServiceClient(**srv.address) as client:
                    cold_s, cold_rows = _sweep_via(client)
                    warm_t0 = time.perf_counter()
                    warm_rows: list[dict] = []
                    for _ in range(WARM_SWEEPS):
                        sweep_s, rows = _sweep_via(client)
                        warm_rows.extend(rows)
                    warm_total = time.perf_counter() - warm_t0
                    # The durability tax: the same warm sweep against a
                    # second server journaling every lifecycle record.
                    # The at-rest store is still warm (the coalesce
                    # phase below clears it), so the delta is pure
                    # journal overhead.
                    with tempfile.TemporaryDirectory(
                        prefix="repro-bench-"
                    ) as tmp:
                        journal = os.path.join(tmp, "journal.jsonl")
                        with ServerThread(
                            use_processes=False, workers=2, journal=journal
                        ) as jsrv:
                            with ServiceClient(**jsrv.address) as jclient:
                                jwarm_t0 = time.perf_counter()
                                jwarm_rows: list[dict] = []
                                for _ in range(WARM_SWEEPS):
                                    _, rows = _sweep_via(jclient)
                                    jwarm_rows.extend(rows)
                                jwarm_total = (
                                    time.perf_counter() - jwarm_t0
                                )
                                journal_stats = jclient.health().get(
                                    "journal", {}
                                )

                    coalesce = _coalesce_phase(srv.address)
                    counters = client.stats()["counters"]

            warm_sweep_s = warm_total / WARM_SWEEPS
            warm_sweep_journal_s = jwarm_total / WARM_SWEEPS
            n_jobs = len(MIX)
            payload = {
                "bench": "service",
                "mix": [
                    {"kind": k, "params": p} for k, p in MIX
                ],
                "warm_sweeps": WARM_SWEEPS,
                "serial_sweep_s": serial_s,
                "cold_sweep_s": cold_s,
                "warm_sweep_s": warm_sweep_s,
                "warm_sweep_journal_s": warm_sweep_journal_s,
                "journal_overhead_frac": (
                    warm_sweep_journal_s / max(warm_sweep_s, 1e-9) - 1.0
                ),
                "warm_hit_rate_journal": sum(
                    r["disposition"] == "cached" for r in jwarm_rows
                ) / len(jwarm_rows),
                "journal": journal_stats,
                "speedup_warm_vs_serial": serial_s / max(warm_sweep_s, 1e-9),
                "jobs_per_sec_warm": n_jobs * WARM_SWEEPS / max(
                    warm_total, 1e-9
                ),
                "warm_hit_rate": sum(
                    r["disposition"] == "cached" for r in warm_rows
                ) / len(warm_rows),
                "cold_latency_s": {
                    r["kind"]: r["latency_s"] for r in cold_rows
                },
                "coalescing": coalesce,
                "coalescing_ratio": coalesce["coalesced"] / coalesce["clients"],
                "server_counters": counters,
            }
            return payload
        finally:
            cache.reset_cache_dir()
            cache.reset_backend()
            cache.clear()

    payload = once(benchmark, run)
    emit_json("BENCH_service", payload)

    # Exactly-once under concurrency: the dedup contract of the service.
    assert payload["coalescing"]["computed"] == 1, payload["coalescing"]
    assert (
        payload["coalescing"]["coalesced"] + payload["coalescing"]["cached"]
        == COALESCE_CLIENTS - 1
    )
    # Every warm submit was an at-rest hit — journaled or not (cached
    # submits never queue, so they are never journaled either).
    assert payload["warm_hit_rate"] == 1.0
    assert payload["warm_hit_rate_journal"] == 1.0
    # The durability tax on warm throughput stays under 10% (with a
    # small absolute floor: warm sweeps are single-digit milliseconds,
    # where scheduler noise would dominate a pure ratio).
    assert payload["warm_sweep_journal_s"] <= max(
        1.10 * payload["warm_sweep_s"], payload["warm_sweep_s"] + 0.05
    ), payload
    # Acceptance bar: a warm sweep through the service beats the serial
    # cold CLI loop by >= 5x (in practice it is orders of magnitude).
    assert payload["speedup_warm_vs_serial"] >= 5.0, payload
