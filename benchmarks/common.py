"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the thesis evaluation:
the series/rows are printed and also written to ``benchmarks/results/`` so
they survive pytest's output capturing.  Expensive per-benchmark task
construction is cached across benches within a session.
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.core import build_task
from repro.rtsched import PeriodicTask, TaskSet, scale_periods_for_utilization
from repro.workloads import get_program

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines: list[str]) -> None:
    """Print a table/series and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@functools.lru_cache(maxsize=None)
def cached_task(name: str, salt: int = 0, objective: str = "avg") -> PeriodicTask:
    """Build (and cache) a periodic task with its configuration curve."""
    return build_task(get_program(name, salt), objective=objective)


def cached_task_set(
    names: tuple[str, ...], utilization: float, label: str = ""
) -> TaskSet:
    """A task set over cached tasks with periods scaled to *utilization*."""
    seen: dict[str, int] = {}
    tasks = []
    for name in names:
        salt = seen.get(name, 0)
        seen[name] = salt + 1
        tasks.append(cached_task(name, salt))
    return scale_periods_for_utilization(tasks, utilization, name=label)


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
