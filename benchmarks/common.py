"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the thesis evaluation:
the series/rows are printed and also written to ``benchmarks/results/`` so
they survive pytest's output capturing.  Expensive per-benchmark task
construction is cached across benches within a session.

The module also provides a per-stage wall-clock timing harness
(:func:`stage`, :func:`stage_report`) and a JSON emitter
(:func:`emit_json`) used by the identification-pipeline speed bench to
persist ``BENCH_identification.json`` — the perf trajectory consumed by
future PRs.
"""

from __future__ import annotations

import functools
import json
import os
import platform
import time
from contextlib import contextmanager
from pathlib import Path

from repro import obs
from repro.core import build_task
from repro.core.flow import build_tasks
from repro.rtsched import PeriodicTask, TaskSet, scale_periods_for_utilization
from repro.workloads import get_program

RESULTS_DIR = Path(__file__).parent / "results"

#: Accumulated wall-clock seconds and entry counts per stage name.
_STAGE_SECONDS: dict[str, float] = {}
_STAGE_CALLS: dict[str, int] = {}


def emit(name: str, lines: list[str]) -> None:
    """Print a table/series and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


#: Version of the shared ``BENCH_*.json`` envelope (``schema_version``,
#: ``host``, ``metrics`` + bench-specific keys).  Bump when the envelope
#: itself changes shape.
BENCH_SCHEMA_VERSION = 2


def host_info() -> dict:
    """Machine fingerprint stored in every ``BENCH_*.json``.

    Timings are only comparable within one host; this records enough to
    tell apart trajectories from different machines/interpreters.
    """
    return {
        "platform": platform.platform(),
        "python_version": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result under benchmarks/results/.

    Every ``BENCH_*.json`` shares one envelope: ``schema_version``, a
    ``host`` fingerprint and a snapshot of the obs metrics registry under
    ``metrics`` (each only filled in when the payload does not already
    carry it), plus the bench-specific keys.

    Rate-derivation note (``BENCH_identification.json``): per-row
    ``candidates_visited_per_sec`` and the ``*_enumeration`` speedup
    ratios are derived from the *pure* enumeration wall time
    (``stats["enumerate_seconds"]`` reported by
    :func:`repro.enumeration.library.build_candidate_library`), not from
    the enclosing ``enumerate`` stage timer — the stage also covers
    candidate costing, which is identical across engines and would
    otherwise dilute engine-to-engine comparisons.
    """
    payload.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    payload.setdefault("host", host_info())
    payload.setdefault("metrics", obs.metrics_snapshot())
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n=== {name} ===\n{json.dumps(payload, indent=2, sort_keys=True)}")
    return path


@contextmanager
def stage(name: str):
    """Accumulate wall-clock time for one named pipeline stage."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - t0
        _STAGE_SECONDS[name] = _STAGE_SECONDS.get(name, 0.0) + elapsed
        _STAGE_CALLS[name] = _STAGE_CALLS.get(name, 0) + 1


def reset_stages() -> None:
    """Drop all accumulated stage timings."""
    _STAGE_SECONDS.clear()
    _STAGE_CALLS.clear()


def stage_report() -> dict[str, dict[str, float]]:
    """Seconds and call counts accumulated per stage since the last reset."""
    return {
        name: {"seconds": secs, "calls": _STAGE_CALLS.get(name, 0)}
        for name, secs in sorted(_STAGE_SECONDS.items())
    }


@functools.lru_cache(maxsize=None)
def cached_task(name: str, salt: int = 0, objective: str = "avg") -> PeriodicTask:
    """Build (and cache) a periodic task with its configuration curve."""
    return build_task(get_program(name, salt), objective=objective)


def cached_task_set(
    names: tuple[str, ...], utilization: float, label: str = ""
) -> TaskSet:
    """A task set over cached tasks with periods scaled to *utilization*."""
    seen: dict[str, int] = {}
    tasks = []
    for name in names:
        salt = seen.get(name, 0)
        seen[name] = salt + 1
        tasks.append(cached_task(name, salt))
    return scale_periods_for_utilization(tasks, utilization, name=label)


def prebuild_tasks(
    pairs: tuple[tuple[str, int], ...], workers: int | None = None
) -> list[PeriodicTask]:
    """Build tasks for (benchmark, salt) pairs, optionally in parallel.

    With ``workers > 1`` the identification+curve work fans out over a
    process pool (see :func:`repro.core.flow.build_tasks`).
    """
    programs = [get_program(name, salt) for name, salt in pairs]
    return build_tasks(programs, workers=workers)


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
