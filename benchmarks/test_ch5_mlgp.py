"""Chapter 5 benches: Tables 5.1/5.2 and Figures 5.3-5.6.

* Table 5.1 — benchmark characteristics (WCET cycles, max/avg BB size);
* Table 5.2 — the five task sets of the iterative-customization study;
* Figure 5.3 — utilization vs. iteration count for all task sets and input
  utilizations U in {1.1 .. 1.5};
* Figure 5.4 — (a) analysis time and (b) hardware area vs. input utilization;
* Figure 5.5 — speedup vs. analysis time, MLGP vs. the IS baseline;
* Figure 5.6 — speedup vs. hardware area trade-off, MLGP vs. IS.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import emit, once
from repro.mlgp import (
    iterative_customization,
    iterative_selection,
    mlgp_program_profile,
)
from repro.workloads import CH5_TASK_SETS, get_program, programs_for

INPUT_UTILIZATIONS = (1.1, 1.2, 1.3, 1.4, 1.5)

#: Benchmarks compared in Figures 5.5/5.6 (thesis uses these six).
PROFILE_BENCHMARKS = ("g721decode", "jfdctint", "blowfish", "md5", "sha", "3des")

#: Wall-clock cap per IS run (IS on large blocks runs for hours otherwise).
IS_TIME_BUDGET = 10.0

_iterative_runs: dict[tuple[int, float], object] = {}
_profile_cache: dict[str, tuple] = {}


def _profiles(name: str):
    """(MLGP profile steps, IS step/speedup/area rows), memoized per
    benchmark so Figures 5.5 and 5.6 share one computation."""
    if name not in _profile_cache:
        program = get_program(name)
        mlgp_steps = mlgp_program_profile(program)
        freq = program.profile()
        blocks = program.basic_blocks
        hot = max(
            range(len(blocks)),
            key=lambda i: freq.get(i, 0.0) * blocks[i].dfg.sw_cycles(),
        )
        sw_total = sum(
            freq.get(i, 0.0) * blocks[i].dfg.sw_cycles()
            for i in range(len(blocks))
        )
        saved, area = 0.0, 0.0
        is_rows = []
        for s_ in iterative_selection(blocks[hot].dfg, time_budget=IS_TIME_BUDGET):
            saved += s_.gain * freq.get(hot, 0.0)
            area += s_.area
            speedup = sw_total / max(1.0, sw_total - saved)
            is_rows.append((s_.elapsed, speedup, area))
        _profile_cache[name] = (mlgp_steps, is_rows)
    return _profile_cache[name]


def _run_iterative(ts_id: int, u_in: float):
    """Run (and memoize) Algorithm 4 for one task set and input utilization."""
    key = (ts_id, u_in)
    if key not in _iterative_runs:
        programs = programs_for(CH5_TASK_SETS[ts_id])
        wcets = [p.wcet() for p in programs]
        periods = [w * len(programs) / u_in for w in wcets]
        start = time.perf_counter()
        result = iterative_customization(programs, periods, u_target=1.0)
        elapsed = time.perf_counter() - start
        _iterative_runs[key] = (result, elapsed)
    return _iterative_runs[key]


def test_table_5_1(benchmark):
    def run():
        lines = ["benchmark     wcet_cycles    max_bb  avg_bb"]
        for name in (
            "adpcm",
            "sha",
            "jfdctint",
            "g721decode",
            "lms",
            "ndes",
            "rijndael",
            "3des",
            "aes",
            "blowfish",
        ):
            p = get_program(name)
            mx, avg = p.block_stats()
            lines.append(f"{name:12s} {p.wcet():13.0f}  {mx:6d}  {avg:6.1f}")
        return lines

    lines = once(benchmark, run)
    emit("table_5_1_benchmarks", lines)


def test_table_5_2(benchmark):
    def run():
        return [
            f"{k} | {', '.join(names)}" for k, names in sorted(CH5_TASK_SETS.items())
        ]

    rows = once(benchmark, run)
    emit("table_5_2_task_sets", ["Task set | Benchmarks", *rows])


def test_figure_5_3(benchmark):
    """Utilization trajectory across iterations (Algorithm 4)."""

    def run():
        lines = ["set  U_in   iteration_utilizations"]
        for ts_id in sorted(CH5_TASK_SETS):
            for u_in in INPUT_UTILIZATIONS:
                result, _ = _run_iterative(ts_id, u_in)
                traj = " ".join(f"{r.utilization:5.3f}" for r in result.records)
                lines.append(f"ts{ts_id}  {u_in:4.2f}  {traj}")
        return lines

    lines = once(benchmark, run)
    emit("figure_5_3_utilization_vs_iterations", lines)
    # Shape: trajectories are non-increasing and most reach U <= 1.
    reached = 0
    for line in lines[1:]:
        vals = [float(v) for v in line.split()[2:]]
        assert vals == sorted(vals, reverse=True)
        if vals and vals[-1] <= 1.0 + 1e-9:
            reached += 1
    assert reached >= len(lines[1:]) // 2


def test_figure_5_4(benchmark):
    """Analysis time and hardware area vs. input utilization."""

    def run():
        lines = ["set  U_in   analysis_s  hw_area_adders  met_target"]
        for ts_id in sorted(CH5_TASK_SETS):
            for u_in in INPUT_UTILIZATIONS:
                result, elapsed = _run_iterative(ts_id, u_in)
                lines.append(
                    f"ts{ts_id}  {u_in:4.2f}  {elapsed:10.2f}  "
                    f"{result.total_area:14.1f}  {result.met_target}"
                )
        return lines

    lines = once(benchmark, run)
    emit("figure_5_4_time_and_area", lines)
    # Shape: hardware area grows with input utilization per task set.
    for ts_id in sorted(CH5_TASK_SETS):
        areas = [
            float(l.split()[3])
            for l in lines[1:]
            if l.startswith(f"ts{ts_id} ")
        ]
        assert areas[0] <= areas[-1] + 1e-9


def test_figure_5_5(benchmark):
    """Speedup vs. analysis time: MLGP against the IS baseline."""

    def run():
        lines = ["benchmark    method  elapsed_s  speedup"]
        for name in PROFILE_BENCHMARKS:
            steps, is_rows = _profiles(name)
            for s in steps[:: max(1, len(steps) // 8)]:
                lines.append(
                    f"{name:12s} MLGP  {s.elapsed:9.2f}  {s.speedup:7.3f}"
                )
            if steps:
                lines.append(
                    f"{name:12s} MLGP  {steps[-1].elapsed:9.2f}  {steps[-1].speedup:7.3f}"
                )
            for elapsed, speedup, _area in is_rows:
                lines.append(f"{name:12s} IS    {elapsed:9.2f}  {speedup:7.3f}")
            if not is_rows:
                lines.append(f"{name:12s} IS    (no instruction within budget)")
        return lines

    lines = once(benchmark, run)
    emit("figure_5_5_speedup_vs_time", lines)


def test_figure_5_6(benchmark):
    """Speedup vs. hardware area trade-off, MLGP vs. IS."""

    def run():
        lines = ["benchmark    method  area_adders  speedup"]
        for name in PROFILE_BENCHMARKS:
            steps, is_rows = _profiles(name)
            for s in steps:
                lines.append(
                    f"{name:12s} MLGP  {s.area:11.1f}  {s.speedup:7.3f}"
                )
            for _elapsed, speedup, area in is_rows:
                lines.append(f"{name:12s} IS    {area:11.1f}  {speedup:7.3f}")
        return lines

    lines = once(benchmark, run)
    emit("figure_5_6_speedup_vs_area", lines)
