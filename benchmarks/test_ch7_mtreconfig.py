"""Chapter 7 benches: Tables 7.1/7.2 and Figure 7.4.

* Table 7.1 — CIS versions of the periodic tasks (derived from benchmark
  configuration curves through the full pipeline);
* Figure 7.4 — effective utilization of DP vs. Optimal (ILP) vs. Static
  across fabric areas;
* Table 7.2 — running time of Optimal (ILP) vs. the pseudo-polynomial DP
  as the task count grows.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import emit, once
from repro.mtreconfig import (
    dp_solution,
    ilp_solution,
    static_solution,
    synthetic_reconfig_tasks,
    tasks_from_benchmarks,
)

BENCHMARK_TASKS = ("crc32", "lms", "ndes", "adpcm")
TASK_COUNTS = (4, 6, 8, 10, 12, 16)


def _benchmark_tasks():
    return tasks_from_benchmarks(BENCHMARK_TASKS, target_utilization=1.2)


def test_table_7_1(benchmark):
    """CIS versions of the tasks (areas in adders, cycles per job)."""

    def run():
        tasks = _benchmark_tasks()
        lines = ["task        version  area_adders      cycles      period"]
        for t in tasks:
            for j, v in enumerate(t.versions):
                lines.append(
                    f"{t.name:10s}  {j:7d}  {v.area:11.1f}  {v.cycles:10.0f}"
                    f"  {t.period:10.0f}"
                )
        return lines

    lines = once(benchmark, run)
    emit("table_7_1_cis_versions", lines)


def test_figure_7_4(benchmark):
    """Utilization of DP / Optimal / Static across fabric areas."""

    def run():
        tasks = _benchmark_tasks()
        max_needed = sum(max(v.area for v in t.versions) for t in tasks)
        rho = 0.002 * min(t.period for t in tasks)
        lines = ["area_frac  static_U  dp_U    optimal_U"]
        for frac in (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0):
            area = max_needed * frac
            st_u = static_solution(tasks, area).utilization
            dp_u = dp_solution(tasks, area, rho).solution.utilization
            il_u = ilp_solution(tasks, area, rho).solution.utilization
            lines.append(
                f"{frac:9.2f}  {st_u:8.4f}  {dp_u:6.4f}  {il_u:9.4f}"
            )
        return lines

    lines = once(benchmark, run)
    emit("figure_7_4_dp_optimal_static", lines)
    # Shape: DP tracks Optimal closely and never loses to Static.
    for line in lines[1:]:
        _f, st_u, dp_u, il_u = (float(x) for x in line.split())
        assert dp_u <= st_u + 1e-6
        assert abs(dp_u - il_u) <= 0.02 * il_u + 1e-9
    # At small areas reconfiguration wins visibly.
    first = lines[1].split()
    assert float(first[2]) < float(first[1]) + 1e-9


def test_table_7_2(benchmark):
    """Running time of Optimal (ILP) vs. the DP as task count grows."""

    def run():
        lines = ["n_tasks  dp_s      optimal_s  dp_U     optimal_U"]
        for n in TASK_COUNTS:
            tasks = synthetic_reconfig_tasks(n, seed=n, target_utilization=1.2)
            fabric = 0.3 * sum(max(v.area for v in t.versions) for t in tasks)
            rho = 0.002 * min(t.period for t in tasks)
            dp = dp_solution(tasks, fabric, rho, max_steps=4000)
            il = ilp_solution(tasks, fabric, rho)
            lines.append(
                f"{n:7d}  {dp.elapsed:8.4f}  {il.elapsed:9.4f}  "
                f"{dp.solution.utilization:7.4f}  {il.solution.utilization:9.4f}"
            )
        return lines

    lines = once(benchmark, run)
    emit("table_7_2_running_times", lines)
    # Shape: the DP is faster than the ILP in aggregate, at matching quality.
    dp_total = sum(float(l.split()[1]) for l in lines[1:])
    il_total = sum(float(l.split()[2]) for l in lines[1:])
    assert dp_total < il_total
    for line in lines[1:]:
        parts = line.split()
        assert abs(float(parts[3]) - float(parts[4])) <= 0.02 * float(parts[4]) + 1e-9
