"""Chapter 8 bench: Figure 8.4 — bio-monitoring customization speedups.

Runs the full customization pipeline (candidate enumeration, selection,
configuration curve) on every wearable bio-monitoring kernel and reports
the achievable speedup and the hardware area it costs, plus a combined
multi-tasking schedulability study (the two applications share one
customized processor).
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit, once
from repro.core import build_task, customize
from repro.enumeration import build_candidate_library
from repro.rtsched import scale_periods_for_utilization
from repro.selection import build_configuration_curve
from repro.workloads import BIOMONITOR_KERNELS, biomonitor_program


def test_figure_8_4(benchmark):
    """Speedup with customization for each bio-monitoring kernel."""

    def run():
        lines = ["kernel        sw_cycles  hw_cycles  speedup  area_adders"]
        for name in BIOMONITOR_KERNELS:
            program = biomonitor_program(name)
            library = build_candidate_library(program)
            curve = build_configuration_curve(program, library.candidates)
            sw = curve[0].cycles
            hw = curve[-1].cycles
            lines.append(
                f"{name:12s}  {sw:9.0f}  {hw:9.0f}  {sw / hw:7.2f}"
                f"  {curve[-1].area:11.1f}"
            )
        return lines

    lines = once(benchmark, run)
    emit("figure_8_4_biomonitor_speedup", lines)
    speedups = [float(l.split()[3]) for l in lines[1:]]
    assert all(s >= 1.0 for s in speedups)
    assert max(speedups) > 1.3  # customization pays off on these kernels


def test_biomonitor_taskset_schedulability(benchmark):
    """Both applications on one customized processor: utilization study."""

    def run():
        tasks = [build_task(biomonitor_program(n)) for n in BIOMONITOR_KERNELS]
        ts = scale_periods_for_utilization(tasks, 1.15, name="biomonitor")
        lines = ["area_frac  U_edf    schedulable"]
        max_area = ts.max_area
        for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
            res = customize(ts, max_area * frac, policy="edf")
            lines.append(
                f"{frac:9.2f}  {res.utilization_after:7.4f}  {res.schedulable}"
            )
        return lines

    lines = once(benchmark, run)
    emit("figure_8_4b_biomonitor_taskset", lines)
    # The software-only set (U = 1.15) must become schedulable with CIs.
    assert lines[-1].endswith("True")
