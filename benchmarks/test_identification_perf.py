"""Identification-pipeline speed harness (perf trajectory for future PRs).

Times the identification → configuration-curve → selection pipeline on the
Figure 3.3 workload (the unique programs of the six Chapter 3 task sets)
under four setups:

* ``reference_cold`` — the original set-based ESU enumerator, no caching;
* ``bitset_cold``    — the bitset engine with empty artifact caches;
* ``array_cold``     — the array engine; the library cache key is
  engine-qualified so its *enumeration* runs cold, while the
  engine-independent curve/select caches stay primed from the bitset row
  (only the enumerate stage is a cold-vs-cold comparison);
* ``compiled_cold``  — the compiled engine the same way; under a numba
  toolchain its first call additionally pays the (disk-cached) JIT
  build, which is exactly what a cold pipeline run pays — on hosts
  without numba the row measures the array-fallback ladder instead (the
  payload's ``jit`` block records which);
* ``auto_cold``      — ``engine="auto"`` per-block dispatch, cold the
  same way;
* ``bitset_warm``    — the bitset engine re-run with primed caches.

Per-stage wall clock (enumerate / curves / select), candidate-visit rates
and the speedup ratios are written to
``benchmarks/results/BENCH_identification.json``.  Engine enumeration
comparisons (rates and ``*_enumeration`` ratios) use the pure
``stats["enumerate_seconds"]`` measured around :func:`enumerate_connected`
itself — the stage timer also covers candidate costing, which is
engine-independent work that would dilute the ratios.
"""

from __future__ import annotations

import math
import time

import warnings

from benchmarks.common import emit_json, reset_stages, stage, stage_report
from repro import cache, jit, obs
from repro.core import select_edf, select_rms
from repro.enumeration import build_candidate_library
from repro.rtsched import PeriodicTask, scale_periods_for_utilization
from repro.selection import build_configuration_curve, downsample_curve
from repro.workloads import CH3_TASK_SETS, get_program

#: Repeats for the enumeration-only engine comparison; the min filters
#: scheduler noise out of the per-engine kernel time (single-shot cold
#: rows stay in the payload for the end-to-end picture).
ENUM_REPEATS = 5

AREA_FRACTIONS = tuple(i / 10 for i in range(11))


def _workload_pairs() -> list[tuple[str, int]]:
    """Unique (benchmark, salt) pairs across the six Chapter 3 task sets."""
    pairs: set[tuple[str, int]] = set()
    for names in CH3_TASK_SETS.values():
        seen: dict[str, int] = {}
        for name in names:
            salt = seen.get(name, 0)
            seen[name] = salt + 1
            pairs.add((name, salt))
    return sorted(pairs)


def _run_pipeline(engine: str, use_cache: bool, label: str) -> dict:
    """One full identification+curve+selection pass over the workload."""
    reset_stages()
    enum_stats: dict = {}
    tasks: dict[tuple[str, int], PeriodicTask] = {}
    t0 = time.perf_counter()
    for name, salt in _workload_pairs():
        program = get_program(name, salt)
        with stage("enumerate"):
            library = build_candidate_library(
                program, engine=engine, use_cache=use_cache, stats=enum_stats
            )
        with stage("curves"):
            curve = downsample_curve(
                build_configuration_curve(
                    program, library.candidates, use_cache=use_cache
                ),
                24,
            )
        tasks[(name, salt)] = PeriodicTask(
            name=program.name,
            period=2.0 * curve[0].cycles,
            wcet=curve[0].cycles,
            configurations=tuple(curve),
        )
    with stage("select"):
        for k, names in sorted(CH3_TASK_SETS.items()):
            seen: dict[str, int] = {}
            members = []
            for name in names:
                salt = seen.get(name, 0)
                seen[name] = salt + 1
                members.append(tasks[(name, salt)])
            ts = scale_periods_for_utilization(members, 1.05, name=f"ts{k}")
            for frac in AREA_FRACTIONS:
                budget = ts.max_area * frac
                select_edf(ts, budget)
                select_rms(ts, budget)
    total = time.perf_counter() - t0
    report = stage_report()
    stage_enum_seconds = report.get("enumerate", {}).get("seconds", 0.0)
    # Pure time inside enumerate_connected (excludes candidate costing,
    # which the enumerate *stage* also covers) — the engine-comparable
    # denominator for visit rates and enumeration speedups.
    enum_seconds = enum_stats.get("enumerate_seconds", 0.0)
    visited = enum_stats.get("visited", 0)
    return {
        "label": label,
        "engine": engine,
        "use_cache": use_cache,
        "programs": len(tasks),
        "total_seconds": round(total, 4),
        "stages": {k: round(v["seconds"], 4) for k, v in report.items()},
        "identification_seconds": round(
            stage_enum_seconds + report.get("curves", {}).get("seconds", 0.0), 4
        ),
        "enumerate_seconds": round(enum_seconds, 4),
        "candidates_visited": visited,
        "candidates_visited_per_sec": (
            round(visited / enum_seconds) if enum_seconds > 0 and visited else None
        ),
    }


def _enumeration_seconds(engine: str, repeats: int = ENUM_REPEATS) -> float:
    """Best-of-*repeats* pure enumeration time for one engine.

    Sweeps :func:`enumerate_connected` over every hot block of the
    Figure 3.3 workload (the library's own parameters: 4/2 ports,
    ``max_size`` 12, 2000 candidates per block) and returns the fastest
    full sweep — the engine's kernel time with warm masks/constants,
    insulated from one-off scheduler stalls and from the
    candidate-costing allocator churn a full library build interleaves.
    This is the figure behind the ``*_enumeration_best`` speedup and the
    array-vs-bitset soft guard.
    """
    from repro.enumeration import enumerate_connected
    from repro.enumeration.library import hot_block_indices

    dfgs = []
    for name, salt in _workload_pairs():
        program = get_program(name, salt)
        dfgs += [
            program.basic_blocks[i].dfg for i in hot_block_indices(program)
        ]
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for dfg in dfgs:
            enumerate_connected(
                dfg, max_inputs=4, max_outputs=2, max_size=12,
                max_candidates=2000, engine=engine,
            )
        best = min(best, time.perf_counter() - t0)
    return best


def _disabled_span_ns(iterations: int = 200_000) -> float:
    """Average per-call cost of :func:`repro.obs.span` with tracing off."""
    assert not obs.tracing_enabled()
    span = obs.span
    t0 = time.perf_counter()
    for _ in range(iterations):
        with span("overhead-probe"):
            pass
    return (time.perf_counter() - t0) / iterations * 1e9


def test_obs_disabled_overhead_guard():
    """Disabled tracing must be a near-free no-op on the hot path.

    The guard bounds the per-``span()`` cost with tracing off; the 5 µs
    ceiling is ~100x the observed cost, so only a broken no-op path (e.g.
    losing the ``_TRACING`` early-out) trips it — timer noise cannot.
    """
    assert obs.span("a") is obs.span("b"), "disabled span must be a shared singleton"
    per_call_ns = _disabled_span_ns()
    assert per_call_ns < 5_000, f"disabled span costs {per_call_ns:.0f}ns/call"


def test_identification_pipeline_speed(benchmark):
    cache.clear()
    reference = _run_pipeline("reference", use_cache=False, label="reference_cold")

    cache.clear()
    cold = _run_pipeline("bitset", use_cache=True, label="bitset_cold")

    # Engine-qualified library cache key ⇒ enumeration runs cold; the
    # engine-independent curve cache stays primed (bitset paid for it —
    # and for building the shared per-DFG bitset masks — just above).
    array_cold = _run_pipeline("array", use_cache=True, label="array_cold")

    obs.reset()  # fresh fallback counters for the jit payload block
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        compiled_cold = _run_pipeline(
            "compiled", use_cache=True, label="compiled_cold"
        )
        auto_cold = _run_pipeline("auto", use_cache=True, label="auto_cold")

    warm = benchmark.pedantic(
        _run_pipeline, args=("bitset", True, "bitset_warm"), rounds=1, iterations=1
    )

    bitset_best = _enumeration_seconds("bitset")
    array_best = _enumeration_seconds("array")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        compiled_best = _enumeration_seconds("compiled")
        auto_best = _enumeration_seconds("auto")
    # The reference engine is ~10x slower, so noise is proportionally
    # smaller — two repeats suffice.
    reference_best = _enumeration_seconds("reference", repeats=2)

    def ratio(a: float, b: float) -> float:
        return round(a / b, 2) if b > 0 else math.inf

    fallbacks = obs.metrics_snapshot()["counters"].get("jit.fallback", 0)
    payload = {
        "workload": "figure_3_3",
        "rows": [reference, cold, array_cold, compiled_cold, auto_cold, warm],
        "jit": {
            "toolchain": jit.toolchain(),
            "kernel_builds": jit.kernel_build_count(),
            "fallbacks": fallbacks,
        },
        "enumeration_best_of": {
            "repeats": ENUM_REPEATS,
            "reference_seconds": round(reference_best, 4),
            "bitset_seconds": round(bitset_best, 4),
            "array_seconds": round(array_best, 4),
            "compiled_seconds": round(compiled_best, 4),
            "auto_seconds": round(auto_best, 4),
        },
        "speedups": {
            "bitset_vs_reference_identification": ratio(
                reference["identification_seconds"], cold["identification_seconds"]
            ),
            "bitset_vs_reference_total": ratio(
                reference["total_seconds"], cold["total_seconds"]
            ),
            "bitset_vs_reference_enumeration": ratio(
                reference["enumerate_seconds"], cold["enumerate_seconds"]
            ),
            "array_vs_bitset_enumeration": ratio(
                cold["enumerate_seconds"], array_cold["enumerate_seconds"]
            ),
            "array_vs_reference_enumeration": ratio(
                reference["enumerate_seconds"], array_cold["enumerate_seconds"]
            ),
            "array_vs_bitset_enumeration_best": ratio(
                bitset_best, array_best
            ),
            "array_vs_reference_enumeration_best": ratio(
                reference_best, array_best
            ),
            "compiled_vs_array_enumeration_best": ratio(
                array_best, compiled_best
            ),
            "compiled_vs_bitset_enumeration_best": ratio(
                bitset_best, compiled_best
            ),
            "auto_vs_best_engine_enumeration_best": ratio(
                min(bitset_best, array_best, compiled_best), auto_best
            ),
            "warm_vs_cold_identification": ratio(
                cold["identification_seconds"], warm["identification_seconds"]
            ),
            "warm_vs_cold_total": ratio(
                cold["total_seconds"], warm["total_seconds"]
            ),
        },
        "obs": {
            "disabled_span_ns": round(_disabled_span_ns(20_000), 1),
        },
    }
    emit_json("BENCH_identification", payload)

    # Acceptance: the bitset engine is ≥3x faster on identification+curves,
    # and the warm-cache rerun ≥10x faster than cold.  Assert with margin so
    # CI noise cannot flake the build while still catching regressions.
    speedups = payload["speedups"]
    assert speedups["bitset_vs_reference_identification"] >= 2.0
    assert speedups["warm_vs_cold_identification"] >= 5.0
    assert warm["total_seconds"] < cold["total_seconds"]
    # Soft perf guard: the array engine must not enumerate slower than the
    # bitset engine (observed ~2x faster best-of-N; the 1.0 floor keeps
    # single-core CI noise from flaking the build).
    assert speedups["array_vs_bitset_enumeration_best"] >= 1.0
    # Soft guard: compiled must at least keep pace with array.  Under a
    # numba toolchain it runs real kernels (observed well above 1.0);
    # without one it IS the array engine behind a fallback shim, so only
    # dispatch noise separates the two — allow 15% for it.
    floor = 1.0 if jit.toolchain() == "numba" else 0.85
    assert speedups["compiled_vs_array_enumeration_best"] >= floor
    # Auto dispatch must track the best hand-picked engine.  The hard
    # per-row 10% guard lives in benchmarks/test_scalability.py (with an
    # absolute slack term); this best-of ratio has no slack term, so it
    # gets a slightly looser floor — on this sub-second sweep auto IS
    # the engine it resolves to and only timer noise separates them.
    assert speedups["auto_vs_best_engine_enumeration_best"] >= 0.85
