"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables — these quantify the knobs this implementation adds:

* MLGP refinement passes and seed sensitivity;
* register-port (I/O) constraint sweep on achievable speedup;
* selection-solver shootout (greedy / B&B / ILP / GA / SA);
* reconfiguration architecture comparison (static / temporal-only /
  temporal+spatial / partial) and the software-demotion post-pass;
* base-processor issue width vs. customization benefit (list scheduler).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import emit, once
from repro.enumeration import build_candidate_library
from repro.graphs import rewrite_block
from repro.mlgp import mlgp_partition
from repro.reconfig import (
    iterative_partition,
    iterative_partition_partial,
    spatial_select,
    temporal_only_partition,
)
from repro.selection import (
    select_annealing,
    select_branch_bound,
    select_genetic,
    select_greedy,
    select_ilp,
)
from repro.workloads import get_program, synthetic_loops, synthetic_trace


def _hot_region(name: str):
    program = get_program(name)
    block = max(program.basic_blocks, key=lambda b: len(b.dfg))
    region = block.dfg.regions()[0]
    return block.dfg, region


def test_ablation_mlgp_refinement(benchmark):
    """Gain/time vs refinement passes; seed sensitivity."""

    def run():
        dfg, region = _hot_region("sha")
        lines = ["passes  gain   area   time_s"]
        for passes in (0, 1, 3, 6):
            t0 = time.perf_counter()
            res = mlgp_partition(dfg, region, refine_passes=passes)
            lines.append(
                f"{passes:6d}  {res.total_gain:5.0f}  {res.total_area:5.0f}"
                f"  {time.perf_counter() - t0:6.2f}"
            )
        gains = [
            mlgp_partition(dfg, region, seed=s).total_gain for s in range(5)
        ]
        spread = (max(gains) - min(gains)) / max(gains)
        lines.append(f"seed spread over 5 seeds: {100 * spread:.1f}%")
        return lines

    lines = once(benchmark, run)
    emit("ablation_mlgp_refinement", lines)
    # Refinement never hurts the gain.
    gains = [float(l.split()[1]) for l in lines[1:5]]
    assert gains[-1] >= gains[0] - 1e-9


def test_ablation_io_constraints(benchmark):
    """Achievable speedup vs register-port constraints (Nin, Nout)."""

    def run():
        program = get_program("blowfish")
        lines = ["Nin  Nout  candidates  speedup"]
        from repro.selection import build_configuration_curve

        for nin, nout in ((2, 1), (4, 2), (6, 3), (8, 4)):
            lib = build_candidate_library(
                program, max_inputs=nin, max_outputs=nout
            )
            curve = build_configuration_curve(program, lib.candidates)
            speedup = curve[0].cycles / curve[-1].cycles
            lines.append(
                f"{nin:3d}  {nout:4d}  {len(lib):10d}  {speedup:7.3f}"
            )
        return lines

    lines = once(benchmark, run)
    emit("ablation_io_constraints", lines)
    speedups = [float(l.split()[3]) for l in lines[1:]]
    # The 2-in/1-out straitjacket is clearly worst; beyond (4, 2) the
    # bounded enumeration explores different candidate pools, so exact
    # monotonicity is not guaranteed — only that ports matter a lot.
    assert speedups[0] == min(speedups)
    assert max(speedups) > speedups[0] * 1.3


def test_ablation_selection_solvers(benchmark):
    """Quality and runtime of the five selection solvers on one library."""

    def run():
        program = get_program("rijndael")
        lib = build_candidate_library(program)
        cands = lib.candidates[:120]
        budget = 0.3 * sum(c.area for c in cands)
        solvers = [
            ("greedy", lambda: select_greedy(cands, budget)),
            (
                "branch-bound",
                lambda: select_branch_bound(cands, budget, max_nodes=300_000),
            ),
            ("ilp", lambda: select_ilp(cands, budget)),
            ("genetic", lambda: select_genetic(cands, budget, seed=1)),
            ("annealing", lambda: select_annealing(cands, budget, seed=1)),
        ]
        lines = ["solver        gain       time_s"]
        results = {}
        for name, solve in solvers:
            t0 = time.perf_counter()
            sel = solve()
            dt = time.perf_counter() - t0
            gain = sum(cands[i].total_gain for i in sel)
            results[name] = gain
            lines.append(f"{name:12s}  {gain:9.0f}  {dt:7.3f}")
        return lines, results

    lines, results = once(benchmark, run)
    emit("ablation_selection_solvers", lines)
    # The ILP is exact; node-capped B&B and the heuristics track it.  This
    # instance has hundreds of conflicts, so B&B within its node budget and
    # the population heuristics land near (not at) the optimum.
    optimum = results["ilp"]
    for solver in ("greedy", "branch-bound", "genetic", "annealing"):
        assert results[solver] <= optimum + 1e-6
        assert results[solver] >= 0.8 * optimum


def test_ablation_reconfig_architectures(benchmark):
    """Static vs temporal-only vs temporal+spatial vs partial fabric."""

    def run():
        lines = ["n_loops  static  temporal_only  full  partial"]
        for n in (10, 20, 40):
            loops = synthetic_loops(n, seed=n)
            trace = synthetic_trace(n, seed=n)
            max_area, rho = 150.0, 400.0
            _sel, static_gain = spatial_select(loops, max_area)
            temp = temporal_only_partition(loops, trace, max_area, rho)
            full = iterative_partition(loops, trace, max_area, rho)
            _psol, partial_gain = iterative_partition_partial(
                loops, trace, max_area, rho / max_area
            )
            lines.append(
                f"{n:7d}  {static_gain:6.0f}  {temp.gain:13.0f}"
                f"  {full.gain:4.0f}  {partial_gain:7.0f}"
            )
        return lines

    lines = once(benchmark, run)
    emit("ablation_reconfig_architectures", lines)
    for line in lines[1:]:
        _n, static, temp, full, partial = (float(x) for x in line.split())
        assert full >= temp - 1e-9  # spatial sharing dominates temporal-only
        assert full >= static - 1e-9  # reconfiguration dominates static
        assert partial >= full - 1e-9  # cheaper loads dominate full reloads


def test_ablation_prune_pass(benchmark):
    """Effect of the software-demotion post-pass on solution quality."""

    def run():
        lines = ["n_loops  no_prune  with_prune  improvement_%"]
        for n in (10, 20, 40, 60):
            loops = synthetic_loops(n, seed=n)
            trace = synthetic_trace(n, seed=n)
            base = iterative_partition(loops, trace, 150.0, 400.0, prune=False)
            pruned = iterative_partition(loops, trace, 150.0, 400.0, prune=True)
            imp = 100.0 * (pruned.gain - base.gain) / max(1.0, abs(base.gain))
            lines.append(
                f"{n:7d}  {base.gain:8.0f}  {pruned.gain:10.0f}  {imp:12.1f}"
            )
        return lines

    lines = once(benchmark, run)
    emit("ablation_prune_pass", lines)
    for line in lines[1:]:
        base, pruned = float(line.split()[1]), float(line.split()[2])
        assert pruned >= base - 1e-9


def test_ablation_issue_width(benchmark):
    """Customization benefit vs base-processor issue width.

    Wider cores already exploit ILP, so folding operations into custom
    instructions saves fewer cycles — the classic motivation for measuring
    speedups on a single-issue baseline.
    """

    def run():
        program = get_program("adpcm")
        block = max(program.basic_blocks, key=lambda b: len(b.dfg))
        dfg = block.dfg
        region = dfg.regions()[0]
        from repro.graphs import acyclic_subset

        cis = acyclic_subset(
            dfg, mlgp_partition(dfg, region).custom_instructions()
        )
        lines = ["width  plain_cycles  custom_cycles  saved_%"]
        plain = rewrite_block(dfg, [])
        custom = rewrite_block(dfg, cis)
        for width in (1, 2, 4):
            p = plain.scheduled_cycles(issue_width=width)
            c = custom.scheduled_cycles(issue_width=width)
            lines.append(
                f"{width:5d}  {p:12d}  {c:13d}  {100 * (p - c) / p:7.1f}"
            )
        return lines

    lines = once(benchmark, run)
    emit("ablation_issue_width", lines)
    saved = [float(l.split()[3]) for l in lines[1:]]
    assert saved[0] > 0  # customization helps the single-issue baseline
