"""Chapter 6 benches: Tables 6.1/6.2 and Figures 6.8/6.10.

* Table 6.1 — running time of exhaustive / greedy / iterative partitioning
  on synthetic inputs with 5 to 100 hot loops (exhaustive drops out beyond
  ~12 loops, as in the thesis);
* Figure 6.8 — solution quality (net gain) of the three algorithms on the
  synthetic inputs;
* Table 6.2 — the JPEG application's hot loops and CIS versions;
* Figure 6.10 — solution quality on the JPEG case study across
  reconfiguration costs.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import emit, once
from repro.errors import SolverError
from repro.reconfig import (
    exhaustive_partition,
    greedy_partition,
    iterative_partition,
    spatial_select,
)
from repro.workloads import (
    JPEG_MAX_AREA,
    JPEG_RHO,
    jpeg_loops,
    jpeg_trace,
    synthetic_loops,
    synthetic_trace,
)

LOOP_COUNTS = (5, 6, 7, 8, 9, 10, 11, 12, 20, 40, 60, 80, 100)
EXHAUSTIVE_LIMIT = 11  # beyond this the enumeration becomes impractical
EXHAUSTIVE_BUDGET = 120.0
MAX_AREA = 150.0
RHO = 400.0

_rows_cache: list[tuple] | None = None


def _run_all() -> list[tuple]:
    """(n, gains..., times...) per synthetic input size, memoized."""
    global _rows_cache
    if _rows_cache is not None:
        return _rows_cache
    rows = []
    for n in LOOP_COUNTS:
        loops = synthetic_loops(n, seed=n)
        trace = synthetic_trace(n, seed=n)
        if n <= EXHAUSTIVE_LIMIT:
            t0 = time.perf_counter()
            try:
                ex = exhaustive_partition(
                    loops, trace, MAX_AREA, RHO, time_budget=EXHAUSTIVE_BUDGET
                )
                ex_gain, ex_time = ex.gain, time.perf_counter() - t0
            except SolverError:
                ex_gain, ex_time = None, None
        else:
            ex_gain, ex_time = None, None
        t0 = time.perf_counter()
        gr = greedy_partition(loops, trace, MAX_AREA, RHO)
        gr_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        it = iterative_partition(loops, trace, MAX_AREA, RHO)
        it_time = time.perf_counter() - t0
        rows.append((n, ex_gain, gr.gain, it.gain, ex_time, gr_time, it_time))
    _rows_cache = rows
    return rows


def test_table_6_1(benchmark):
    """Running time of the three algorithms on synthetic inputs."""

    rows = once(benchmark, _run_all)
    lines = ["n_loops  exhaustive_s  greedy_s  iterative_s"]
    for n, _eg, _gg, _ig, ex_t, gr_t, it_t in rows:
        ex_cell = f"{ex_t:12.2f}" if ex_t is not None else "        N.A."
        lines.append(f"{n:7d}  {ex_cell}  {gr_t:8.4f}  {it_t:11.4f}")
    emit("table_6_1_running_times", lines)
    # Shape: exhaustive time explodes with n; iterative stays in seconds.
    times = [r[4] for r in rows if r[4] is not None]
    assert times == sorted(times)
    assert all(r[6] < 60.0 for r in rows)


def test_figure_6_8(benchmark):
    """Solution quality of the three algorithms on synthetic inputs."""

    rows = once(benchmark, _run_all)
    lines = ["n_loops  exhaustive  greedy  iterative  iter/exh  greedy/exh"]
    for n, ex_g, gr_g, it_g, *_ in rows:
        if ex_g is not None:
            lines.append(
                f"{n:7d}  {ex_g:10.0f}  {gr_g:6.0f}  {it_g:9.0f}  "
                f"{it_g / ex_g:8.3f}  {gr_g / ex_g:10.3f}"
            )
        else:
            lines.append(f"{n:7d}        N.A.  {gr_g:6.0f}  {it_g:9.0f}")
    emit("figure_6_8_solution_quality", lines)
    # Shape: exhaustive is exact over the thesis search space; iterative
    # stays close (and may exceed it via software demotion); greedy never
    # beats exhaustive.
    ratios = []
    for n, ex_g, gr_g, it_g, *_ in rows:
        if ex_g is None:
            continue
        assert it_g >= 0.85 * ex_g
        assert ex_g >= gr_g - 1e-6
        ratios.append(it_g / ex_g)
    assert sum(ratios) / len(ratios) >= 0.9


def test_table_6_2(benchmark):
    """JPEG hot loops and their CIS versions."""

    def run():
        lines = ["loop              version  area_AU  gain_Kcycles"]
        for lp in jpeg_loops():
            for j, v in enumerate(lp.versions):
                lines.append(f"{lp.name:16s}  {j:7d}  {v.area:7.0f}  {v.gain:12.0f}")
        return lines

    lines = once(benchmark, run)
    emit("table_6_2_jpeg_cis_versions", lines)


def test_figure_6_10(benchmark):
    """JPEG case study: solution quality across reconfiguration costs."""

    def run():
        loops, trace = jpeg_loops(), jpeg_trace()
        lines = ["rho_K   static  greedy  iterative  exhaustive  n_cfg_iter"]
        for rho in (0.0, 5.0, JPEG_RHO, 30.0, 60.0, 120.0):
            _sel, static_gain = spatial_select(loops, JPEG_MAX_AREA)
            gr = greedy_partition(loops, trace, JPEG_MAX_AREA, rho)
            it = iterative_partition(loops, trace, JPEG_MAX_AREA, rho)
            ex = exhaustive_partition(
                loops, trace, JPEG_MAX_AREA, rho, time_budget=EXHAUSTIVE_BUDGET
            )
            lines.append(
                f"{rho:5.0f}  {static_gain:7.0f}  {gr.gain:6.0f}  "
                f"{it.gain:9.0f}  {ex.gain:10.0f}  {it.n_configurations:10d}"
            )
        return lines

    lines = once(benchmark, run)
    emit("figure_6_10_jpeg_quality", lines)
    # Shape: at low reconfiguration cost, reconfiguration beats static.
    first = lines[1].split()
    assert float(first[3]) > float(first[1])  # iterative > static at rho=0
