"""Chapter 3 (DATE 2007) benches: Tables 3.1 and Figures 3.1, 3.3, 3.4.

Regenerates, on the synthetic substrate:

* Table 3.1 — composition of the six task sets;
* Figure 3.1 — cycles-vs-area configuration curve of the g721 decoding task;
* Figure 3.3 — utilization vs. area for every task set under EDF and RMS at
  original utilizations U in {0.80, 1.00, 1.05, 1.08, 1.10};
* Figure 3.4 — energy improvement vs. area for task set 3 (EDF and RMS,
  TM5400 static voltage scaling).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import cached_task, cached_task_set, emit, once
from repro.core import select_edf, select_rms
from repro.rtsched import energy_improvement
from repro.workloads import CH3_TASK_SETS

UTILIZATIONS = (0.80, 1.00, 1.05, 1.08, 1.10)
AREA_FRACTIONS = tuple(i / 10 for i in range(11))


def test_table_3_1(benchmark):
    def run():
        return [
            f"{k} | {', '.join(names)}" for k, names in sorted(CH3_TASK_SETS.items())
        ]

    rows = once(benchmark, run)
    emit("table_3_1_task_sets", ["Task set | Benchmarks", *rows])


def test_figure_3_1(benchmark):
    """Per-task performance/area trade-off (g721 decode analogue)."""

    def run():
        task = cached_task("g721decode")
        return [
            f"{cfg.area:10.1f} {cfg.cycles:14.0f}" for cfg in task.configurations
        ]

    rows = once(benchmark, run)
    emit(
        "figure_3_1_g721_curve",
        ["area(adders)  cycles", *rows],
    )
    # Shape check: strictly decreasing cycles along the curve.
    cycles = [float(r.split()[1]) for r in rows]
    assert cycles == sorted(cycles, reverse=True)


def test_figure_3_3(benchmark):
    """Utilization vs. area for all 6 task sets, EDF and RMS."""

    def run():
        lines = ["set  U0    policy  " + "  ".join(f"{f:4.1f}" for f in AREA_FRACTIONS)]
        for k, names in sorted(CH3_TASK_SETS.items()):
            for u0 in UTILIZATIONS:
                ts = cached_task_set(names, u0, label=f"ts{k}")
                max_area = ts.max_area
                for policy in ("edf", "rms"):
                    utils = []
                    for frac in AREA_FRACTIONS:
                        budget = max_area * frac
                        if policy == "edf":
                            u = select_edf(ts, budget).utilization
                        else:
                            sel = select_rms(ts, budget)
                            u = sel.utilization if sel.assignment else math.inf
                        utils.append(u)
                    cells = "  ".join(
                        f"{u:4.2f}" if math.isfinite(u) else " -- " for u in utils
                    )
                    lines.append(f"ts{k}  {u0:4.2f}  {policy:6s}  {cells}")
        return lines

    lines = once(benchmark, run)
    emit("figure_3_3_utilization_vs_area", lines)

    # Shape checks (thesis findings): utilization decreases with area, and
    # at U0 = 0.8 EDF and RMS pick identical configurations.
    for line in lines[1:]:
        cells = [c for c in line.split("  ") if c.strip()]
        vals = [float(v) for v in cells[3:] if v.strip() != "--"]
        assert all(b <= a + 1e-6 for a, b in zip(vals, vals[1:]))


def test_figure_3_4(benchmark):
    """Energy improvement vs. area, task set 3, EDF and RMS."""

    def run():
        names = CH3_TASK_SETS[3]
        lines = ["U0    policy  frac  energy_improvement_%"]
        for u0 in UTILIZATIONS:
            ts = cached_task_set(names, u0, label="ts3")
            max_area = ts.max_area
            for policy in ("edf", "rms"):
                for frac in AREA_FRACTIONS[1:]:
                    budget = max_area * frac
                    if policy == "edf":
                        sel = select_edf(ts, budget)
                        assignment = sel.assignment
                    else:
                        rsel = select_rms(ts, budget)
                        assignment = rsel.assignment
                    if assignment is None:
                        lines.append(f"{u0:4.2f}  {policy:6s}  {frac:4.2f}  unschedulable")
                        continue
                    imp = energy_improvement(ts, None, list(assignment), policy=policy)
                    val = "n/a" if imp is None else f"{imp:6.2f}"
                    lines.append(f"{u0:4.2f}  {policy:6s}  {frac:4.2f}  {val}")
        return lines

    lines = once(benchmark, run)
    emit("figure_3_4_energy_vs_area", lines)
    # Shape check: some positive energy improvement exists for EDF.
    improvements = [
        float(l.split()[-1])
        for l in lines[1:]
        if l.split()[-1] not in ("unschedulable", "n/a")
    ]
    assert improvements and max(improvements) > 0.0
