"""Scalability benches for the core solvers (engineering study).

Not thesis tables: these measure how this implementation's solvers scale
with problem size, so downstream users know what to expect.

* EDF selection DP vs. task count and configurations per task;
* RMS branch and bound vs. task count (exponential worst case, pruned);
* candidate enumeration vs. basic-block size;
* multilevel k-way partitioner vs. graph size.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import emit, once
from repro.core import select_edf, select_rms
from repro.enumeration import enumerate_connected
from repro.reconfig import kway_partition
from repro.rtsched import PeriodicTask, TaskSet
from repro.selection.config_curve import TaskConfiguration
from repro.workloads.synthesis import OP_MIXES, synth_dfg


def _taskset(n_tasks: int, n_cfg: int, seed: int = 0) -> TaskSet:
    rng = random.Random(seed)
    tasks = []
    for i in range(n_tasks):
        wcet = float(rng.randint(50, 200))
        configs = [TaskConfiguration(0.0, wcet)]
        area, cycles = 0.0, wcet
        for _ in range(n_cfg - 1):
            area += rng.randint(2, 20)
            cycles = max(1.0, cycles * rng.uniform(0.8, 0.95))
            configs.append(TaskConfiguration(area, cycles))
        tasks.append(
            PeriodicTask(
                name=f"t{i}",
                period=wcet * rng.uniform(1.5, 3.0),
                wcet=wcet,
                configurations=tuple(configs),
            )
        )
    return TaskSet(tasks)


def test_scalability_edf_dp(benchmark):
    def run():
        lines = ["n_tasks  n_cfg  time_ms"]
        for n_tasks in (4, 8, 16, 32, 64):
            for n_cfg in (8, 24):
                ts = _taskset(n_tasks, n_cfg, seed=n_tasks)
                budget = 0.5 * ts.max_area
                t0 = time.perf_counter()
                select_edf(ts, budget)
                dt = (time.perf_counter() - t0) * 1000
                lines.append(f"{n_tasks:7d}  {n_cfg:5d}  {dt:7.1f}")
        return lines

    lines = once(benchmark, run)
    emit("scalability_edf_dp", lines)
    # Pseudo-polynomial: even 64 tasks x 24 configs stays fast.
    assert all(float(l.split()[2]) < 2000 for l in lines[1:])


def test_scalability_rms_bb(benchmark):
    def run():
        lines = ["n_tasks  time_ms  schedulable"]
        for n_tasks in (3, 5, 7, 9, 11):
            ts = _taskset(n_tasks, 8, seed=n_tasks + 100)
            budget = 0.4 * ts.max_area
            t0 = time.perf_counter()
            sel = select_rms(ts, budget)
            dt = (time.perf_counter() - t0) * 1000
            lines.append(f"{n_tasks:7d}  {dt:7.1f}  {sel.schedulable}")
        return lines

    lines = once(benchmark, run)
    emit("scalability_rms_bb", lines)


def test_scalability_enumeration(benchmark):
    import warnings

    from repro import jit

    def run():
        # Candidate counts differ between the engines on the larger blocks:
        # the default visit budgets bind there, and a binding per-root
        # budget is spent depth-first (bitset) vs breadth-first
        # (array/compiled) — both deterministic, with the BFS order
        # reaching more feasible subgraphs inside the same budget.
        # Per-candidate microseconds is the comparable figure; the array
        # engine wins in the hot-block size range real programs produce
        # (tens to a few hundred ops) through ~1500 ops and delegates
        # larger blocks (>= ARRAY_MAX_NODES, where its level frontier
        # outgrows the cache) back to the bitset kernel.  The compiled
        # column runs the JIT kernels where a numba toolchain is present
        # and IS the array engine (plus a one-shot fallback warning)
        # otherwise — the header records which.  engine="auto" picks per
        # block and must track the best column everywhere.  Bit-identity
        # under non-binding budgets is
        # tests/test_enumeration_differential.py.
        lines = [
            f"# jit_toolchain={jit.toolchain()}",
            "block_ops  bitset_cands  array_cands  compiled_cands"
            "  auto_cands  bitset_ms  array_ms  compiled_ms  auto_ms"
            "  bitset_us_per_cand  array_us_per_cand  compiled_us_per_cand",
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for n_ops in (50, 100, 250, 500, 1000, 2000):
                rng = random.Random(n_ops)
                dfg = synth_dfg(rng, n_ops, OP_MIXES["crypto"])
                res = {}
                ms = {}
                # bitset first: it pays for building the shared per-DFG
                # masks (and, under numba, the compiled row's first call
                # pays the cached-JIT load).
                for eng in ("bitset", "array", "compiled", "auto"):
                    t0 = time.perf_counter()
                    res[eng] = enumerate_connected(dfg, 4, 2, engine=eng)
                    ms[eng] = (time.perf_counter() - t0) * 1000
                lines.append(
                    f"{n_ops:9d}  {len(res['bitset']):12d}  "
                    f"{len(res['array']):11d}  {len(res['compiled']):14d}  "
                    f"{len(res['auto']):10d}  "
                    f"{ms['bitset']:9.1f}  {ms['array']:8.1f}  "
                    f"{ms['compiled']:11.1f}  {ms['auto']:7.1f}  "
                    f"{1000 * ms['bitset'] / len(res['bitset']):18.1f}  "
                    f"{1000 * ms['array'] / len(res['array']):17.1f}  "
                    f"{1000 * ms['compiled'] / len(res['compiled']):20.1f}"
                )
        return lines

    lines = once(benchmark, run)
    emit("scalability_enumeration", lines)
    rows = [
        l for l in lines if not l.startswith(("#", "block_ops"))
    ]
    # Budgeted enumeration: bounded wall time even at 2000 ops.
    for col in (5, 6, 7, 8):
        assert all(float(l.split()[col]) < 15_000 for l in rows)
    for line in rows:
        cols = line.split()
        bitset_ms, array_ms = float(cols[5]), float(cols[6])
        compiled_ms, auto_ms = float(cols[7]), float(cols[8])
        # Soft regression guard on the hybrid dispatch: with the
        # ARRAY_MIN_NODES/ARRAY_MAX_NODES cutoffs in place the array
        # engine should never lose to bitset by more than ~10% at any
        # block size (below/above the cutoffs it *is* the bitset kernel
        # plus dispatch overhead).  The generous absolute slack absorbs
        # timer noise on the short small-block runs and CI jitter.
        assert array_ms <= 1.10 * bitset_ms + 75.0, (
            f"array engine regressed at {cols[0]} ops: "
            f"{array_ms:.1f}ms vs bitset {bitset_ms:.1f}ms"
        )
        # Auto-dispatch guard (hard acceptance): never more than 10%
        # (plus timer slack) slower than the best hand-picked engine on
        # any sweep row.
        best_ms = min(bitset_ms, array_ms, compiled_ms)
        assert auto_ms <= 1.10 * best_ms + 75.0, (
            f"auto dispatch regressed at {cols[0]} ops: "
            f"{auto_ms:.1f}ms vs best engine {best_ms:.1f}ms"
        )
        # Soft guard: compiled must at least keep pace with array — real
        # kernels under numba, the array fallback (plus a counter bump)
        # without a toolchain.
        assert compiled_ms <= 1.10 * array_ms + 75.0, (
            f"compiled engine regressed at {cols[0]} ops: "
            f"{compiled_ms:.1f}ms vs array {array_ms:.1f}ms"
        )


def test_scalability_kway(benchmark):
    def run():
        lines = ["n_vertices  k  cut_time_ms"]
        for n in (50, 200, 800, 2000):
            rng = random.Random(n)
            edges = {}
            for _ in range(n * 4):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    key = (min(u, v), max(u, v))
                    edges[key] = edges.get(key, 0.0) + rng.randint(1, 9)
            for k in (4, 16):
                t0 = time.perf_counter()
                kway_partition(n, edges, k=k, seed=n)
                dt = (time.perf_counter() - t0) * 1000
                lines.append(f"{n:10d}  {k:2d}  {dt:11.1f}")
        return lines

    lines = once(benchmark, run)
    emit("scalability_kway", lines)
    assert all(float(l.split()[2]) < 10_000 for l in lines[1:])
