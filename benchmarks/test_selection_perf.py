"""Design-space-exploration speed harness (PR 2 perf trajectory).

Times the fast engines introduced for the chapter 4-7 pipeline against the
scalar oracles they retain:

* ``inter_pareto``   — the frontier-merge exact utilization-area curve vs
  the recursion-(4.2) DP over the full cost axis, on a gate-scale 8-task
  x 12-option instance;
* ``simulation``     — the event-compressed scheduler simulator vs the
  release-by-release reference over one hyperperiod, EDF and RM;
* ``edf_selection``  — the stacked-argmin Algorithm 1 DP vs the original
  masked-update loop.

Each comparison also asserts bit-identical results (same curves, same
verdicts, same assignments) so the speed numbers always describe
equivalent computations.  Speedups and timings are written to
``benchmarks/results/BENCH_selection.json``.
"""

from __future__ import annotations

import math
import random
import time

from benchmarks.common import emit_json
from repro import cache
from repro.core import select_edf
from repro.pareto import TaskCurve, exact_utilization_curve
from repro.rtsched.simulator import simulate
from repro.testing import random_task_set


def _gate_scale_curves(seed: int = 7) -> list[TaskCurve]:
    """8 tasks x 12 options with realistic (hundreds-of-adders) areas.

    Large per-option areas blow up the reference DP's cost axis
    (cap = sum of per-task maxima) while the merge engine only ever holds
    the undominated partial frontier.
    """
    rng = random.Random(seed)
    curves = []
    for _ in range(8):
        period = float(rng.randint(2_000, 8_000))
        workloads = sorted(
            (float(rng.randint(200, 1_900)) for _ in range(12)), reverse=True
        )
        areas = [0] + sorted(rng.randint(20, 900) for _ in range(11))
        curves.append(
            TaskCurve(period=period, workloads=tuple(workloads), areas=tuple(areas))
        )
    return curves


#: Simulation workloads: non-harmonic periods -> large lcm hyperperiods.
SIM_WORKLOADS = {
    "8task_lcm9240": (
        (8.0, 10.0, 12.0, 15.0, 20.0, 22.0, 28.0, 30.0),
        (1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 5.0, 5.0),
    ),
    "5task_lcm8400": (
        (7.0, 12.0, 16.0, 25.0, 30.0),
        (1.0, 3.0, 4.0, 6.0, 7.0),
    ),
}


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall-clock over *repeats* runs (and the last result)."""
    best = math.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _ratio(a: float, b: float) -> float:
    return round(a / b, 2) if b > 0 else math.inf


def _bench_inter_pareto() -> dict:
    curves = _gate_scale_curves()
    t_ref, ref = _best_of(
        lambda: exact_utilization_curve(curves, engine="reference", use_cache=False),
        repeats=1,
    )
    t_merge, merge = _best_of(
        lambda: exact_utilization_curve(curves, engine="merge", use_cache=False)
    )
    assert [(p.value, p.cost) for p in merge] == [(p.value, p.cost) for p in ref]
    return {
        "instance": "8tasks_x_12options_gate_scale",
        "curve_points": len(merge),
        "reference_seconds": round(t_ref, 4),
        "merge_seconds": round(t_merge, 4),
        "speedup": _ratio(t_ref, t_merge),
    }


def _bench_simulation() -> dict:
    rows = {}
    for label, (periods, costs) in SIM_WORKLOADS.items():
        for policy in ("edf", "rm"):
            t_ref, ref = _best_of(
                lambda p=periods, c=costs, pol=policy: simulate(
                    list(p), list(c), policy=pol, engine="reference"
                ),
                repeats=1,
            )
            t_event, fast = _best_of(
                lambda p=periods, c=costs, pol=policy: simulate(
                    list(p), list(c), policy=pol
                )
            )
            assert fast.schedulable == ref.schedulable
            assert fast.missed == ref.missed
            rows[f"{label}_{policy}"] = {
                "hyperperiod": ref.horizon,
                "schedulable": ref.schedulable,
                "reference_seconds": round(t_ref, 4),
                "event_seconds": round(t_event, 4),
                "speedup": _ratio(t_ref, t_event),
            }
    return rows


def _bench_edf_selection() -> dict:
    ts = random_task_set(11, n_tasks=10, max_configs=12)
    budget = 0.5 * ts.max_area
    t_ref, ref = _best_of(
        lambda: select_edf(ts, budget, max_steps=40_000, engine="reference",
                           use_cache=False)
    )
    t_vec, vec = _best_of(
        lambda: select_edf(ts, budget, max_steps=40_000, engine="vector",
                           use_cache=False)
    )
    assert vec.assignment == ref.assignment
    assert vec.utilization == ref.utilization
    return {
        "instance": "10tasks_x_12configs",
        "reference_seconds": round(t_ref, 4),
        "vector_seconds": round(t_vec, 4),
        "speedup": _ratio(t_ref, t_vec),
    }


def test_selection_pipeline_speed(benchmark):
    cache.clear()

    def run() -> dict:
        return {
            "inter_pareto": _bench_inter_pareto(),
            "simulation": _bench_simulation(),
            "edf_selection": _bench_edf_selection(),
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    sim_speedups = {k: v["speedup"] for k, v in payload["simulation"].items()}
    payload["speedups"] = {
        "inter_pareto_merge_vs_dp": payload["inter_pareto"]["speedup"],
        "simulation_event_vs_reference": sim_speedups,
        "simulation_event_vs_reference_best": max(sim_speedups.values()),
        "edf_selection_vector_vs_reference": payload["edf_selection"]["speedup"],
    }
    emit_json("BENCH_selection", payload)

    # Acceptance: merge-based inter-task Pareto ≥3x over the full-axis DP
    # (headline ~30-40x) and the event-compressed simulator ≥3x over the
    # release-by-release engine on lcm-hyperperiod workloads (headline
    # ~4-5x).  Assert with margin so CI noise cannot flake the build.
    assert payload["speedups"]["inter_pareto_merge_vs_dp"] >= 3.0
    assert payload["speedups"]["simulation_event_vs_reference_best"] >= 2.5
    # The vector selection DP must at least not be slower than the oracle.
    assert payload["speedups"]["edf_selection_vector_vs_reference"] >= 1.0
