"""Tests for JSON serialization, text reports and the CLI."""

from __future__ import annotations

import json

import pytest

from repro import io as repro_io
from repro.cli import main
from repro.errors import ReproError
from repro.mtreconfig import synthetic_reconfig_tasks
from repro.report import format_curve, format_table, sparkline
from repro.rtsched import PeriodicTask, TaskSet
from repro.selection.config_curve import TaskConfiguration
from repro.workloads import jpeg_loops, jpeg_trace


def _task_set() -> TaskSet:
    t = PeriodicTask(
        name="t",
        period=10.0,
        wcet=4.0,
        configurations=(
            TaskConfiguration(0.0, 4.0),
            TaskConfiguration(3.0, 2.0),
        ),
    )
    return TaskSet([t], name="demo")


class TestIo:
    def test_task_set_roundtrip(self, tmp_path):
        ts = _task_set()
        path = tmp_path / "ts.json"
        repro_io.save_json(repro_io.task_set_to_dict(ts), path)
        loaded = repro_io.task_set_from_dict(repro_io.load_json(path))
        assert loaded.name == "demo"
        assert loaded[0].period == 10.0
        assert loaded[0].configurations == ts[0].configurations

    def test_hot_loops_roundtrip(self, tmp_path):
        loops, trace = jpeg_loops(), jpeg_trace(2)
        path = tmp_path / "loops.json"
        repro_io.save_json(repro_io.hot_loops_to_dict(loops, trace), path)
        loaded_loops, loaded_trace = repro_io.hot_loops_from_dict(
            repro_io.load_json(path)
        )
        assert loaded_trace == trace
        assert [lp.name for lp in loaded_loops] == [lp.name for lp in loops]
        assert loaded_loops[0].versions == loops[0].versions

    def test_reconfig_tasks_roundtrip(self, tmp_path):
        tasks = synthetic_reconfig_tasks(3, seed=1)
        path = tmp_path / "mt.json"
        repro_io.save_json(repro_io.reconfig_tasks_to_dict(tasks), path)
        loaded = repro_io.reconfig_tasks_from_dict(repro_io.load_json(path))
        assert loaded == tasks

    def test_schema_validation(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ReproError):
            repro_io.load_json(path)

    def test_kind_validation(self):
        data = repro_io.task_set_to_dict(_task_set())
        with pytest.raises(ReproError):
            repro_io.hot_loops_from_dict(data)


class TestAtomicSave:
    def test_failed_replace_leaves_original_and_no_litter(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "art.json"
        repro_io.save_json({"v": 1}, path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(repro_io.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            repro_io.save_json({"v": 2}, path)
        monkeypatch.undo()
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.iterdir()) == [path]  # no .tmp left behind

    def test_unserializable_payload_never_touches_target(self, tmp_path):
        path = tmp_path / "art.json"
        repro_io.save_json({"v": 1}, path)
        with pytest.raises(TypeError):
            repro_io.save_json({"v": object()}, path)
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_kill_during_write_never_corrupts(self, tmp_path):
        """SIGKILL a writer mid-save; the artifact must stay parseable."""
        import signal
        import subprocess
        import sys
        import time

        import repro

        src_dir = repro.__file__.rsplit("/repro/", 1)[0]
        target = tmp_path / "hammer.json"
        repro_io.save_json({"schema": "x", "blob": "y" * 400_000}, target)
        script = (
            f"import sys; sys.path.insert(0, {src_dir!r})\n"
            "from repro import io\n"
            "from pathlib import Path\n"
            f"p = Path({str(target)!r})\n"
            "data = {'schema': 'x', 'blob': 'z' * 400_000}\n"
            "while True:\n"
            "    io.save_json(data, p)\n"
        )
        for _ in range(5):
            proc = subprocess.Popen([sys.executable, "-c", script])
            time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            data = json.loads(target.read_text())  # never truncated/mixed
            assert data["blob"][0] == data["blob"][-1]
        # Stray .tmp files from the killed writer are acceptable litter,
        # but the target itself must always be one complete payload.


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [("a", 1.5), ("long-name", 20)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "long-name" in lines[3]

    def test_sparkline_range(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_format_curve_contains_both(self):
        out = format_curve([0, 1], [10, 5], "x", "y")
        assert "x" in out and "y:" in out


class TestCli:
    def test_benchmarks_lists(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "sha" in out

    def test_curve_and_save(self, tmp_path, capsys):
        out_file = tmp_path / "crc32.json"
        assert main(["curve", "crc32", "--output", str(out_file)]) == 0
        assert out_file.exists()
        loaded = repro_io.task_set_from_dict(repro_io.load_json(out_file))
        assert loaded[0].name == "crc32"

    def test_customize_from_json(self, tmp_path, capsys):
        ts_file = tmp_path / "ts.json"
        repro_io.save_json(repro_io.task_set_to_dict(_task_set()), ts_file)
        code = main(["customize", "x", "--input", str(ts_file), "--area", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "utilization after" in out

    def test_customize_synthetic(self, capsys):
        code = main(
            ["customize", "crc32", "ndes", "--utilization", "1.05"]
        )
        assert code == 0

    def test_reconfig_default_jpeg(self, capsys):
        assert main(["reconfig"]) == 0
        out = capsys.readouterr().out
        assert "iterative" in out and "fdct_row" in out

    def test_reconfig_from_json(self, tmp_path, capsys):
        loops, trace = jpeg_loops(), jpeg_trace(4)
        path = tmp_path / "loops.json"
        repro_io.save_json(repro_io.hot_loops_to_dict(loops, trace), path)
        assert main(["reconfig", "--input", str(path)]) == 0

    def test_reconfig_missing_trace_errors(self, tmp_path, capsys):
        loops = jpeg_loops()
        path = tmp_path / "loops.json"
        repro_io.save_json(repro_io.hot_loops_to_dict(loops), path)
        assert main(["reconfig", "--input", str(path)]) == 2

    def test_pareto(self, capsys):
        assert main(["pareto", "crc32", "lms", "--eps", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out


class TestCliFaults:
    def test_faults_synthetic_and_save(self, tmp_path, capsys):
        out_file = tmp_path / "faults.json"
        code = main(
            [
                "faults", "crc32", "sha",
                "--utilization", "1.05",
                "--policy", "edf",
                "--overrun-frac", "0.25",
                "--output", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "single CFU failure" in out
        report = json.loads(out_file.read_text())
        assert report["policies"][0]["policy"] == "edf"
        assert report["policies"][0]["single_cfu_failure"]["sim_agrees_all"]

    def test_faults_from_json(self, tmp_path, capsys):
        ts_file = tmp_path / "ts.json"
        repro_io.save_json(repro_io.task_set_to_dict(_task_set()), ts_file)
        code = main(
            ["faults", "x", "--input", str(ts_file), "--area", "5",
             "--policy", "both"]
        )
        assert code in (0, 1)  # robust or fragile, but never an error
        out = capsys.readouterr().out
        assert "robustness report" in out

    def test_faults_deterministic_across_runs(self, tmp_path, capsys):
        args = ["faults", "crc32", "--utilization", "1.05", "--policy",
                "rms", "--seed", "7"]
        main(args + ["--output", str(tmp_path / "a.json")])
        main(args + ["--output", str(tmp_path / "b.json")])
        capsys.readouterr()
        assert (tmp_path / "a.json").read_text() == (
            tmp_path / "b.json"
        ).read_text()

    def test_faults_bad_input_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["faults", "x", "--input", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
