"""Tests for the fault-injection and degraded-mode analysis subsystem.

The two load-bearing properties (ISSUE acceptance criteria):

* on >= 25 seeded task sets the degraded-mode analytic verdict
  (single-CFU-failure, fallback-to-base) agrees with the fault-injecting
  simulator for both EDF and RMS, on both simulator engines;
* simulation with an empty :class:`FaultModel` is bit-identical to the
  plain engines.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow import customize
from repro.errors import FaultError, ScheduleError
from repro.faults import (
    CONTAINMENT_POLICIES,
    FaultModel,
    cross_validate_single_fault,
    degraded_costs,
    degraded_schedulable,
    default_scenarios,
    format_fault_report,
    single_fault_report,
    sweep_faults,
)
from repro.rtsched.simulator import _CONTAINMENTS, simulate, simulate_taskset
from repro.rtsched.task import PeriodicTask, TaskSet
from repro.selection.config_curve import TaskConfiguration

PERIODS = (8.0, 10.0, 12.0, 16.0, 20.0, 24.0, 40.0)


def seeded_task_set(seed: int) -> tuple[TaskSet, list[int]]:
    """A random task set with (software, custom) curves and an assignment.

    Costs and periods stay integral so one-hyperperiod simulation is exact
    and analytic/simulated verdicts must agree bit for bit.
    """
    rng = random.Random(seed)
    n = rng.randint(2, 5)
    tasks = []
    for i in range(n):
        period = rng.choice(PERIODS)
        base = float(rng.randint(2, max(2, int(period) - 1)))
        custom = float(rng.randint(1, int(base)))
        tasks.append(
            PeriodicTask(
                name=f"t{i}",
                period=period,
                wcet=base,
                configurations=(
                    TaskConfiguration(area=0.0, cycles=base),
                    TaskConfiguration(area=float(rng.randint(1, 8)), cycles=custom),
                ),
            )
        )
    return TaskSet(tasks, name=f"seed{seed}"), [1] * n


class TestDegradedDifferential:
    """Analytic degraded verdict vs. fault-injecting simulator."""

    @pytest.mark.parametrize("seed", range(30))
    def test_single_fault_analysis_matches_simulation(self, seed):
        task_set, assignment = seeded_task_set(seed)
        for policy in ("edf", "rms"):
            for fault in range(len(task_set)):
                for engine in ("event", "reference"):
                    verdict, sim, agree = cross_validate_single_fault(
                        task_set, assignment, policy, fault, engine=engine
                    )
                    assert agree, (
                        f"seed={seed} policy={policy} fault={fault} "
                        f"engine={engine}: analytic={verdict.schedulable} "
                        f"sim={sim.schedulable}"
                    )

    @pytest.mark.parametrize("seed", range(30))
    def test_engines_agree_under_injection(self, seed):
        """The two engines stay field-identical with faults injected."""
        task_set, assignment = seeded_task_set(seed)
        model = FaultModel(
            seed=seed, overrun_prob=0.5, overrun_frac=0.5, jitter_frac=0.25
        )
        for policy in ("edf", "rm"):
            for containment in CONTAINMENT_POLICIES:
                a = simulate_taskset(
                    task_set, assignment, policy=policy, engine="event",
                    faults=model, containment=containment,
                )
                b = simulate_taskset(
                    task_set, assignment, policy=policy, engine="reference",
                    faults=model, containment=containment,
                )
                assert a.missed == b.missed
                assert a.aborted == b.aborted
                assert a.fault_stats == b.fault_stats
                assert a.busy_time == b.busy_time

    def test_nominal_verdict_matches_plain_simulation(self):
        task_set, assignment = seeded_task_set(3)
        verdict = degraded_schedulable(task_set, assignment, "edf", None)
        sim = simulate_taskset(task_set, assignment, policy="edf")
        assert verdict.schedulable == sim.schedulable

    def test_degraded_costs_pins_fault_task_to_base(self):
        task_set, assignment = seeded_task_set(5)
        costs = degraded_costs(task_set, assignment, 0)
        assert costs[0] == task_set[0].configurations[0].cycles
        for i in range(1, len(task_set)):
            assert costs[i] == task_set[i].configurations[1].cycles

    def test_report_classifies_fragile_tasks(self):
        # Custom costs fit exactly; any fallback to base overloads.
        tasks = [
            PeriodicTask(
                name=f"t{i}", period=10.0, wcet=8.0,
                configurations=(
                    TaskConfiguration(0.0, 8.0),
                    TaskConfiguration(4.0, 3.0),
                ),
            )
            for i in range(3)
        ]
        ts = TaskSet(tasks)
        report = single_fault_report(ts, [1, 1, 1], "edf")
        assert report.nominal.schedulable
        assert not report.robust
        assert report.fragile_tasks == (0, 1, 2)

    def test_all_software_assignment_is_trivially_robust(self):
        task_set, _ = seeded_task_set(7)
        if not degraded_schedulable(task_set, [0] * len(task_set), "edf").schedulable:
            pytest.skip("software-only unschedulable for this seed")
        report = single_fault_report(task_set, [0] * len(task_set), "edf")
        assert report.robust  # failing a CFU nobody uses changes nothing


class TestEmptyModelBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=1_000),
    )
    def test_empty_model_bit_identical(self, seed, model_seed):
        task_set, assignment = seeded_task_set(seed % 50)
        empty = FaultModel(seed=model_seed)
        assert empty.empty
        for policy in ("edf", "rm"):
            for engine in ("event", "reference"):
                plain = simulate_taskset(
                    task_set, assignment, policy=policy, engine=engine
                )
                injected = simulate_taskset(
                    task_set, assignment, policy=policy, engine=engine,
                    faults=empty,
                )
                # Dataclass equality compares every field, floats included;
                # fault_stats must be None on both sides (no injection ran).
                assert plain == injected
                assert injected.fault_stats is None

    def test_zero_magnitude_faults_are_empty(self):
        assert FaultModel(overrun_prob=1.0, overrun_frac=0.0).empty
        assert FaultModel(overrun_prob=0.0, overrun_frac=2.0).empty
        assert FaultModel(jitter_frac=0.0).empty
        assert not FaultModel(cfu_failed=frozenset({0})).empty
        assert not FaultModel(overrun_prob=0.1, overrun_frac=0.1).empty


class TestFaultModel:
    def test_draws_are_deterministic(self):
        m = FaultModel(seed=11, overrun_prob=0.5, overrun_frac=0.3)
        a = [m.job_fault(0, k, 4.0, 9.0) for k in range(50)]
        b = [m.job_fault(0, k, 4.0, 9.0) for k in range(50)]
        assert a == b

    def test_different_seeds_differ(self):
        kw = dict(overrun_prob=0.5, overrun_frac=0.3)
        a = [FaultModel(seed=1, **kw).job_fault(0, k, 4.0, 9.0) for k in range(64)]
        b = [FaultModel(seed=2, **kw).job_fault(0, k, 4.0, 9.0) for k in range(64)]
        assert a != b

    def test_cfu_failure_uses_base_budget(self):
        m = FaultModel(cfu_failed={1})
        jf = m.job_fault(1, 0, 4.0, 9.0)
        assert jf.cfu_failed and jf.budget == 9.0 and jf.demand == 9.0
        jf = m.job_fault(0, 0, 4.0, 9.0)
        assert not jf.faulted and jf.demand == 4.0

    def test_overrun_tasks_restriction(self):
        m = FaultModel(overrun_prob=1.0, overrun_frac=0.5, overrun_tasks={2})
        assert not m.job_fault(0, 0, 4.0, 9.0).overrun
        jf = m.job_fault(2, 0, 4.0, 9.0)
        assert jf.overrun and jf.demand == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultModel(overrun_prob=1.5)
        with pytest.raises(FaultError):
            FaultModel(jitter_prob=-0.1)
        with pytest.raises(FaultError):
            FaultModel(overrun_frac=-1.0)
        with pytest.raises(FaultError):
            FaultModel(cfu_failed={-1})

    def test_with_cfu_failed_preserves_other_knobs(self):
        m = FaultModel(seed=9, overrun_prob=0.2, overrun_frac=0.4)
        m2 = m.with_cfu_failed({0, 2})
        assert m2.cfu_failed == frozenset({0, 2})
        assert m2.seed == 9 and m2.overrun_prob == 0.2

    def test_policies_in_sync_with_simulator(self):
        assert CONTAINMENT_POLICIES == _CONTAINMENTS


class TestContainmentPolicies:
    def _set(self):
        # One task, generous period: overruns only hurt the task itself.
        return [10.0, 20.0], [3.0, 4.0], [8.0, 9.0]

    def test_run_to_completion_lets_overruns_miss(self):
        periods, costs, base = self._set()
        m = FaultModel(seed=0, overrun_prob=1.0, overrun_frac=5.0)
        r = simulate(periods, costs, faults=m, base_costs=base,
                     containment="run-to-completion")
        assert not r.schedulable and not r.aborted
        assert r.fault_stats.overruns == r.fault_stats.jobs

    def test_abort_job_contains_and_accounts(self):
        periods, costs, base = self._set()
        m = FaultModel(seed=0, overrun_prob=1.0, overrun_frac=5.0)
        r = simulate(periods, costs, faults=m, base_costs=base,
                     containment="abort-job")
        # Every job is truncated to its analyzed budget: the schedule holds
        # but every job is an accounted abort, and no demand leaks past the
        # budgets.
        assert r.schedulable
        assert len(r.aborted) == r.fault_stats.jobs
        assert r.fault_stats.contained == r.fault_stats.jobs
        assert r.fault_stats.excess_demand == 0.0

    def test_fallback_to_base_caps_at_software_cost(self):
        periods, costs, base = self._set()
        m = FaultModel(seed=0, overrun_prob=1.0, overrun_frac=50.0)
        r = simulate(periods, costs, faults=m, base_costs=base,
                     containment="fallback-to-base")
        # Demand is capped at the base-ISA cost, never 51x the budget.
        assert r.fault_stats.contained == r.fault_stats.jobs
        per_job_excess = [b - c for c, b in zip(costs, base)]
        assert r.fault_stats.excess_demand <= sum(
            e * 3 for e in per_job_excess
        ) + 1e-9  # 3 jobs of t0, 1-2 of t1 in the 20-hyperperiod

    def test_unknown_containment_rejected(self):
        with pytest.raises(ScheduleError):
            simulate([10.0], [2.0], faults=FaultModel(cfu_failed={0}),
                     containment="ostrich")

    def test_fault_task_out_of_range_rejected(self):
        with pytest.raises(ScheduleError):
            simulate([10.0], [2.0], faults=FaultModel(cfu_failed={5}))


class TestFlowIntegration:
    def test_customize_check_single_fault(self):
        task_set, _ = seeded_task_set(2)
        result = customize(
            task_set, 0.5 * task_set.max_area, policy="edf",
            check_single_fault=True,
        )
        if result.assignment is None:
            pytest.skip("no schedulable assignment for this seed")
        expected = single_fault_report(
            task_set, result.assignment, "edf"
        ).robust
        assert result.single_fault_robust == expected

    def test_customize_default_skips_check(self):
        task_set, _ = seeded_task_set(2)
        result = customize(task_set, 0.5 * task_set.max_area)
        assert result.single_fault_robust is None


class TestSweep:
    def _curved_set(self):
        def task(name, period, base, custom, area):
            return PeriodicTask(
                name=name, period=period, wcet=base,
                configurations=(
                    TaskConfiguration(0.0, base),
                    TaskConfiguration(area, custom),
                ),
            )

        return TaskSet(
            [task("a", 10.0, 8.0, 3.0, 4.0), task("b", 12.0, 9.0, 4.0, 5.0)],
            name="sweep-toy",
        )

    def test_sweep_report_shape_and_determinism(self):
        ts = self._curved_set()
        rep1 = sweep_faults(ts, seed=4)
        rep2 = sweep_faults(ts, seed=4)
        assert rep1 == rep2  # fully deterministic under a fixed seed
        policies = {e["policy"] for e in rep1["policies"]}
        assert policies == {"edf", "rms"}
        for entry in rep1["policies"]:
            if entry["single_cfu_failure"] is None:
                continue
            assert entry["single_cfu_failure"]["sim_agrees_all"]
            assert len(entry["single_cfu_failure"]["modes"]) == len(ts)

    def test_sweep_is_json_serializable(self):
        import json

        report = sweep_faults(self._curved_set(), seed=1)
        json.loads(json.dumps(report))

    def test_format_fault_report_renders(self):
        report = sweep_faults(self._curved_set(), area_budget=9.0, seed=1)
        text = format_fault_report(report)
        assert "single CFU failure" in text
        assert "sweep-toy" in text

    def test_default_scenarios_cover_all_containments(self):
        names = {s.containment for s in default_scenarios()}
        assert names == set(CONTAINMENT_POLICIES)
