"""Tests for :mod:`repro.obs` — tracer, metrics registry and warn-once.

Also carries the regression tests for the observability bugfixes: the
derived ``cache.stats()`` report and the epoch-scoped corrupt-cache
warning (the parallel-timeout regressions live in
``test_parallel_robustness.py``).
"""

from __future__ import annotations

import logging
from pathlib import Path

import pytest

from repro import cache, obs
from repro.parallel import parallel_map


@pytest.fixture
def tracing():
    """Enable tracing for one test and guarantee it is switched back off."""
    obs.enable_tracing()
    obs.clear_trace()
    yield
    obs.disable_tracing()
    obs.clear_trace()


def _traced_job(x: int) -> int:
    """Pool-safe job that records one span and one counter per call."""
    with obs.span("obs-test.child", x=x):
        pass
    obs.inc("obs-test.child_jobs")
    return x + 1


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.tracing_enabled()
        assert obs.span("a") is obs.span("b")
        with obs.span("ignored", key="value") as sp:
            sp.set(more="attrs")
        assert obs.trace_spans() == []

    def test_nesting_parent_links_and_ordering(self, tracing):
        with obs.span("outer", stage="x"):
            with obs.span("inner-1"):
                pass
            with obs.span("inner-2") as sp:
                sp.set(points=7)
        spans = obs.trace_spans()
        assert [s["name"] for s in spans] == ["outer", "inner-1", "inner-2"]
        outer, inner1, inner2 = spans
        assert outer["parent"] is None
        assert inner1["parent"] == outer["id"]
        assert inner2["parent"] == outer["id"]
        assert outer["attrs"] == {"stage": "x"}
        assert inner2["attrs"] == {"points": 7}
        # Sorted by start time; durations are non-negative and nested
        # spans cannot outlast their parent.
        assert outer["t0"] <= inner1["t0"] <= inner2["t0"]
        assert all(s["dur"] >= 0.0 for s in spans)
        assert inner1["dur"] <= outer["dur"]

    def test_sibling_spans_share_no_parent(self, tracing):
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        first, second = obs.trace_spans()
        assert first["parent"] is None
        assert second["parent"] is None
        assert first["id"] != second["id"]

    def test_name_attribute_does_not_collide(self, tracing):
        # span() takes its own name positionally-only, so payload attrs
        # may themselves be called "name".
        with obs.span("scenario", name="burst"):
            pass
        (span,) = obs.trace_spans()
        assert span["name"] == "scenario"
        assert span["attrs"] == {"name": "burst"}

    def test_exception_still_closes_span(self, tracing):
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        (span,) = obs.trace_spans()
        assert span["name"] == "doomed"
        assert span["dur"] >= 0.0


class TestMetrics:
    def test_counters_gauges_histograms(self):
        obs.inc("m.count")
        obs.inc("m.count", 4)
        obs.set_gauge("m.gauge", 2.5)
        obs.set_gauge("m.gauge", 7)
        for v in (3.0, 1.0, 5.0):
            obs.observe("m.hist", v)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["m.count"] == 5
        assert snap["gauges"]["m.gauge"] == 7
        hist = snap["histograms"]["m.hist"]
        assert hist["count"] == 3
        assert hist["total"] == 9.0
        assert hist["min"] == 1.0
        assert hist["max"] == 5.0

    def test_metrics_work_with_tracing_disabled(self):
        assert not obs.tracing_enabled()
        obs.inc("m.always_on")
        assert obs.metrics_snapshot()["counters"]["m.always_on"] == 1

    def test_reset_clears_state_and_bumps_epoch(self):
        obs.inc("m.count")
        obs.set_gauge("m.gauge", 1)
        obs.observe("m.hist", 1.0)
        epoch = obs.metrics_snapshot()["epoch"]
        obs.reset()
        snap = obs.metrics_snapshot()
        assert snap["epoch"] == epoch + 1
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_warn_once_per_epoch(self):
        assert obs.warn_once("k") is True
        assert obs.warn_once("k") is False
        assert obs.warn_once("other") is True
        obs.rearm_warning("k")
        assert obs.warn_once("k") is True
        obs.reset()  # a new epoch re-arms every key
        assert obs.warn_once("k") is True
        assert obs.warn_once("other") is True


class TestExport:
    def test_jsonl_round_trip(self, tracing, tmp_path):
        with obs.span("root", kind="demo"):
            with obs.span("leaf"):
                pass
        obs.inc("rt.counter", 3)
        path = tmp_path / "trace.jsonl"
        obs.export_trace(path)

        lines = path.read_text().splitlines()
        assert len(lines) == 3  # two spans + one metrics line

        spans, metrics = obs.load_trace(path)
        assert [s["name"] for s in spans] == ["root", "leaf"]
        assert spans[1]["parent"] == spans[0]["id"]
        assert metrics["counters"]["rt.counter"] == 3

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            obs.load_trace(tmp_path / "absent.jsonl")


class TestChildCapture:
    def test_merge_payload_reparents_and_merges(self, tracing):
        # Simulate a worker process: capture spans/metrics in a clean
        # buffer, then merge them back under the parent's open span.
        obs.begin_child_capture()
        with obs.span("child-root"):
            with obs.span("child-leaf"):
                pass
        obs.inc("merge.counter", 2)
        obs.set_gauge("merge.gauge", 1)
        obs.observe("merge.hist", 4.0)
        payload = obs.end_child_capture()

        obs.enable_tracing()
        obs.clear_trace()
        obs.inc("merge.counter", 1)
        obs.set_gauge("merge.gauge", 9)
        obs.observe("merge.hist", 2.0)
        with obs.span("parent") as sp:
            del sp
            obs.merge_payload(payload)
        spans = {s["name"]: s for s in obs.trace_spans()}
        assert set(spans) == {"parent", "child-root", "child-leaf"}
        assert spans["child-root"]["parent"] == spans["parent"]["id"]
        assert spans["child-leaf"]["parent"] == spans["child-root"]["id"]

        snap = obs.metrics_snapshot()
        assert snap["counters"]["merge.counter"] == 3  # additive
        assert snap["gauges"]["merge.gauge"] == 1  # last merge wins
        hist = snap["histograms"]["merge.hist"]
        assert hist["count"] == 2
        assert hist["total"] == 6.0
        assert hist["min"] == 2.0
        assert hist["max"] == 4.0

    def test_parallel_map_merges_worker_spans(self, tracing):
        # Whether the pool runs (child-capture merge) or the map degrades
        # to serial (spans recorded directly in the parent), every job's
        # span and counter must land in the parent trace.
        with obs.span("parent"):
            out = parallel_map(_traced_job, [1, 2, 3], workers=2)
        assert out == [2, 3, 4]
        children = [s for s in obs.trace_spans() if s["name"] == "obs-test.child"]
        assert len(children) == 3
        assert sorted(s["attrs"]["x"] for s in children) == [1, 2, 3]
        assert all(s["parent"] is not None for s in children)
        assert obs.metrics_snapshot()["counters"]["obs-test.child_jobs"] == 3


class TestCacheRegressions:
    def test_stats_keys_match_registered_kinds(self):
        # stats() carries one row per registered kind, plus — when a
        # persistent tier is configured (e.g. the chaos CI job sets
        # REPRO_CACHE_DIR for the whole suite) — a "disk" occupancy row.
        stats = cache.stats()
        kinds = {k: v for k, v in stats.items() if k != "disk"}
        assert tuple(sorted(kinds)) == cache.registered_kinds()
        assert len(kinds) > 0
        for row in kinds.values():
            assert set(row) == {"hits", "misses", "size"}

    def test_clear_zeroes_every_counter(self):
        # Drive at least one kind, then verify clear() zeroes all of them.
        cache.fetch_candidates("no-such-key")
        assert any(
            row["misses"]
            for kind, row in cache.stats().items()
            if kind != "disk"
        )
        cache.clear()
        for kind, row in cache.stats().items():
            if kind == "disk":
                continue
            assert row == {"hits": 0, "misses": 0, "size": 0}, kind

    def test_corrupt_warning_once_per_epoch_counts_all(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.cache"):
            cache._warn_corrupt_once(Path("a.json"), "bad checksum")
            cache._warn_corrupt_once(Path("b.json"), "bad checksum")
        assert len(caplog.records) == 1  # log-once per epoch
        assert obs.metrics_snapshot()["counters"]["cache.corrupt_entries"] == 2

        caplog.clear()
        obs.reset()  # new epoch re-arms the warning
        with caplog.at_level(logging.WARNING, logger="repro.cache"):
            cache._warn_corrupt_once(Path("c.json"), "bad checksum")
        assert len(caplog.records) == 1
        assert obs.metrics_snapshot()["counters"]["cache.corrupt_entries"] == 1
