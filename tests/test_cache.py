"""Tests for the content-keyed identification-artifact cache."""

from __future__ import annotations

import pytest

from repro import cache
from repro.core.flow import build_task, build_tasks
from repro.enumeration import build_candidate_library
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, Loop, Program, Seq
from repro.isa.opcodes import Opcode
from repro.selection import build_configuration_curve
from tests.conftest import random_small_dfg


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts with an empty in-process cache and no disk tier."""
    cache.set_enabled(True)
    cache.set_cache_dir(None)
    cache.clear()
    yield
    cache.set_enabled(True)
    cache.reset_cache_dir()
    cache.clear()


def make_program(name: str = "p", bound: int = 10) -> Program:
    def block(ops: int, seed: int) -> Block:
        return Block(random_small_dfg(seed, ops))

    return Program(
        name,
        Seq([block(4, 1), Loop(block(8, 2), bound=bound), block(3, 3)]),
    )


class TestFingerprint:
    def test_identical_structure_same_fingerprint(self):
        a, b = make_program("a"), make_program("b")
        assert cache.program_fingerprint(a) == cache.program_fingerprint(b)

    def test_structural_change_changes_fingerprint(self):
        a = make_program(bound=10)
        b = make_program(bound=11)
        assert cache.program_fingerprint(a) != cache.program_fingerprint(b)

    def test_dfg_change_changes_fingerprint(self):
        a = make_program()
        b = make_program()
        b.basic_blocks[0].dfg.set_live_out(0)
        assert cache.program_fingerprint(a) != cache.program_fingerprint(b)

    def test_artifact_key_sensitive_to_params(self):
        fp = cache.program_fingerprint(make_program())
        assert cache.artifact_key(fp, max_inputs=4) != cache.artifact_key(
            fp, max_inputs=2
        )


class TestLibraryCache:
    def test_second_build_hits_cache(self):
        program = make_program()
        first = build_candidate_library(program)
        before = cache.cache_info()["library"]["hits"]
        second = build_candidate_library(program)
        assert cache.cache_info()["library"]["hits"] == before + 1
        assert first.candidates == second.candidates

    def test_equivalent_program_objects_share_entries(self):
        first = build_candidate_library(make_program("x"))
        second = build_candidate_library(make_program("y"))
        assert first.candidates == second.candidates
        assert cache.cache_info()["library"]["hits"] >= 1

    def test_use_cache_false_bypasses(self):
        program = make_program()
        build_candidate_library(program, use_cache=False)
        assert cache.cache_info()["library"]["size"] == 0

    def test_param_change_misses(self):
        program = make_program()
        build_candidate_library(program)
        build_candidate_library(program, max_inputs=2)
        assert cache.cache_info()["library"]["size"] == 2

    def test_disabled_globally(self):
        cache.set_enabled(False)
        build_candidate_library(make_program())
        assert cache.cache_info()["library"]["size"] == 0


class TestCurveCache:
    def test_second_curve_hits_cache(self):
        program = make_program()
        lib = build_candidate_library(program)
        a = build_configuration_curve(program, lib.candidates)
        b = build_configuration_curve(program, lib.candidates)
        assert a == b
        assert cache.cache_info()["curve"]["hits"] >= 1

    def test_candidate_subset_gets_distinct_entry(self):
        program = make_program()
        lib = build_candidate_library(program)
        full = build_configuration_curve(program, lib.candidates)
        half = build_configuration_curve(program, lib.candidates[: len(lib) // 2])
        assert cache.cache_info()["curve"]["size"] == 2
        assert full[0].cycles == half[0].cycles  # same software point


class TestDiskCache:
    def test_roundtrip_through_disk(self, tmp_path):
        cache.set_cache_dir(tmp_path)
        program = make_program()
        lib = build_candidate_library(program)
        curve = build_configuration_curve(program, lib.candidates)
        assert list(tmp_path.glob("repro-cache-*.json"))
        # Drop the in-process tier; the disk tier must reproduce everything.
        cache.clear()
        lib2 = build_candidate_library(program)
        curve2 = build_configuration_curve(program, lib2.candidates)
        assert lib2.candidates == lib.candidates
        assert curve2 == curve

    def test_structural_keys_survive_json(self, tmp_path):
        cache.set_cache_dir(tmp_path)
        program = make_program()
        lib = build_candidate_library(program)
        cache.clear()
        lib2 = build_candidate_library(program)
        assert lib.isomorphism_classes() == lib2.isomorphism_classes()

    def test_corrupt_file_ignored(self, tmp_path):
        cache.set_cache_dir(tmp_path)
        program = make_program()
        build_candidate_library(program)
        for f in tmp_path.glob("repro-cache-*.json"):
            f.write_text("{not json")
        cache.clear()
        lib = build_candidate_library(program)  # silently rebuilds
        assert len(lib) > 0


class TestTaskBuildIntegration:
    def test_build_task_warm_path_equal(self):
        program = make_program()
        cold = build_task(program)
        warm = build_task(program)
        assert cold == warm
        info = cache.cache_info()
        assert info["library"]["hits"] >= 1
        assert info["curve"]["hits"] >= 1

    def test_engines_cached_separately(self):
        program = make_program()
        build_task(program, engine="bitset")
        build_task(program, engine="reference")
        assert cache.cache_info()["library"]["size"] == 2

    def test_parallel_build_matches_serial(self):
        programs = [make_program(f"p{i}", bound=10 + i) for i in range(3)]
        serial = build_tasks(programs)
        cache.clear()
        parallel = build_tasks(programs, workers=2)
        assert serial == parallel


class TestDiskHardening:
    """Corrupt, truncated or tampered disk entries degrade to misses."""

    def _store_one(self, tmp_path):
        cache.set_cache_dir(tmp_path)
        program = make_program()
        task = build_task(program)
        files = list(tmp_path.glob("repro-cache-*.json"))
        assert files, "expected disk entries"
        return program, task, files

    def test_entries_carry_checksum_and_schema(self, tmp_path):
        import json

        _, _, files = self._store_one(tmp_path)
        for f in files:
            entry = json.loads(f.read_text())
            assert entry["schema"] == cache.SCHEMA_VERSION
            assert entry["checksum"] == cache._payload_checksum(entry["payload"])

    def test_truncated_entry_quarantined_and_rebuilt(self, tmp_path):
        program, task, files = self._store_one(tmp_path)
        for f in files:
            f.write_text(f.read_text()[: len(f.read_text()) // 2])
        cache.clear()
        rebuilt = build_task(program)  # miss -> recompute, never raises
        assert rebuilt == task
        assert list(tmp_path.glob("*.corrupt")), "corrupt files not quarantined"

    def test_garbage_entry_quarantined(self, tmp_path):
        program, task, files = self._store_one(tmp_path)
        for f in files:
            f.write_text("\x00\xff garbage not json")
        cache.clear()
        assert build_task(program) == task
        assert len(list(tmp_path.glob("*.corrupt"))) == len(files)

    def test_tampered_payload_rejected_by_checksum(self, tmp_path):
        import json

        program, task, files = self._store_one(tmp_path)
        for f in files:
            entry = json.loads(f.read_text())
            if isinstance(entry["payload"], list) and entry["payload"]:
                entry["payload"] = entry["payload"][:-1]  # drop an element
                f.write_text(json.dumps(entry))
        cache.clear()
        assert build_task(program) == task  # tamper detected -> recompute

    def test_non_object_entry_quarantined(self, tmp_path):
        program, task, files = self._store_one(tmp_path)
        for f in files:
            f.write_text('["not", "an", "object"]')
        cache.clear()
        assert build_task(program) == task
        assert list(tmp_path.glob("*.corrupt"))

    def test_stale_schema_is_plain_miss_without_quarantine(self, tmp_path):
        import json

        program, task, files = self._store_one(tmp_path)
        for f in files:
            entry = json.loads(f.read_text())
            entry["schema"] = cache.SCHEMA_VERSION - 1
            f.write_text(json.dumps(entry))
        cache.clear()
        assert build_task(program) == task
        assert not list(tmp_path.glob("*.corrupt"))

    def test_writes_are_atomic_no_tmp_left_behind(self, tmp_path):
        self._store_one(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_clear_disk_sweeps_quarantined_files(self, tmp_path):
        program, _, files = self._store_one(tmp_path)
        files[0].write_text("{broken")
        cache.clear()
        cache.fetch_candidates("0" * 64)  # touch the disk tier
        build_task(program)
        cache.clear(disk=True)
        assert not list(tmp_path.glob("repro-cache-*"))

    def test_corruption_round_trip_preserves_results(self, tmp_path):
        """Alternating corruption and rebuilds never changes the artifact."""
        program, task, _ = self._store_one(tmp_path)
        for _ in range(3):
            for f in tmp_path.glob("repro-cache-*.json"):
                f.write_text("{torn write")
            cache.clear()
            assert build_task(program) == task


class TestBackendsAndEviction:
    """The pluggable persistent tier: budgets, LRU eviction, stats."""

    def _fill(self, n: int, prefix: str = "ev") -> list[str]:
        keys = [f"{prefix}-{i:02d}" for i in range(n)]
        for i, key in enumerate(keys):
            cache.store_service_result(key, {"i": i, "pad": "x" * 64})
        return keys

    def test_memory_backend_roundtrip_and_entry_budget(self):
        from repro.cache_backends import MemoryBackend

        backend = MemoryBackend(max_entries=3)
        cache.set_backend(backend)
        try:
            keys = self._fill(5)
            stats = backend.stats()
            assert stats["entries"] == 3
            assert stats["evictions"] == 2
            # Survivors are the most recently stored; clear the LRU so the
            # fetch has to go through the backend.
            cache.clear()
            assert cache.fetch_service_result(keys[0]) is None
            assert cache.fetch_service_result(keys[4]) == {
                "i": 4, "pad": "x" * 64,
            }
        finally:
            cache.reset_backend()

    def test_memory_backend_byte_budget(self):
        from repro.cache_backends import MemoryBackend

        backend = MemoryBackend(max_bytes=600)
        cache.set_backend(backend)
        try:
            self._fill(8)
            assert backend.stats()["bytes"] <= 600
            assert backend.stats()["evictions"] >= 1
        finally:
            cache.reset_backend()

    def test_local_dir_eviction_is_lru_by_mtime(self, tmp_path):
        import os
        import time as time_mod

        from repro.cache_backends import LocalDirBackend

        backend = LocalDirBackend(tmp_path, max_entries=2, sweep_interval=1)
        cache.set_backend(backend)
        try:
            keys = self._fill(2, prefix="lru")
            # Backdate the first entry, then *hit* it: the validated read
            # refreshes its mtime, so the un-hit second entry is evicted.
            (first,) = [
                p for p in tmp_path.glob("repro-cache-service-*lru-00*")
            ]
            old = time_mod.time() - 1000
            os.utime(first, (old, old))
            cache.clear()
            assert cache.fetch_service_result(keys[0]) is not None
            self._fill(1, prefix="lru-new")
            backend.sweep()
            names = sorted(p.name for p in tmp_path.glob("repro-cache-*.json"))
            assert len(names) == 2
            assert any("lru-00" in n for n in names)   # refreshed: kept
            assert any("lru-new" in n for n in names)  # newest: kept
            assert not any("lru-01" in n for n in names)  # LRU: evicted
        finally:
            cache.reset_backend()

    def test_sweep_is_amortized_over_stores(self, tmp_path):
        from repro.cache_backends import LocalDirBackend

        backend = LocalDirBackend(tmp_path, max_entries=2, sweep_interval=50)
        cache.set_backend(backend)
        try:
            self._fill(6)
            # Below the sweep interval: budget intentionally not enforced
            # yet (sweeps cost a directory scan; they are amortized).
            assert len(list(tmp_path.glob("repro-cache-*.json"))) == 6
            backend.sweep()
            assert len(list(tmp_path.glob("repro-cache-*.json"))) == 2
        finally:
            cache.reset_backend()

    def test_stats_carries_disk_row_with_backend(self, tmp_path):
        cache.set_cache_dir(tmp_path)
        self._fill(3)
        stats = cache.stats()
        assert stats["disk"]["backend"] == "local"
        assert stats["disk"]["entries"] == 3
        assert stats["disk"]["bytes"] > 0
        for field in ("evictions", "evicted_bytes", "lock_contention"):
            assert field in stats["disk"]
        cache.set_cache_dir(None)
        assert "disk" not in cache.stats()
        assert cache.disk_stats() is None

    def test_backend_from_env_selection(self, tmp_path, monkeypatch):
        from repro import cache_backends

        monkeypatch.setenv(cache_backends.ENV_BACKEND, "shared")
        assert cache_backends.backend_from_env(tmp_path).name == "shared"
        monkeypatch.setenv(cache_backends.ENV_BACKEND, "bogus")
        assert cache_backends.backend_from_env(tmp_path).name == "local"
        monkeypatch.delenv(cache_backends.ENV_BACKEND)
        assert cache_backends.backend_from_env(tmp_path).name == "local"

    def test_shared_backend_excl_lock_blocks_second_sweeper(self, tmp_path):
        from repro.cache_backends import SharedDirBackend, _ExclLock

        backend = SharedDirBackend(tmp_path, max_entries=1)
        cache.set_backend(backend)
        try:
            self._fill(3)
            token = _ExclLock.acquire(tmp_path)
            assert token is not None
            before = backend.lock_contention
            backend.sweep()  # contended: must skip, not block or corrupt
            assert backend.lock_contention == before + 1
            _ExclLock.release(token)
            backend.sweep()
            assert len(list(tmp_path.glob("repro-cache-*.json"))) == 1
        finally:
            cache.reset_backend()

    def test_excl_lock_breaks_stale_but_never_fresh_locks(self, tmp_path):
        import os
        import time

        from repro import cache_backends
        from repro.cache_backends import _ExclLock

        path = tmp_path / "repro-cache.lock.pid"
        path.write_text("12345")
        # A fresh lock is honored: the contender backs off without
        # touching it.
        assert _ExclLock.acquire(tmp_path) is None
        assert path.exists()
        # A stale lock (holder presumed crashed) is broken — via
        # rename-to-unique + unlink so concurrent breakers cannot
        # destroy a fresh lock created in the window — and the next
        # acquire wins.
        old = time.time() - cache_backends._STALE_LOCK_SECONDS - 5
        os.utime(path, (old, old))
        assert _ExclLock.acquire(tmp_path) is None  # breaker retries later
        assert not path.exists()
        token = _ExclLock.acquire(tmp_path)
        assert token is not None
        _ExclLock.release(token)

    def test_env_budget_drives_auto_backend(self, tmp_path, monkeypatch):
        from repro import cache_backends

        monkeypatch.setenv(cache_backends.ENV_MAX_ENTRIES, "4")
        cache.set_cache_dir(tmp_path)
        backend = cache.active_backend()
        assert backend is not None and backend.max_entries == 4
        self._fill(9)
        backend.sweep()
        assert len(list(tmp_path.glob("repro-cache-*.json"))) == 4
