"""Tests for the validation harness and the public testing utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import random_dfg, random_hot_loops, random_task_set
from repro.validation import validate_program_costs, validate_task_set
from repro.workloads import get_program


class TestTestingUtilities:
    def test_random_dfg_deterministic(self):
        a = random_dfg(7, 12)
        b = random_dfg(7, 12)
        assert [a.op(n) for n in a.nodes] == [b.op(n) for n in b.nodes]
        assert [a.preds(n) for n in a.nodes] == [b.preds(n) for n in b.nodes]

    def test_random_dfg_invalid_ops_optional(self):
        from repro.isa.opcodes import is_valid_op

        clean = random_dfg(3, 30, include_invalid=False)
        assert all(is_valid_op(clean.op(n)) for n in clean.nodes)

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_random_task_set_valid(self, seed):
        ts = random_task_set(seed, n_tasks=3)
        for t in ts:
            areas = [c.area for c in t.configurations]
            cycles = [c.cycles for c in t.configurations]
            assert areas[0] == 0.0
            assert cycles[0] == t.wcet
            assert areas == sorted(areas)

    def test_random_task_set_utilization_target(self):
        ts = random_task_set(5, n_tasks=4, utilization=1.2)
        assert ts.utilization == pytest.approx(1.2)

    def test_random_hot_loops(self):
        loops, trace = random_hot_loops(3, n_loops=5)
        assert len(loops) == 5
        assert set(trace) == set(range(5))


class TestValidationHarness:
    def test_task_set_validation_passes(self):
        ts = random_task_set(11, n_tasks=3, utilization=0.9)
        report = validate_task_set(ts, 0.5 * ts.max_area)
        assert report.passed, report.summary()

    def test_unschedulable_set_skips_simulation(self):
        ts = random_task_set(13, n_tasks=3, utilization=2.5)
        report = validate_task_set(ts, 0.0)
        assert report.passed  # skipped simulation counts as pass
        assert any("skipped" in detail for _n, _ok, detail in report.checks)

    @pytest.mark.parametrize("name", ["crc32", "lms", "bitcount"])
    def test_program_cost_validation(self, name):
        report = validate_program_costs(get_program(name))
        assert report.passed, report.summary()

    def test_summary_format(self):
        ts = random_task_set(17, n_tasks=2, utilization=0.8)
        report = validate_task_set(ts, ts.max_area)
        text = report.summary()
        assert "[PASS]" in text or "[FAIL]" in text

    @given(st.integers(0, 60))
    @settings(max_examples=10, deadline=None)
    def test_validation_property(self, seed):
        """Any random schedulable task set passes the full harness."""
        ts = random_task_set(seed, n_tasks=3, utilization=0.85)
        report = validate_task_set(ts, 0.6 * ts.max_area)
        assert report.passed, report.summary()


class TestNewBenchmarks:
    @pytest.mark.parametrize(
        "name",
        ["fft", "viterbi", "gsm", "dijkstra", "qsort", "patricia",
         "stringsearch", "bitcount"],
    )
    def test_breadth_benchmarks_build(self, name):
        program = get_program(name)
        assert program.wcet() > 0
        mx, avg = program.block_stats()
        assert mx >= avg >= 2
