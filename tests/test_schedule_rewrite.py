"""Tests for DFG list scheduling and custom-instruction rewriting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import list_schedule, rewrite_block, schedule_dfg
from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import Opcode, op_info
from tests.conftest import random_small_dfg


class TestListSchedule:
    def test_single_issue_chain_is_additive(self, chain_dfg):
        res = schedule_dfg(chain_dfg, issue_width=1)
        assert res.makespan == chain_dfg.sw_cycles()

    def test_wide_issue_exploits_parallelism(self, diamond_dfg):
        narrow = schedule_dfg(diamond_dfg, issue_width=1)
        wide = schedule_dfg(diamond_dfg, issue_width=2)
        assert wide.makespan <= narrow.makespan
        # Diamond: n1 and n2 run in parallel with width 2.
        assert wide.makespan == 3

    def test_dependencies_respected(self):
        dfg = random_small_dfg(3, 15)
        res = schedule_dfg(dfg, issue_width=2)
        for n in dfg.nodes:
            for p in dfg.preds(n):
                finish = res.start_cycle[p] + op_info(dfg.op(p)).sw_cycles
                assert res.start_cycle[n] >= finish

    def test_width_limit_respected(self):
        dfg = random_small_dfg(7, 20)
        res = schedule_dfg(dfg, issue_width=2)
        per_cycle: dict[int, int] = {}
        for n, c in res.start_cycle.items():
            per_cycle[c] = per_cycle.get(c, 0) + 1
        assert max(per_cycle.values()) <= 2

    @given(st.integers(0, 100), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds(self, seed, width):
        """Critical path <= makespan <= serial sum, and wider never hurts."""
        dfg = random_small_dfg(seed, 12)
        res = schedule_dfg(dfg, issue_width=width)
        serial = dfg.sw_cycles()
        # Critical path in sw latencies.
        cp: dict[int, int] = {}
        for n in dfg.nodes:
            lat = op_info(dfg.op(n)).sw_cycles
            cp[n] = lat + max((cp[p] for p in dfg.preds(n)), default=0)
        assert max(cp.values()) <= res.makespan <= serial
        wider = schedule_dfg(dfg, issue_width=width + 1)
        assert wider.makespan <= res.makespan

    def test_empty_graph(self):
        res = list_schedule([], {}, {})
        assert res.makespan == 0

    def test_invalid_width(self):
        with pytest.raises(GraphError):
            list_schedule([0], {0: []}, {0: 1}, issue_width=0)


class TestRewrite:
    def test_chain_rewrite_reduces_cycles(self, chain_dfg):
        rb = rewrite_block(chain_dfg, [{0, 1, 2}])
        assert rb.n_custom == 1
        assert rb.sequential_cycles() < chain_dfg.sw_cycles()

    def test_rewrite_matches_gain_arithmetic(self, chain_dfg):
        """Rewritten sequential cost == original - candidate gain."""
        from repro.enumeration import make_candidate

        cand = make_candidate(chain_dfg, [0, 1, 2])
        rb = rewrite_block(chain_dfg, [cand.nodes])
        assert rb.sequential_cycles() == chain_dfg.sw_cycles() - cand.gain_per_exec

    def test_uncovered_nodes_keep_latency(self, diamond_dfg):
        rb = rewrite_block(diamond_dfg, [{1, 2}])
        assert rb.node_latency[0] == op_info(diamond_dfg.op(0)).sw_cycles
        assert rb.node_latency[3] == op_info(diamond_dfg.op(3)).sw_cycles

    def test_dependencies_preserved(self, diamond_dfg):
        rb = rewrite_block(diamond_dfg, [{1, 2}])
        super_node = next(n for n, m in rb.node_members.items() if len(m) == 2)
        assert 0 in rb.preds[super_node]
        assert super_node in rb.preds[3]

    def test_overlapping_instructions_rejected(self, diamond_dfg):
        with pytest.raises(GraphError):
            rewrite_block(diamond_dfg, [{0, 1}, {1, 2}])

    def test_unknown_node_rejected(self, chain_dfg):
        with pytest.raises(GraphError):
            rewrite_block(chain_dfg, [{0, 99}])

    def test_nonconvex_instruction_detected(self, diamond_dfg):
        """Folding {0, 3} around the diamond creates a cycle."""
        with pytest.raises(GraphError):
            rewrite_block(diamond_dfg, [{0, 3}])

    @given(st.integers(0, 80))
    @settings(max_examples=25, deadline=None)
    def test_rewrite_consistent_with_subtractive_model(self, seed):
        """For disjoint feasible candidates, the rewritten single-issue cost
        equals the subtractive-gain model used by the config curves."""
        from repro.enumeration import enumerate_connected, make_candidate
        from repro.graphs import rewrite_block
        from repro.graphs.rewrite import acyclic_subset
        from repro.selection import select_greedy

        dfg = random_small_dfg(seed, 14)
        subs = enumerate_connected(dfg, 4, 2, max_size=6)
        cands = [make_candidate(dfg, s) for s in subs]
        chosen = select_greedy(cands, float("inf"))
        # Disjoint convex candidates may still be jointly cyclic: codegen
        # keeps a foldable subset.
        groups = acyclic_subset(dfg, [cands[i].nodes for i in chosen])
        if not groups:
            return
        kept = [i for i in chosen if cands[i].nodes in set(groups)]
        rb = rewrite_block(dfg, groups)
        expected = dfg.sw_cycles() - sum(cands[i].gain_per_exec for i in kept)
        assert rb.sequential_cycles() == expected

    def test_scheduled_cycles_leq_sequential(self):
        dfg = random_small_dfg(11, 20)
        rb = rewrite_block(dfg, [])
        assert rb.scheduled_cycles(issue_width=2) <= rb.sequential_cycles()


class TestMlgpCodegenConsistency:
    @given(st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_mlgp_partitions_fold_consistently(self, seed):
        """Folding MLGP's custom instructions reduces the block cost by
        exactly the sum of the folded partitions' gains."""
        from repro.graphs.rewrite import acyclic_subset
        from repro.mlgp import mlgp_partition

        dfg = random_small_dfg(seed, 22)
        regions = dfg.regions()
        if not regions or len(regions[0]) < 2:
            return
        result = mlgp_partition(dfg, regions[0])
        cis = result.custom_instructions()
        groups = acyclic_subset(dfg, cis)
        rb = rewrite_block(dfg, groups)
        kept_gain = 0.0
        group_set = set(groups)
        for part, gain in zip(result.partitions, result.gains):
            if part in group_set:
                kept_gain += gain
        assert rb.sequential_cycles() == dfg.sw_cycles() - kept_gain


class TestDotExport:
    def test_dfg_dot_structure(self, diamond_dfg):
        from repro.graphs import dfg_to_dot

        dot = dfg_to_dot(diamond_dfg, name="diamond")
        assert dot.startswith('digraph "diamond"')
        assert dot.count("->") == 4
        assert "n0 -> n1;" in dot

    def test_instruction_clusters(self, diamond_dfg):
        from repro.graphs import dfg_to_dot

        dot = dfg_to_dot(diamond_dfg, instructions=[{1, 2}])
        assert "cluster_ci0" in dot
        assert dot.count("n1 [") == 1  # grouped node emitted once

    def test_invalid_nodes_dashed(self, load_split_dfg):
        from repro.graphs import dfg_to_dot

        dot = dfg_to_dot(load_split_dfg)
        assert "style=dashed" in dot

    def test_rewritten_dot(self, diamond_dfg):
        from repro.graphs import rewritten_to_dot

        rb = rewrite_block(diamond_dfg, [{1, 2}])
        dot = rewritten_to_dot(rb)
        assert "CI(2 ops" in dot
        assert "peripheries=2" in dot
