"""Tests for the sensitivity-analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    area_sweep,
    marginal_area_utility,
    utilization_breakdown,
)
from repro.errors import ScheduleError
from repro.rtsched import PeriodicTask, TaskSet
from repro.selection.config_curve import TaskConfiguration


def _taskset():
    def t(name, period, configs):
        return PeriodicTask(
            name=name,
            period=period,
            wcet=configs[0][1],
            configurations=tuple(TaskConfiguration(a, c) for a, c in configs),
        )

    return TaskSet(
        [
            t("heavy", 10, [(0, 8), (4, 6), (8, 4)]),
            t("light", 20, [(0, 4), (4, 2)]),
        ]
    )


class TestBreakdown:
    def test_shares_sum_to_one(self):
        ts = _taskset()
        rows = utilization_breakdown(ts, [0, 0])
        assert sum(r.share for r in rows) == pytest.approx(1.0)

    def test_sorted_by_utilization(self):
        rows = utilization_breakdown(_taskset(), [0, 0])
        utils = [r.utilization for r in rows]
        assert utils == sorted(utils, reverse=True)
        assert rows[0].name == "heavy"

    def test_headroom_zero_at_best_configuration(self):
        rows = utilization_breakdown(_taskset(), [2, 1])
        assert all(r.headroom == pytest.approx(0.0) for r in rows)

    def test_headroom_positive_in_software(self):
        rows = utilization_breakdown(_taskset(), [0, 0])
        heavy = next(r for r in rows if r.name == "heavy")
        assert heavy.headroom == pytest.approx((8 - 4) / 10)

    def test_length_validation(self):
        with pytest.raises(ScheduleError):
            utilization_breakdown(_taskset(), [0])


class TestMarginalUtility:
    def test_positive_when_area_helps(self):
        ts = _taskset()
        mu = marginal_area_utility(ts, 0.0, delta=4.0)
        # 4 area buys heavy's first configuration: dU = 0.2 over 4 area.
        assert mu > 0

    def test_zero_when_saturated(self):
        ts = _taskset()
        assert marginal_area_utility(ts, 100.0, delta=10.0) == pytest.approx(0.0)

    def test_default_delta(self):
        assert marginal_area_utility(_taskset(), 4.0) >= 0.0


class TestAreaSweep:
    def test_edf_monotone(self):
        ts = _taskset()
        sweep = area_sweep(ts, [0, 4, 8, 12])
        utils = [u for _b, u in sweep]
        assert utils == sorted(utils, reverse=True)

    def test_rms_reports_inf_when_unschedulable(self):
        def t(name, period, configs):
            return PeriodicTask(
                name=name,
                period=period,
                wcet=configs[0][1],
                configurations=tuple(
                    TaskConfiguration(a, c) for a, c in configs
                ),
            )

        # Unschedulable in software, fixable with area 5.
        ts = TaskSet(
            [
                t("a", 2, [(0, 1.5), (5, 1.0)]),
                t("b", 3, [(0, 1.5), (5, 1.0)]),
            ]
        )
        sweep = area_sweep(ts, [0, 10], policy="rms")
        assert sweep[0][1] == float("inf")
        assert sweep[1][1] < float("inf")

    def test_unknown_policy(self):
        with pytest.raises(ScheduleError):
            area_sweep(_taskset(), [0], policy="nope")


class TestCliExplain:
    def test_explain_command(self, capsys):
        from repro.cli import main

        assert main(["explain", "crc32", "lms"]) == 0
        out = capsys.readouterr().out
        assert "marginal utility" in out
        assert "headroom" in out
