"""Tests for RTA and constrained-deadline EDF analysis."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.rtsched import (
    edf_constrained_schedulable,
    response_time,
    rms_schedulable_costs,
    rta_schedulable,
    simulate,
)
from repro.rtsched.dbf import demand_bound, deadline_points


class TestResponseTime:
    def test_single_task(self):
        assert response_time([10], [3], 0) == pytest.approx(3)

    def test_classic_two_tasks(self):
        # T1 (P=4, C=1), T2 (P=6, C=2): R2 = 2 + 1*ceil(R2/4).
        r = response_time([4, 6], [1, 2], 1)
        assert r == pytest.approx(3)

    def test_interference_accumulates(self):
        r = response_time([2, 10], [1, 3], 1)
        # R = 3 + ceil(R/2): fixed point at R = 6 -> 3+3=6.
        assert r == pytest.approx(6)

    def test_converges_above_deadline(self):
        # Converges at R = 16 > P = 10: reported, schedulability says no.
        r = response_time([2, 10], [1.5, 4], 1)
        assert r == pytest.approx(16)
        assert not rta_schedulable([2, 10], [1.5, 4])

    def test_divergence_returns_none(self):
        # Higher-priority utilization 1.0: the recurrence never settles.
        assert response_time([2, 10], [2, 1], 1) is None

    def test_bad_index(self):
        with pytest.raises(ScheduleError):
            response_time([2], [1], 3)

    @given(st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_rta_agrees_with_schedulability_point_test(self, seed):
        """RTA and the Theorem-1 exact test are both exact for D = P."""
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        periods = [float(rng.choice([2, 3, 4, 5, 6, 8, 10, 12])) for _ in range(n)]
        costs = [max(1.0, round(p * rng.uniform(0.1, 0.6))) for p in periods]
        assert rta_schedulable(periods, costs) == rms_schedulable_costs(
            periods, costs
        )

    def test_deadline_monotonic_priorities(self):
        # A tight deadline promotes T2 above T1; both still fit.
        assert rta_schedulable([4.0, 6.0], [1.0, 2.0], deadlines=[4.0, 2.5])

    def test_constrained_deadlines_harder(self):
        periods = [4.0, 6.0]
        costs = [1.5, 2.5]
        assert rta_schedulable(periods, costs)
        # Equal 3.0 deadlines: T2's response time 5.5 misses its deadline.
        assert not rta_schedulable(periods, costs, deadlines=[3.0, 3.0])

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(ScheduleError):
            rta_schedulable([4.0], [1.0], deadlines=[5.0])


class TestDemandBound:
    def test_dbf_zero_before_first_deadline(self):
        assert demand_bound([10], [3], [5], 4.9) == 0.0

    def test_dbf_steps_at_deadlines(self):
        assert demand_bound([10], [3], [5], 5.0) == 3.0
        assert demand_bound([10], [3], [5], 15.0) == 6.0

    def test_deadline_points_sorted_unique(self):
        pts = deadline_points([4, 6], [3, 6], 24.0)
        assert pts == sorted(set(pts))
        assert pts[0] == 3.0

    def test_implicit_deadline_reduces_to_utilization(self):
        assert edf_constrained_schedulable([4, 6], [2, 3])
        assert not edf_constrained_schedulable([4, 6], [2.5, 3.1])

    def test_constrained_case(self):
        # U < 1 but a tight deadline makes it infeasible.
        assert edf_constrained_schedulable([10, 10], [3, 3], [10, 10])
        assert not edf_constrained_schedulable([10, 10], [3, 3], [10, 2.9])
        assert edf_constrained_schedulable([10, 10], [3, 3], [10, 3.0])
        assert edf_constrained_schedulable([10, 10], [3, 3], [10, 6.5])

    @given(st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_dbf_matches_edf_simulation(self, seed):
        """Exact DBF verdict matches a hyperperiod EDF simulation for
        implicit deadlines (simulator covers D = P only)."""
        rng = random.Random(seed)
        n = rng.randint(2, 3)
        periods = [float(rng.choice([2, 3, 4, 6, 8, 12])) for _ in range(n)]
        costs = [max(1.0, round(p * rng.uniform(0.2, 0.5))) for p in periods]
        analytic = edf_constrained_schedulable(periods, costs)
        sim = simulate(periods, costs, policy="edf")
        assert analytic == sim.schedulable

    def test_validation(self):
        with pytest.raises(ScheduleError):
            edf_constrained_schedulable([4], [1], [5])  # D > P
        with pytest.raises(ScheduleError):
            edf_constrained_schedulable([4], [1, 2])


class TestRtaVsSimulation:
    @given(st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_analytic_response_time_bounds_observed(self, seed):
        """The RTA fixed point upper-bounds every simulated response time,
        and is *attained* (critical instant at the synchronous release)."""
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        periods = sorted(
            float(rng.choice([2, 3, 4, 5, 6, 8, 10, 12])) for _ in range(n)
        )
        costs = [max(1.0, round(p * rng.uniform(0.1, 0.4))) for p in periods]
        sim = simulate(periods, costs, policy="rm")
        if not sim.schedulable:
            return
        for i in range(n):
            r = response_time(periods, costs, i)
            assert r is not None
            observed = sim.max_response[i]
            assert observed <= r + 1e-6
            # Synchronous release is the critical instant for RM.
            assert observed == pytest.approx(r)

    def test_max_response_recorded(self):
        sim = simulate([4, 6], [1, 2], policy="rm")
        assert sim.max_response[0] == pytest.approx(1.0)
        assert sim.max_response[1] == pytest.approx(3.0)
