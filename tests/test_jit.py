"""Tests for the JIT toolchain gateway (:mod:`repro.jit`).

Covers the probe precedence (``REPRO_NO_NUMBA`` kill switch beats
everything, ``REPRO_JIT_INTERP`` only applies when numba is absent), the
warm-vs-cold kernel build memoization, the compiled→array fallback
ladder (one-shot warning + counters, bit-identical results) and the
toolchain-qualified engine cache tags.
"""

from __future__ import annotations

import warnings

import pytest

from repro import jit, obs
from repro.enumeration import enumerate_connected
from repro.enumeration import mimo_array, mimo_compiled
from tests.conftest import random_small_dfg


@pytest.fixture(autouse=True)
def _reprobe_after(monkeypatch):
    """Every test here flips env knobs; re-probe the real env afterwards."""
    yield
    monkeypatch.undo()
    jit.reset_toolchain_cache()


class TestToolchainProbe:
    def test_kill_switch_dominates(self, monkeypatch):
        monkeypatch.setenv(jit.ENV_NO_NUMBA, "1")
        monkeypatch.setenv(jit.ENV_FORCE_INTERP, "1")
        jit.reset_toolchain_cache()
        assert jit.toolchain() == "none"
        assert not jit.available()

    def test_force_interp_when_no_numba_installed(self, monkeypatch):
        tier = jit.force_interp_for_tests(monkeypatch)
        # With numba importable the real tier wins; otherwise interp.
        assert tier in ("numba", "interp")
        assert jit.available()

    def test_bare_environment_tiers(self, monkeypatch):
        monkeypatch.delenv(jit.ENV_NO_NUMBA, raising=False)
        monkeypatch.delenv(jit.ENV_FORCE_INTERP, raising=False)
        jit.reset_toolchain_cache()
        assert jit.toolchain() in ("numba", "none")

    def test_probe_is_cached_until_reset(self, monkeypatch):
        jit.force_interp_for_tests(monkeypatch)
        first = jit.toolchain()
        monkeypatch.setenv(jit.ENV_NO_NUMBA, "1")
        assert jit.toolchain() == first  # cached
        jit.reset_toolchain_cache()
        assert jit.toolchain() == "none"


class TestKernelBuilds:
    def test_warm_call_skips_compilation(self, monkeypatch):
        """The second ``get_kernel`` call must return the memoized callable
        without rebuilding (with numba that means no LLVM recompile)."""
        jit.force_interp_for_tests(monkeypatch)
        cold_builds = jit.kernel_build_count()
        k1 = jit.get_kernel("esu_level_walk")
        assert k1 is not None
        assert jit.kernel_build_count() == cold_builds + 1
        k2 = jit.get_kernel("esu_level_walk")
        assert k2 is k1
        assert jit.kernel_build_count() == cold_builds + 1

    def test_no_toolchain_yields_no_kernel(self, monkeypatch):
        monkeypatch.setenv(jit.ENV_NO_NUMBA, "1")
        jit.reset_toolchain_cache()
        assert jit.get_kernel("esu_level_walk") is None

    def test_reset_drops_built_kernels(self, monkeypatch):
        jit.force_interp_for_tests(monkeypatch)
        before = jit.kernel_build_count()
        jit.get_kernel("mlgp_feasibility")
        assert jit.kernel_build_count() == before + 1
        jit.reset_toolchain_cache()
        jit.get_kernel("mlgp_feasibility")
        assert jit.kernel_build_count() == before + 2


class TestKillSwitchFallback:
    def test_compiled_engine_degrades_to_array(self, monkeypatch):
        """`REPRO_NO_NUMBA=1` + engine="compiled": identical results to the
        array engine, a one-shot RuntimeWarning, and fallback counters
        counting every occurrence."""
        monkeypatch.setenv(jit.ENV_NO_NUMBA, "1")
        jit.reset_toolchain_cache()
        obs.reset()
        dfg = random_small_dfg(5, n=30)
        assert len(dfg) >= mimo_compiled.COMPILED_MIN_NODES
        kw = dict(max_inputs=4, max_outputs=2, max_size=6)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = enumerate_connected(dfg, engine="compiled", **kw)
            assert [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ], "fallback must warn"
        assert out == enumerate_connected(dfg, engine="array", **kw)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            enumerate_connected(dfg, engine="compiled", **kw)
            assert not [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ], "warning must be one-shot per epoch"
        counters = obs.metrics_snapshot()["counters"]
        assert counters["jit.fallback"] == 2
        assert counters["jit.fallback.enumeration"] == 2

    def test_mlgp_compiled_degrades_to_array(self, monkeypatch):
        from repro.mlgp.mlgp import mlgp_partition

        monkeypatch.setenv(jit.ENV_NO_NUMBA, "1")
        jit.reset_toolchain_cache()
        obs.reset()
        dfg = random_small_dfg(6, n=18)
        region = max(dfg.regions(), key=len)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            comp = mlgp_partition(
                dfg, region, seed=2, engine="compiled", use_cache=False
            )
        arr = mlgp_partition(
            dfg, region, seed=2, engine="array", use_cache=False
        )
        assert (comp.partitions, comp.gains, comp.areas) == (
            arr.partitions,
            arr.gains,
            arr.areas,
        )
        counters = obs.metrics_snapshot()["counters"]
        assert counters["jit.fallback.mlgp"] >= 1


class TestEngineCacheTags:
    def test_fixed_engines_key_as_themselves(self):
        for eng in ("bitset", "array", "reference", "fast"):
            assert jit.engine_cache_tag(eng) == eng

    def test_tags_without_toolchain(self, monkeypatch):
        monkeypatch.setenv(jit.ENV_NO_NUMBA, "1")
        jit.reset_toolchain_cache()
        assert jit.engine_cache_tag("auto") == "auto+cpu"
        assert jit.engine_cache_tag("compiled") == "compiled+cpu"

    def test_tags_under_interp(self, monkeypatch):
        tier = jit.force_interp_for_tests(monkeypatch)
        if tier != "interp":
            pytest.skip("numba installed; interp tier not reachable")
        # interp runs the kernels (compiled results) but is never picked
        # by auto (auto resolves to array/bitset, the cpu class).
        assert jit.engine_cache_tag("auto") == "auto+cpu"
        assert jit.engine_cache_tag("compiled") == "compiled+jit"

    def test_tags_under_numba(self, monkeypatch):
        monkeypatch.setattr(jit, "_toolchain", "numba")
        assert jit.engine_cache_tag("auto") == "auto+jit"
        assert jit.engine_cache_tag("compiled") == "compiled+jit"


class TestAutoDispatch:
    def test_boundaries_without_toolchain(self, monkeypatch):
        from repro.enumeration import resolve_auto_engine

        monkeypatch.setenv(jit.ENV_NO_NUMBA, "1")
        jit.reset_toolchain_cache()
        lo = mimo_array.ARRAY_MIN_NODES
        hi = mimo_array.ARRAY_MAX_NODES
        assert resolve_auto_engine(lo - 1) == "bitset"
        assert resolve_auto_engine(lo) == "array"
        assert resolve_auto_engine(hi - 1) == "array"
        assert resolve_auto_engine(hi) == "bitset"

    def test_interp_is_never_auto_selected(self, monkeypatch):
        from repro.enumeration import resolve_auto_engine

        tier = jit.force_interp_for_tests(monkeypatch)
        if tier != "interp":
            pytest.skip("numba installed; interp tier not reachable")
        assert resolve_auto_engine(100) == "array"

    def test_numba_toolchain_selects_compiled(self, monkeypatch):
        from repro.enumeration import resolve_auto_engine

        monkeypatch.setattr(jit, "_toolchain", "numba")
        lo = mimo_compiled.COMPILED_MIN_NODES
        assert resolve_auto_engine(lo - 1) == "bitset"
        assert resolve_auto_engine(lo) == "compiled"
        # No upper cliff for the compiled walk.
        assert resolve_auto_engine(10 * mimo_array.ARRAY_MAX_NODES) == "compiled"

    def test_auto_engine_end_to_end(self, monkeypatch):
        """engine="auto" must produce the same candidates as the engine it
        resolves to (trivially bit-identical here: budgets don't bind)."""
        dfg = random_small_dfg(4, n=30)
        kw = dict(max_inputs=4, max_outputs=2, max_size=6)
        auto = enumerate_connected(dfg, engine="auto", **kw)
        assert auto == enumerate_connected(dfg, engine="array", **kw)
