"""Tests for Chapter 7 multi-tasking runtime reconfiguration."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.mtreconfig import (
    ReconfigTask,
    TaskVersion,
    dp_solution,
    effective_utilization,
    ilp_solution,
    static_solution,
    synthetic_reconfig_tasks,
)


def _task(name, period, versions):
    return ReconfigTask(
        name=name,
        period=period,
        versions=tuple(TaskVersion(a, c) for a, c in versions),
    )


class TestModel:
    def test_version_zero_must_be_software(self):
        with pytest.raises(ReproError):
            _task("t", 10, [(5.0, 4.0)])

    def test_effective_utilization_single_config_no_tax(self):
        tasks = [
            _task("a", 10, [(0, 6), (4, 3)]),
            _task("b", 20, [(0, 8), (4, 4)]),
        ]
        u = effective_utilization(tasks, [1, 1], [0, 0], rho=100.0)
        assert u == pytest.approx(3 / 10 + 4 / 20)

    def test_effective_utilization_multi_config_tax(self):
        tasks = [
            _task("a", 10, [(0, 6), (4, 3)]),
            _task("b", 20, [(0, 8), (4, 4)]),
        ]
        u = effective_utilization(tasks, [1, 1], [0, 1], rho=1.0)
        assert u == pytest.approx((3 + 1) / 10 + (4 + 1) / 20)

    def test_software_tasks_pay_no_tax(self):
        tasks = [
            _task("a", 10, [(0, 6), (4, 3)]),
            _task("b", 20, [(0, 8), (4, 4)]),
            _task("c", 40, [(0, 8), (4, 4)]),
        ]
        u = effective_utilization(tasks, [0, 1, 1], [0, 1, 2], rho=1.0)
        assert u == pytest.approx(6 / 10 + 5 / 20 + 5 / 40)


def _brute_force(tasks, fabric_area, rho):
    """Exact optimum over version choices and all/one-config options."""
    best = float("inf")
    for choice in itertools.product(*[range(len(t.versions)) for t in tasks]):
        if any(
            tasks[i].versions[j].area > fabric_area for i, j in enumerate(choice)
        ):
            continue
        hw = [i for i, j in enumerate(choice) if j != 0]
        # Option A: single configuration (must fit together).
        if sum(tasks[i].versions[choice[i]].area for i in hw) <= fabric_area + 1e-9:
            u = effective_utilization(tasks, choice, [0] * len(tasks), rho)
            best = min(best, u)
        # Option B: every hardware task its own configuration.
        group = list(range(len(tasks)))
        u = effective_utilization(tasks, choice, group, rho)
        best = min(best, u)
    return best


class TestSolvers:
    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_dp_matches_bruteforce(self, seed):
        tasks = synthetic_reconfig_tasks(4, seed=seed, n_versions=(2, 4))
        fabric = 1500.0
        rho = 30000.0
        expected = _brute_force(tasks, fabric, rho)
        got = dp_solution(tasks, fabric, rho, scale=1).solution.utilization
        assert got == pytest.approx(expected, rel=1e-6)

    @given(st.integers(0, 120))
    @settings(max_examples=12, deadline=None)
    def test_ilp_matches_dp(self, seed):
        tasks = synthetic_reconfig_tasks(4, seed=seed, n_versions=(2, 4))
        fabric = 1500.0
        rho = 30000.0
        dp = dp_solution(tasks, fabric, rho, scale=1).solution.utilization
        ilp = ilp_solution(tasks, fabric, rho).solution.utilization
        assert ilp == pytest.approx(dp, rel=1e-6)

    def test_static_never_better_than_dp(self):
        for seed in range(5):
            tasks = synthetic_reconfig_tasks(5, seed=seed)
            st_u = static_solution(tasks, 1200.0).utilization
            dp_u = dp_solution(tasks, 1200.0, 25000.0).solution.utilization
            assert dp_u <= st_u + 1e-9

    def test_zero_area_forces_software(self):
        tasks = synthetic_reconfig_tasks(3, seed=1)
        sol = static_solution(tasks, 0.0)
        assert sol.selection == (0, 0, 0)
        assert sol.utilization == pytest.approx(
            sum(t.software_utilization for t in tasks)
        )

    def test_large_rho_prefers_static(self):
        tasks = synthetic_reconfig_tasks(4, seed=2)
        huge_rho = 1e12
        dp = dp_solution(tasks, 1000.0, huge_rho).solution
        # With a prohibitive tax the DP must coincide with static.
        st_sol = static_solution(tasks, 1000.0)
        assert dp.utilization == pytest.approx(st_sol.utilization)

    def test_zero_rho_gives_every_task_best_fitting_version(self):
        tasks = synthetic_reconfig_tasks(4, seed=3)
        dp = dp_solution(tasks, 2000.0, 0.0).solution
        for i, t in enumerate(tasks):
            best = min(
                (v.cycles for v in t.versions if v.area <= 2000.0),
            )
            assert t.versions[dp.selection[i]].cycles == pytest.approx(best)

    def test_solution_configurations_fit_fabric(self):
        tasks = synthetic_reconfig_tasks(6, seed=4)
        sol = dp_solution(tasks, 800.0, 20000.0).solution
        by_group: dict[int, float] = {}
        for i, j in enumerate(sol.selection):
            if j == 0:
                continue
            g = sol.group_of[i]
            by_group[g] = by_group.get(g, 0.0) + tasks[i].versions[j].area
        for area in by_group.values():
            assert area <= 800.0 + 1e-9

    def test_ilp_enforce_deadline_infeasible_raises(self):
        from repro.errors import SolverError

        # One task that can never meet its deadline.
        t = _task("t", 10, [(0, 100)])
        with pytest.raises(SolverError):
            ilp_solution([t], 100.0, 0.0, enforce_deadline=True)


class TestWorkload:
    def test_synthetic_tasks_monotone_versions(self):
        for t in synthetic_reconfig_tasks(5, seed=9):
            areas = [v.area for v in t.versions]
            assert areas == sorted(areas)
            assert t.versions[0].area == 0

    def test_target_utilization_hit(self):
        tasks = synthetic_reconfig_tasks(6, seed=10, target_utilization=1.3)
        u = sum(t.software_utilization for t in tasks)
        assert u == pytest.approx(1.3, rel=1e-6)

    def test_determinism(self):
        a = synthetic_reconfig_tasks(4, seed=11)
        b = synthetic_reconfig_tasks(4, seed=11)
        assert a == b


class TestBenchmarkWorkload:
    def test_tasks_from_benchmarks_structure(self):
        from repro.mtreconfig import tasks_from_benchmarks

        tasks = tasks_from_benchmarks(("crc32", "lms"), target_utilization=1.1)
        assert [t.name for t in tasks] == ["crc32", "lms"]
        u = sum(t.software_utilization for t in tasks)
        assert u == pytest.approx(1.1, rel=1e-6)
        for t in tasks:
            assert t.versions[0].area == 0.0
            cycles = [v.cycles for v in t.versions]
            assert cycles == sorted(cycles, reverse=True)

    def test_version_cap(self):
        from repro.mtreconfig import tasks_from_benchmarks

        tasks = tasks_from_benchmarks(("crc32",), max_versions=4)
        assert all(len(t.versions) <= 4 for t in tasks)
