"""Tests for exact / ε-approximate Pareto curve computation (Chapter 4)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.pareto import (
    CIOption,
    ParetoPoint,
    TaskCurve,
    approx_utilization_curve,
    approx_workload_curve,
    dominates,
    exact_utilization_curve,
    exact_workload_curve,
    gap_solve,
    is_eps_cover,
    pareto_filter,
)


class TestFront:
    def test_dominates(self):
        a = ParetoPoint(1.0, 1.0)
        b = ParetoPoint(2.0, 2.0)
        assert dominates(a, b)
        assert not dominates(b, a)
        assert not dominates(a, a)

    def test_filter_removes_dominated(self):
        pts = [ParetoPoint(3, 0), ParetoPoint(2, 1), ParetoPoint(2.5, 2)]
        front = pareto_filter(pts)
        assert [(p.value, p.cost) for p in front] == [(3, 0), (2, 1)]

    def test_filter_sorted_by_cost(self):
        pts = [ParetoPoint(1, 5), ParetoPoint(3, 0), ParetoPoint(2, 2)]
        front = pareto_filter(pts)
        costs = [p.cost for p in front]
        assert costs == sorted(costs)

    def test_eps_cover(self):
        exact = [ParetoPoint(10, 10), ParetoPoint(5, 20)]
        approx = [ParetoPoint(11, 10), ParetoPoint(5.5, 21)]
        assert is_eps_cover(approx, exact, 0.2)
        assert not is_eps_cover(approx, exact, 0.01)


def _random_options(seed: int, n: int = 8):
    rng = random.Random(seed)
    return [
        CIOption(delta=rng.randint(1, 30), area=rng.randint(1, 12))
        for _ in range(n)
    ]


def _brute_intra(base: float, options):
    pts = []
    for r in range(len(options) + 1):
        for combo in itertools.combinations(range(len(options)), r):
            w = base - sum(options[i].delta for i in combo)
            c = sum(options[i].area for i in combo)
            pts.append(ParetoPoint(value=w, cost=float(c)))
    return pareto_filter(pts)


class TestIntraExact:
    @given(st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_matches_bruteforce(self, seed):
        options = _random_options(seed, n=7)
        base = 500.0
        exact = exact_workload_curve(base, options)
        brute = _brute_intra(base, options)
        assert [(p.value, p.cost) for p in exact] == [
            (p.value, p.cost) for p in brute
        ]

    def test_starts_at_software_point(self):
        exact = exact_workload_curve(100.0, _random_options(1))
        assert exact[0].cost == 0.0
        assert exact[0].value == 100.0

    def test_no_options(self):
        curve = exact_workload_curve(42.0, [])
        assert len(curve) == 1 and curve[0].value == 42.0

    def test_strictly_improving(self):
        curve = exact_workload_curve(500.0, _random_options(9))
        for a, b in zip(curve, curve[1:]):
            assert b.cost > a.cost and b.value < a.value


class TestGap:
    def test_must_answer_when_strictly_better_solution_exists(self):
        # A solution with cost 2 <= 13/1.5 and workload 40 <= 70/1.5 exists,
        # so the GAP contract forbids a 'no' answer.
        options = [CIOption(delta=60, area=2), CIOption(delta=20, area=8)]
        sol = gap_solve(100.0, options, cost_bound=13, workload_bound=70.0, eps=0.5)
        assert sol is not None
        assert sol.value <= 70.0 + 1e-9
        assert sol.cost <= 13.0 + 1e-9

    def test_declares_gap_when_infeasible(self):
        options = [CIOption(delta=10, area=5)]
        # Asking for workload <= 80 requires the option; with cost bound
        # scaled below its cost there is no solution.
        sol = gap_solve(100.0, options, cost_bound=1, workload_bound=85.0, eps=0.1)
        assert sol is None

    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_gap_guarantee(self, seed):
        """If GAP says 'no', then no solution beats both bounds by (1+eps)."""
        options = _random_options(seed, n=6)
        base = 300.0
        eps = 0.5
        rng = random.Random(seed + 1)
        c_bound = rng.randint(1, 40)
        w_bound = base - rng.randint(1, 60)
        sol = gap_solve(base, options, c_bound, w_bound, eps)
        if sol is None:
            # Brute-force: no subset with cost <= c/(1+eps) and workload
            # <= w/(1+eps) may exist.
            for r in range(len(options) + 1):
                for combo in itertools.combinations(range(len(options)), r):
                    cost = sum(options[i].area for i in combo)
                    workload = base - sum(options[i].delta for i in combo)
                    assert not (
                        cost <= c_bound / (1 + eps) + 1e-9
                        and workload <= w_bound / (1 + eps) + 1e-9
                    )


class TestIntraApprox:
    @given(st.integers(0, 150), st.sampled_from([0.21, 0.44, 0.69, 3.0]))
    @settings(max_examples=30, deadline=None)
    def test_is_eps_cover_of_exact(self, seed, eps):
        options = _random_options(seed, n=8)
        base = 500.0
        exact = exact_workload_curve(base, options)
        approx = approx_workload_curve(base, options, eps)
        assert is_eps_cover(approx, exact, eps)

    def test_fewer_points_with_larger_eps(self):
        options = _random_options(3, n=12)
        small = approx_workload_curve(800.0, options, 0.21)
        large = approx_workload_curve(800.0, options, 3.0)
        assert len(large) <= len(small)

    def test_invalid_eps(self):
        with pytest.raises(ReproError):
            approx_workload_curve(10.0, [], 0.0)


def _random_task_curves(seed: int, n_tasks: int = 3):
    rng = random.Random(seed)
    curves = []
    for _ in range(n_tasks):
        base = rng.randint(50, 200)
        n_pts = rng.randint(1, 4)
        workloads = [float(base)]
        areas = [0]
        w, a = float(base), 0
        for _ in range(n_pts):
            w = max(1.0, w - rng.randint(5, 40))
            a += rng.randint(1, 15)
            workloads.append(w)
            areas.append(a)
        curves.append(
            TaskCurve(
                period=float(base * rng.uniform(1.5, 3.0)),
                workloads=tuple(workloads),
                areas=tuple(areas),
            )
        )
    return curves


def _brute_inter(curves):
    pts = []
    for choice in itertools.product(*[range(len(c.areas)) for c in curves]):
        u = sum(c.workloads[k] / c.period for c, k in zip(curves, choice))
        cost = sum(c.areas[k] for c, k in zip(curves, choice))
        pts.append(ParetoPoint(value=u, cost=float(cost), choice=choice))
    return pareto_filter(pts)


class TestInter:
    @given(st.integers(0, 150))
    @settings(max_examples=30, deadline=None)
    def test_exact_matches_bruteforce(self, seed):
        curves = _random_task_curves(seed)
        exact = exact_utilization_curve(curves)
        brute = _brute_inter(curves)
        assert [(round(p.value, 9), p.cost) for p in exact] == [
            (round(p.value, 9), p.cost) for p in brute
        ]

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_exact_choices_consistent(self, seed):
        curves = _random_task_curves(seed)
        for p in exact_utilization_curve(curves):
            u = sum(
                c.workloads[k] / c.period for c, k in zip(curves, p.choice)
            )
            cost = sum(c.areas[k] for c, k in zip(curves, p.choice))
            assert u == pytest.approx(p.value)
            # Reported cost may include slack from the DP cost axis but the
            # realized cost never exceeds it.
            assert cost <= p.cost + 1e-9

    @given(st.integers(0, 100), st.sampled_from([0.44, 0.69, 3.0]))
    @settings(max_examples=20, deadline=None)
    def test_approx_is_eps_cover(self, seed, eps):
        curves = _random_task_curves(seed)
        exact = exact_utilization_curve(curves)
        approx = approx_utilization_curve(curves, eps)
        assert is_eps_cover(approx, exact, eps)

    def test_validation(self):
        with pytest.raises(ReproError):
            exact_utilization_curve([])
        with pytest.raises(ReproError):
            TaskCurve(period=0.0, workloads=(1.0,), areas=(0,))
        with pytest.raises(ReproError):
            TaskCurve(period=1.0, workloads=(), areas=())
