"""Tests for MISO/MIMO candidate enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration.mimo import enumerate_connected, enumerate_exhaustive
from repro.enumeration.miso import maximal_misos
from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import Opcode
from tests.conftest import random_small_dfg


class TestMiso:
    def test_chain_yields_cone(self, chain_dfg):
        patterns = maximal_misos(chain_dfg, max_inputs=4)
        assert frozenset([0, 1, 2]) in patterns

    def test_input_constraint_limits_cone(self, chain_dfg):
        patterns = maximal_misos(chain_dfg, max_inputs=2)
        # Full chain needs 4 inputs; cones must stay within 2.
        for p in patterns:
            assert chain_dfg.io_count(p).inputs <= 2

    def test_all_patterns_single_output(self, diamond_dfg):
        for p in maximal_misos(diamond_dfg, max_inputs=4):
            assert diamond_dfg.io_count(p).outputs <= 1

    def test_no_singletons(self, diamond_dfg):
        for p in maximal_misos(diamond_dfg, max_inputs=4):
            assert len(p) >= 2

    def test_invalid_nodes_excluded(self, load_split_dfg):
        for p in maximal_misos(load_split_dfg, max_inputs=4):
            assert all(load_split_dfg.is_valid_node(n) for n in p)


class TestExhaustive:
    def test_all_results_feasible(self, diamond_dfg):
        for sub in enumerate_exhaustive(diamond_dfg, 4, 2):
            assert diamond_dfg.is_feasible(sub, 4, 2)

    def test_finds_full_diamond(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 4, 2)
        assert frozenset([0, 1, 2, 3]) in subs

    def test_excludes_nonconvex(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 8, 8)
        assert frozenset([0, 3]) not in subs

    def test_size_bounds_respected(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 8, 8, min_size=3, max_size=3)
        assert all(len(s) == 3 for s in subs)

    def test_node_restriction(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 8, 8, nodes=[0, 1])
        assert all(s <= {0, 1} for s in subs)


class TestConnected:
    def test_results_feasible_and_connected(self):
        dfg = random_small_dfg(3, 12)
        subs = enumerate_connected(dfg, 4, 2)
        import networkx as nx

        und = dfg.to_networkx().to_undirected()
        for s in subs:
            assert dfg.is_feasible(s, 4, 2)
            assert nx.is_connected(und.subgraph(s))

    def test_no_duplicates(self):
        dfg = random_small_dfg(5, 14)
        subs = enumerate_connected(dfg, 4, 2)
        assert len(subs) == len(set(subs))

    def test_candidate_cap_respected(self):
        dfg = random_small_dfg(7, 20)
        subs = enumerate_connected(dfg, 4, 2, max_candidates=5)
        assert len(subs) <= 5

    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_matches_exhaustive_connected_subset(self, seed):
        """Every connected feasible subgraph found exhaustively is found by
        the ESU enumerator on small graphs (with generous budgets)."""
        import networkx as nx

        dfg = random_small_dfg(seed, 8)
        esu = set(
            enumerate_connected(
                dfg, 4, 2, max_size=8, max_candidates=10000, max_visited=10**6
            )
        )
        und = dfg.to_networkx().to_undirected()
        for sub in enumerate_exhaustive(dfg, 4, 2):
            sub_nodes = set(sub)
            if nx.is_connected(und.subgraph(sub_nodes)):
                assert sub in esu

    def test_deterministic(self):
        dfg = random_small_dfg(11, 16)
        a = enumerate_connected(dfg, 4, 2)
        b = enumerate_connected(dfg, 4, 2)
        assert a == b
