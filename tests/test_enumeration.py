"""Tests for MISO/MIMO candidate enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration.mimo import enumerate_connected, enumerate_exhaustive
from repro.enumeration.miso import maximal_misos
from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import Opcode
from tests.conftest import random_small_dfg


class TestMiso:
    def test_chain_yields_cone(self, chain_dfg):
        patterns = maximal_misos(chain_dfg, max_inputs=4)
        assert frozenset([0, 1, 2]) in patterns

    def test_input_constraint_limits_cone(self, chain_dfg):
        patterns = maximal_misos(chain_dfg, max_inputs=2)
        # Full chain needs 4 inputs; cones must stay within 2.
        for p in patterns:
            assert chain_dfg.io_count(p).inputs <= 2

    def test_all_patterns_single_output(self, diamond_dfg):
        for p in maximal_misos(diamond_dfg, max_inputs=4):
            assert diamond_dfg.io_count(p).outputs <= 1

    def test_no_singletons(self, diamond_dfg):
        for p in maximal_misos(diamond_dfg, max_inputs=4):
            assert len(p) >= 2

    def test_invalid_nodes_excluded(self, load_split_dfg):
        for p in maximal_misos(load_split_dfg, max_inputs=4):
            assert all(load_split_dfg.is_valid_node(n) for n in p)


class TestExhaustive:
    def test_all_results_feasible(self, diamond_dfg):
        for sub in enumerate_exhaustive(diamond_dfg, 4, 2):
            assert diamond_dfg.is_feasible(sub, 4, 2)

    def test_finds_full_diamond(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 4, 2)
        assert frozenset([0, 1, 2, 3]) in subs

    def test_excludes_nonconvex(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 8, 8)
        assert frozenset([0, 3]) not in subs

    def test_size_bounds_respected(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 8, 8, min_size=3, max_size=3)
        assert all(len(s) == 3 for s in subs)

    def test_node_restriction(self, diamond_dfg):
        subs = enumerate_exhaustive(diamond_dfg, 8, 8, nodes=[0, 1])
        assert all(s <= {0, 1} for s in subs)


class TestConnected:
    def test_results_feasible_and_connected(self):
        dfg = random_small_dfg(3, 12)
        subs = enumerate_connected(dfg, 4, 2)
        import networkx as nx

        und = dfg.to_networkx().to_undirected()
        for s in subs:
            assert dfg.is_feasible(s, 4, 2)
            assert nx.is_connected(und.subgraph(s))

    def test_no_duplicates(self):
        dfg = random_small_dfg(5, 14)
        subs = enumerate_connected(dfg, 4, 2)
        assert len(subs) == len(set(subs))

    def test_candidate_cap_respected(self):
        dfg = random_small_dfg(7, 20)
        subs = enumerate_connected(dfg, 4, 2, max_candidates=5)
        assert len(subs) <= 5

    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_matches_exhaustive_connected_subset(self, seed):
        """Every connected feasible subgraph found exhaustively is found by
        the ESU enumerator on small graphs (with generous budgets)."""
        import networkx as nx

        dfg = random_small_dfg(seed, 8)
        esu = set(
            enumerate_connected(
                dfg, 4, 2, max_size=8, max_candidates=10000, max_visited=10**6
            )
        )
        und = dfg.to_networkx().to_undirected()
        for sub in enumerate_exhaustive(dfg, 4, 2):
            sub_nodes = set(sub)
            if nx.is_connected(und.subgraph(sub_nodes)):
                assert sub in esu

    def test_deterministic(self):
        dfg = random_small_dfg(11, 16)
        a = enumerate_connected(dfg, 4, 2)
        b = enumerate_connected(dfg, 4, 2)
        assert a == b


class TestBitsetEngine:
    """Differential tests: bitset engine ≡ reference engine ≡ exhaustive."""

    GENEROUS = dict(max_candidates=100000, max_visited=10**7)

    def test_unknown_engine_rejected(self, diamond_dfg):
        with pytest.raises(ValueError):
            enumerate_connected(diamond_dfg, 4, 2, engine="magic")

    @given(st.integers(0, 150), st.sampled_from([(2, 1), (3, 2), (4, 2), (8, 8)]))
    @settings(max_examples=60, deadline=None)
    def test_identical_to_reference(self, seed, io):
        """Same feasible sets, same counts, same ordering as the reference
        engine across I/O-constraint combinations (generous budgets)."""
        max_inputs, max_outputs = io
        dfg = random_small_dfg(seed, 10)
        ref = enumerate_connected(
            dfg, max_inputs, max_outputs, max_size=10,
            engine="reference", **self.GENEROUS,
        )
        bit = enumerate_connected(
            dfg, max_inputs, max_outputs, max_size=10,
            engine="bitset", **self.GENEROUS,
        )
        assert bit == ref

    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_equals_connected_subset_of_exhaustive(self, seed):
        """The bitset engine returns exactly the connected members of the
        exhaustive ground truth."""
        import networkx as nx

        dfg = random_small_dfg(seed, 8)
        bit = enumerate_connected(
            dfg, 4, 2, max_size=8, engine="bitset", **self.GENEROUS
        )
        und = dfg.to_networkx().to_undirected()
        expected = sorted(
            (
                s
                for s in enumerate_exhaustive(dfg, 4, 2)
                if nx.is_connected(und.subgraph(set(s)))
            ),
            key=lambda s: (-len(s), sorted(s)),
        )
        assert bit == expected

    def test_invalid_nodes_excluded(self, load_split_dfg):
        for sub in enumerate_connected(load_split_dfg, 8, 8, engine="bitset"):
            assert all(load_split_dfg.is_valid_node(n) for n in sub)

    def test_stats_counters_populated(self):
        dfg = random_small_dfg(5, 12)
        stats: dict = {}
        found = enumerate_connected(dfg, 4, 2, engine="bitset", stats=stats)
        # ``feasible`` counts pre-dedup visits, so it can exceed the result.
        assert stats["feasible"] >= len(found)
        assert stats["visited"] >= stats["feasible"]

    def test_masks_match_graph_structure(self):
        dfg = random_small_dfg(17, 12)
        m = dfg.bitset_masks()
        g = dfg.to_networkx()
        import networkx as nx

        for n in dfg.nodes:
            assert m.pred[n] == sum(1 << p for p in dfg.preds(n))
            assert m.succ[n] == sum(1 << s for s in dfg.succs(n))
            assert m.anc[n] == sum(1 << a for a in nx.ancestors(g, n))
            assert m.desc[n] == sum(1 << d for d in nx.descendants(g, n))

    def test_masks_invalidated_on_mutation(self, chain_dfg):
        from repro.isa.opcodes import Opcode

        before = chain_dfg.bitset_masks()
        chain_dfg.add_op(Opcode.ADD, preds=[2])
        after = chain_dfg.bitset_masks()
        assert after.full != before.full
        chain_dfg.set_live_out(3)
        assert chain_dfg.bitset_masks().live_out != after.live_out
