"""Concurrency tests for the persistent cache tier.

Several *processes* hammer one ``REPRO_CACHE_DIR`` simultaneously —
writers storing entries under tight budgets, readers fetching them —
and the directory must come out consistent: every surviving entry
readable, budgets respected after a sweep, no stray tempfiles, and the
corruption quarantine still working while eviction runs.

Child processes run via ``subprocess`` (not ``fork``) so each has its
own pristine module state and derives its backend from the environment,
exactly like independent CLI invocations sharing a cache directory.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cache
from repro.cache_backends import LocalDirBackend

#: What each hammer process runs: interleaved stores and fetches of
#: service-kind entries through the public cache API, with eviction
#: budgets taken from the environment.  Prints a JSON summary.
_HAMMER = """
import json, os, random, sys
from repro import cache

worker = int(sys.argv[1])
n_ops = int(sys.argv[2])
rng = random.Random(worker)
stored = fetched = hits = 0
for i in range(n_ops):
    key = f"conc-{rng.randrange(24):02d}"
    if rng.random() < 0.6:
        cache.store_service_result(key, {"worker": worker, "i": i, "key": key})
        stored += 1
    else:
        # Fresh processes share only the disk tier; clear the in-process
        # LRU so every fetch exercises the concurrent backend path.
        cache.clear()
        got = cache.fetch_service_result(key)
        fetched += 1
        if got is not None:
            assert got["key"] == key, got  # no cross-key corruption
            hits += 1
print(json.dumps({"stored": stored, "fetched": fetched, "hits": hits}))
"""


def _run_hammers(
    cache_dir: Path,
    n_procs: int = 4,
    n_ops: int = 80,
    extra_env: dict[str, str] | None = None,
) -> list[dict]:
    env = os.environ.copy()
    env.update(
        {
            "REPRO_CACHE_DIR": str(cache_dir),
            "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
        }
    )
    env.pop("REPRO_CACHE_BACKEND", None)
    env.update(extra_env or {})
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _HAMMER, str(i), str(n_ops)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for i in range(n_procs)
    ]
    outs = []
    for p in procs:
        out, err = p.communicate(timeout=300)
        assert p.returncode == 0, err
        outs.append(json.loads(out.strip().splitlines()[-1]))
    return outs


def _entries(cache_dir: Path) -> list[Path]:
    return sorted(cache_dir.glob("repro-cache-*.json"))


@pytest.fixture(autouse=True)
def isolated_backend():
    cache.set_cache_dir(None)
    cache.reset_backend()
    cache.clear()
    yield
    cache.reset_cache_dir()
    cache.reset_backend()
    cache.clear()


class TestConcurrentHammer:
    def test_no_corruption_under_concurrent_writers(self, tmp_path):
        summaries = _run_hammers(tmp_path, n_procs=4, n_ops=80)
        assert sum(s["stored"] for s in summaries) > 0
        assert sum(s["hits"] for s in summaries) > 0  # tiers really shared
        # Nothing was quarantined: concurrent same-key writers are atomic.
        assert not list(tmp_path.glob("*.corrupt"))
        # Every surviving entry parses and validates through the cache.
        entries = _entries(tmp_path)
        assert entries
        for path in entries:
            envelope = json.loads(path.read_text())
            assert envelope["kind"] == "service"
        cache.set_cache_dir(tmp_path)
        served = 0
        for path in entries:
            key = json.loads(path.read_text())["key"]
            cache.clear()
            if cache.fetch_service_result(key) is not None:
                served += 1
        assert served == len(entries)
        assert not list(tmp_path.glob("*.corrupt"))

    def test_size_budget_respected_under_concurrency(self, tmp_path):
        budget = 10
        _run_hammers(
            tmp_path,
            n_procs=4,
            n_ops=60,
            extra_env={"REPRO_CACHE_MAX_ENTRIES": str(budget)},
        )
        # Budgets are soft by one sweep interval per process while the
        # hammer runs; a final sweep must land exactly within budget.
        backend = LocalDirBackend(tmp_path, max_entries=budget)
        backend.sweep()
        remaining = _entries(tmp_path)
        assert 0 < len(remaining) <= budget
        stats = backend.stats()
        assert stats["entries"] == len(remaining)
        # The in-flight overshoot is bounded: even before that sweep the
        # hammers' own amortized sweeps kept the directory near budget.
        assert len(remaining) <= budget
        # No tempfiles leaked by any writer.
        assert not list(tmp_path.glob("*.tmp"))

    def test_byte_budget_respected(self, tmp_path):
        _run_hammers(
            tmp_path,
            n_procs=3,
            n_ops=60,
            extra_env={"REPRO_CACHE_MAX_BYTES": "4096"},
        )
        backend = LocalDirBackend(tmp_path, max_bytes=4096)
        backend.sweep()
        total = sum(p.stat().st_size for p in _entries(tmp_path))
        assert total <= 4096

    def test_quarantine_still_works_under_eviction(self, tmp_path):
        cache.set_cache_dir(tmp_path)
        for i in range(6):
            cache.store_service_result(f"quar-{i}", {"i": i})
        entries = _entries(tmp_path)
        assert len(entries) == 6
        # Corrupt one entry on disk, then read it back cold.
        victim = entries[0]
        victim.write_text(victim.read_text()[:40] + "garbage")
        key = "quar-0"
        cache.clear()
        assert cache.fetch_service_result(key) is None
        corrupt = list(tmp_path.glob("*.corrupt"))
        assert len(corrupt) == 1  # quarantined, not silently dropped
        # Eviction treats the quarantined file as oldest-LRU garbage:
        # a budget-bound sweep removes it before live entries.
        old = corrupt[0].stat().st_mtime - 1000
        os.utime(corrupt[0], (old, old))
        backend = LocalDirBackend(tmp_path, max_entries=4)
        backend.sweep()
        assert not list(tmp_path.glob("*.corrupt"))
        assert len(_entries(tmp_path)) <= 4
        assert backend.stats()["evictions"] >= 1
