"""Tests for the customization job server (:mod:`repro.service`).

Coalescing and at-rest dedup are the core contract — N concurrent
identical requests must produce exactly one computation — so those tests
count actual compute invocations, not just server counters.  The server
runs inline (no process pool) throughout: test-local job kinds are
registered in this module only, so a pool worker could not resolve them,
and inline mode keeps the invocation counters observable.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import cache
from repro.cache_backends import MemoryBackend
from repro.errors import ReproError
from repro.service import jobs as jobs_mod
from repro.service.client import (
    ConnectionLostError,
    ServiceClient,
)
from repro.service.server import ServerThread


@pytest.fixture(autouse=True)
def fresh_cache():
    """Service results are cached; isolate every test's store."""
    cache.set_enabled(True)
    cache.set_cache_dir(None)
    cache.reset_backend()
    cache.clear()
    yield
    cache.set_enabled(True)
    cache.reset_cache_dir()
    cache.reset_backend()
    cache.clear()


class _Recorder:
    """A registered job kind that records its compute invocations."""

    def __init__(self, name: str, delay: float = 0.0):
        self.name = name
        self.calls: list[dict] = []
        self.delay = delay
        self.gate: threading.Event | None = None
        self._lock = threading.Lock()
        jobs_mod.register_kind(name, self._resolve, self._compute)

    def _resolve(self, params):
        x = params.get("x", 0)
        return f"svc-test-{self.name}-{x}", {"x": x}

    def _compute(self, params):
        with self._lock:
            self.calls.append(dict(params))
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        if self.delay:
            time.sleep(self.delay)
        if params["x"] < 0:
            raise ReproError(f"negative x {params['x']}")
        return {"x": params["x"], "doubled": params["x"] * 2}


@pytest.fixture
def recorder(request):
    name = f"rec-{request.node.name}"[:48]
    rec = _Recorder(name, delay=0.05)
    yield rec
    jobs_mod.JOB_KINDS.pop(name, None)


def _server(**kwargs) -> ServerThread:
    kwargs.setdefault("use_processes", False)
    return ServerThread(**kwargs)


class TestCoalescing:
    def test_concurrent_identical_requests_compute_once(self, recorder):
        n_clients = 6
        with _server(workers=2) as srv:
            results: list[dict] = []

            def go():
                with ServiceClient(**srv.address) as c:
                    results.append(c.submit(recorder.name, {"x": 7}))

            threads = [threading.Thread(target=go) for _ in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(**srv.address) as c:
                stats = c.stats()

        assert len(recorder.calls) == 1  # the exactly-once contract
        assert len(results) == n_clients
        assert all(r["job"]["result"]["doubled"] == 14 for r in results)
        counters = stats["counters"]
        assert counters["computed"] == 1
        assert counters["coalesced"] == n_clients - 1
        assert counters["submitted"] == n_clients
        dispositions = sorted(r["disposition"] for r in results)
        assert dispositions.count("coalesced") == n_clients - 1
        assert dispositions.count("queued") == 1

    def test_distinct_params_do_not_coalesce(self, recorder):
        with _server(workers=2) as srv:
            with ServiceClient(**srv.address) as c:
                r1 = c.submit(recorder.name, {"x": 1})
                r2 = c.submit(recorder.name, {"x": 2})
        assert len(recorder.calls) == 2
        assert r1["job"]["key"] != r2["job"]["key"]


class TestAtRestDedup:
    def test_repeat_request_hits_result_store(self, recorder):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                first = c.submit(recorder.name, {"x": 3})
                second = c.submit(recorder.name, {"x": 3})
                stats = c.stats()
        assert first["disposition"] == "queued"
        assert second["disposition"] == "cached"
        assert second["job"]["result"] == first["job"]["result"]
        assert len(recorder.calls) == 1
        assert stats["counters"]["result_hits"] == 1

    def test_results_survive_server_restart_via_backend(self, recorder):
        # The at-rest store is the artifact cache's persistent tier: a
        # fresh server (even a fresh process-level LRU) serves results
        # computed before it started.
        cache.set_backend(MemoryBackend())
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                c.submit(recorder.name, {"x": 11})
        # Simulate a restart: drop the in-process LRU, keep the backend.
        cache.clear(disk=False)
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                resp = c.submit(recorder.name, {"x": 11})
        assert resp["disposition"] == "cached"
        assert resp["job"]["result"]["doubled"] == 22
        assert len(recorder.calls) == 1


class TestQueueSemantics:
    def test_priority_orders_queued_jobs(self, recorder):
        recorder.gate = threading.Event()
        with _server(workers=1) as srv:
            with ServiceClient(**srv.address) as c:
                # Occupy the single worker, then queue behind it.
                blocker = c.submit(recorder.name, {"x": 100}, wait=False)
                deadline = time.time() + 10
                while not recorder.calls and time.time() < deadline:
                    time.sleep(0.01)
                low = c.submit(
                    recorder.name, {"x": 1}, priority=0, wait=False
                )
                high = c.submit(
                    recorder.name, {"x": 2}, priority=5, wait=False
                )
                recorder.gate.set()
                c.wait(low["job"]["id"], timeout=30)
                c.wait(high["job"]["id"], timeout=30)
                c.wait(blocker["job"]["id"], timeout=30)
        order = [call["x"] for call in recorder.calls]
        assert order[0] == 100
        assert order[1:] == [2, 1]  # high priority ran first

    def test_bounded_queue_rejects_when_full(self, recorder):
        recorder.gate = threading.Event()
        try:
            with _server(workers=1, queue_size=1) as srv:
                with ServiceClient(**srv.address) as c:
                    c.submit(recorder.name, {"x": 100}, wait=False)
                    # Wait until the worker picked the blocker up, so the
                    # next submit occupies the queue's single slot.
                    deadline = time.time() + 10
                    while not recorder.calls and time.time() < deadline:
                        time.sleep(0.01)
                    c.submit(recorder.name, {"x": 1}, wait=False)
                    with pytest.raises(ReproError, match="queue is full"):
                        c.submit(recorder.name, {"x": 2}, wait=False)
                    stats = c.stats()
                    recorder.gate.set()
        finally:
            recorder.gate.set()
        assert stats["counters"]["rejected"] == 1

    def test_job_timeout_fails_the_job(self, recorder):
        recorder.gate = threading.Event()
        try:
            with _server(workers=1, job_timeout=0.2) as srv:
                with ServiceClient(**srv.address) as c:
                    with pytest.raises(ReproError, match="job_timeout"):
                        c.submit(recorder.name, {"x": 1})
                    stats = c.stats()
        finally:
            recorder.gate.set()
        assert stats["counters"]["timeouts"] == 1
        assert stats["counters"]["failed"] == 1


class TestPoolPathClassification:
    """Only ``BrokenProcessPool`` is infrastructure on the pool path.

    Regression tests for the bug where the pool path caught OSError
    broadly: a job timeout (builtin TimeoutError is an OSError subclass
    on >= 3.11) or a job-raised OSError destroyed the healthy pool and
    silently re-ran the job inline.  A ``ThreadPoolExecutor`` stands in
    for the process pool so test-local job kinds resolve inside the
    "pool" and ``_run``'s exception classification is exercised exactly
    as with processes.
    """

    @staticmethod
    def _install_pool(srv):
        from concurrent.futures import ThreadPoolExecutor

        pool = ThreadPoolExecutor(max_workers=1)
        srv.server._pool = pool
        return pool

    def test_job_oserror_fails_the_job_not_the_pool(self, recorder):
        calls: list[dict] = []

        def compute(params):
            calls.append(dict(params))
            raise FileNotFoundError("/no/such/profile")

        jobs_mod.register_kind(recorder.name, recorder._resolve, compute)
        with _server(workers=1) as srv:
            pool = self._install_pool(srv)
            with ServiceClient(**srv.address) as c:
                with pytest.raises(ReproError, match="FileNotFoundError"):
                    c.submit(recorder.name, {"x": 1})
                stats = c.stats()
            pool_after = srv.server._pool  # before stop() releases it
        assert len(calls) == 1  # pool attempt only: no inline re-run
        assert stats["counters"]["pool_failures"] == 0
        assert pool_after is pool  # the healthy pool survived

    def test_job_timeout_is_not_a_pool_failure(self, recorder):
        def compute(params):
            time.sleep(5.0)
            return {}

        jobs_mod.register_kind(recorder.name, recorder._resolve, compute)
        with _server(workers=1, job_timeout=0.2) as srv:
            pool = self._install_pool(srv)
            with ServiceClient(**srv.address) as c:
                with pytest.raises(ReproError, match="job_timeout"):
                    c.submit(recorder.name, {"x": 1})
                stats = c.stats()
            pool_after = srv.server._pool
        assert stats["counters"]["timeouts"] == 1
        assert stats["counters"]["pool_failures"] == 0
        assert pool_after is pool

    def test_broken_pool_is_replaced_and_job_retries_on_it(self, recorder):
        from concurrent.futures import ThreadPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        calls: list[dict] = []

        def compute(params):
            calls.append(dict(params))
            if len(calls) == 1:
                raise BrokenProcessPool("a worker died")
            return {"x": params["x"], "doubled": params["x"] * 2}

        jobs_mod.register_kind(recorder.name, recorder._resolve, compute)
        with _server(workers=1) as srv:
            pool = self._install_pool(srv)
            # The replacement must also be a stand-in thread pool, or
            # the retry would run in a process that cannot resolve the
            # test-local kind (and `calls` would be invisible).
            srv.server._new_pool = lambda: ThreadPoolExecutor(max_workers=1)
            with ServiceClient(**srv.address) as c:
                resp = c.submit(recorder.name, {"x": 9})
                stats = c.stats()
            pool_after = srv.server._pool
        assert resp["job"]["result"]["doubled"] == 18
        assert len(calls) == 2  # pool attempt + retry on the replacement
        assert stats["counters"]["pool_failures"] == 1
        assert stats["counters"]["retried"] == 1
        assert pool_after is not None
        assert pool_after is not pool  # replaced, not degraded


class TestFailuresAndProtocol:
    def test_job_error_propagates_and_server_survives(self, recorder):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                with pytest.raises(ReproError, match="negative x"):
                    c.submit(recorder.name, {"x": -1})
                # The server keeps serving after a failed job.
                ok = c.submit(recorder.name, {"x": 4})
                stats = c.stats()
        assert ok["job"]["result"]["doubled"] == 8
        assert stats["counters"]["failed"] == 1

    def test_failed_jobs_are_not_stored_at_rest(self, recorder):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                for _ in range(2):
                    with pytest.raises(ReproError, match="negative x"):
                        c.submit(recorder.name, {"x": -2})
        # Both submits computed: a failure must never be served as a hit.
        assert len(recorder.calls) == 2

    def test_unknown_kind_is_an_error(self):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                with pytest.raises(ReproError, match="unknown job kind"):
                    c.submit("no-such-kind", {})

    def test_unknown_param_is_an_error(self):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                with pytest.raises(ReproError, match="unknown"):
                    c.submit("curve", {"benchmark": "crc32", "bogus": 1})

    def test_ping_stats_jobs_ops(self, recorder):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                assert c.ping()
                c.submit(recorder.name, {"x": 5})
                jobs = c.jobs()
                stats = c.stats()
        assert len(jobs) == 1
        assert jobs[0]["state"] == "done"
        assert "result" not in jobs[0]  # listing omits payloads
        assert stats["queue_depth"] == 0
        assert "cache" in stats

    def test_malformed_request_line_is_rejected(self, recorder):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                c._file.write(b"this is not json\n")
                c._file.flush()
                resp = c._recv()
                assert resp["ok"] is False
                assert "bad request" in resp["error"]
                # The connection stays usable afterwards.
                assert c.ping()

    def test_watch_streams_lifecycle_events(self, recorder):
        with _server() as srv:
            with ServiceClient(**srv.address) as c:
                sub = c.submit(recorder.name, {"x": 6}, wait=False)
                events = list(c.watch(sub["job"]["id"]))
        names = [e.get("event") for e in events if "event" in e]
        assert names[0] == "queued"
        assert "started" in names
        assert names[-1] == "done"
        summary = events[-1]
        assert summary["done"] is True
        assert summary["job"]["result"]["doubled"] == 12

    def test_unix_socket_transport(self, recorder, tmp_path):
        with _server(socket_path=str(tmp_path / "svc.sock")) as srv:
            with ServiceClient(**srv.address) as c:
                assert c.ping()
                resp = c.submit(recorder.name, {"x": 8})
        assert resp["job"]["result"]["doubled"] == 16

    def test_shutdown_op_stops_the_server(self, recorder):
        srv = _server().start()
        with ServiceClient(**srv.address) as c:
            c.shutdown()
        srv._thread.join(timeout=10)
        assert not srv._thread.is_alive()


class _ScriptedServer:
    """A raw TCP endpoint sending scripted bytes — a misbehaving server.

    Reads one request line per scripted reply, writes the raw bytes
    verbatim, then closes the connection.  Lets the client-side protocol
    tests exercise truncated lines, garbage bytes and close races
    without teaching the real server to misbehave.
    """

    def __init__(self, *replies: bytes):
        self.replies = replies
        self._srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._srv.bind(("127.0.0.1", 0))
        self._srv.listen(1)
        self.port = self._srv.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            conn, _ = self._srv.accept()
        except OSError:
            return
        with conn:
            fh = conn.makefile("rwb")
            for raw in self.replies:
                if not fh.readline():
                    return
                fh.write(raw)
                fh.flush()

    def __enter__(self) -> "_ScriptedServer":
        return self

    def __exit__(self, *exc) -> None:
        self._srv.close()
        self._thread.join(timeout=5)


class TestProtocolRobustness:
    """Client-side handling of a misbehaving or vanishing server."""

    def test_garbage_bytes_raise_repro_error_naming_endpoint(self):
        with _ScriptedServer(b"\xff\xfe not json either\n") as fake:
            with ServiceClient(port=fake.port, timeout=10) as c:
                with pytest.raises(ReproError, match="malformed response"):
                    c.ping()

    def test_non_json_line_raises_repro_error(self):
        with _ScriptedServer(b"HTTP/1.1 400 Bad Request\n") as fake:
            with ServiceClient(port=fake.port, timeout=10) as c:
                with pytest.raises(
                    ReproError, match=f"service at 127.0.0.1:{fake.port}"
                ):
                    c.ping()

    def test_truncated_line_then_close_raises_repro_error(self):
        # The server dies mid-write: the client reads a torn fragment
        # with no newline, which must surface as a one-line ReproError,
        # not a JSONDecodeError traceback.
        with _ScriptedServer(b'{"ok": true, "po') as fake:
            with ServiceClient(port=fake.port, timeout=10) as c:
                with pytest.raises(ReproError, match="malformed response"):
                    c.ping()

    def test_close_without_reply_is_connection_lost(self):
        with _ScriptedServer() as fake:  # accepts, reads, closes
            with ServiceClient(port=fake.port, timeout=10) as c:
                # Clean EOF or RST depending on timing — both must
                # surface as the retryable ConnectionLostError.
                with pytest.raises(ConnectionLostError):
                    c.ping()

    def test_shutdown_race_with_connection_close_is_success(self):
        # The server may close the connection before the shutdown reply
        # lands; that IS a successful shutdown (satellite fix).
        with _ScriptedServer() as fake:
            with ServiceClient(port=fake.port, timeout=10) as c:
                c.shutdown()  # must not raise

    def test_real_shutdown_still_reports_success(self, recorder):
        srv = _server().start()
        with ServiceClient(**srv.address) as c:
            c.shutdown()
        srv._thread.join(timeout=10)
        assert not srv._thread.is_alive()

    def test_server_closing_mid_watch_ends_cleanly(self, recorder):
        # A watcher whose server goes away mid-stream must get either
        # the in-memory failure notification ("server stopped") or a
        # clean ReproError on the closed connection — never a hang or a
        # raw traceback.
        recorder.gate = threading.Event()
        srv = _server(workers=1).start()
        try:
            with ServiceClient(**srv.address) as c:
                sub = c.submit(recorder.name, {"x": 21}, wait=False)
                stream = c.watch(sub["job"]["id"])
                assert next(stream).get("event") == "queued"
                srv.stop()
                recorder.gate.set()
                try:
                    rest = list(stream)
                except ReproError:
                    rest = None  # connection died first: fine
                if rest is not None:
                    last = rest[-1]
                    assert last.get("done") or last.get("event") == "failed"
                    if last.get("done"):
                        assert last["job"]["state"] == "failed"
                        assert "server stopped" in last["job"]["error"]
        finally:
            recorder.gate.set()
            srv.stop()


class TestClientReconnect:
    """retries= survives a server restart (content keys make it safe)."""

    def test_submit_reconnects_after_restart(self, recorder, tmp_path):
        sock = str(tmp_path / "svc.sock")
        first = _server(socket_path=sock).start()
        try:
            c = ServiceClient(socket_path=sock, retries=4, backoff=0.05)
            assert c.submit(recorder.name, {"x": 2})["job"]["state"] == "done"
            first.stop()
            second = _server(socket_path=sock).start()
            try:
                # Same connection object: the retry layer reconnects.
                resp = c.submit(recorder.name, {"x": 2})
                assert resp["job"]["result"]["doubled"] == 4
                assert resp["disposition"] == "cached"  # at-rest dedup
            finally:
                c.close()
                second.stop()
        finally:
            first.stop()
        assert len(recorder.calls) == 1  # the restart recomputed nothing

    def test_wait_reattaches_by_resubmitting_spec(self, recorder, tmp_path):
        sock = str(tmp_path / "svc.sock")
        first = _server(socket_path=sock).start()
        try:
            c = ServiceClient(socket_path=sock, retries=4, backoff=0.05)
            sub = c.submit(recorder.name, {"x": 3}, wait=False)
            job_id = sub["job"]["id"]
            c.wait(job_id, timeout=30)
            first.stop()
            second = _server(socket_path=sock).start()
            try:
                # The new server never heard of job_id; the client
                # resubmits the remembered spec, which is a cache hit.
                resp = c.wait(job_id, timeout=30)
                assert resp["job"]["result"]["doubled"] == 6
            finally:
                c.close()
                second.stop()
        finally:
            first.stop()
        assert len(recorder.calls) == 1

    def test_watch_reattaches_after_restart(self, recorder, tmp_path):
        sock = str(tmp_path / "svc.sock")
        first = _server(socket_path=sock).start()
        try:
            c = ServiceClient(socket_path=sock, retries=4, backoff=0.05)
            sub = c.submit(recorder.name, {"x": 5}, wait=False)
            job_id = sub["job"]["id"]
            c.wait(job_id, timeout=30)
            first.stop()
            second = _server(socket_path=sock).start()
            try:
                events = list(c.watch(job_id))
                assert events[-1]["done"] is True
                assert events[-1]["job"]["result"]["doubled"] == 10
            finally:
                c.close()
                second.stop()
        finally:
            first.stop()

    def test_no_retries_still_fails_fast(self, recorder, tmp_path):
        sock = str(tmp_path / "svc.sock")
        srv = _server(socket_path=sock).start()
        c = ServiceClient(socket_path=sock)
        srv.stop()
        with pytest.raises(ReproError):
            c.submit(recorder.name, {"x": 1})
        c.close()


class TestJobKinds:
    def test_resolve_is_deterministic_and_param_sensitive(self):
        k1, p1 = jobs_mod.resolve_job("curve", {"benchmark": "crc32"})
        k2, _ = jobs_mod.resolve_job("curve", {"benchmark": "crc32"})
        k3, _ = jobs_mod.resolve_job(
            "curve", {"benchmark": "crc32", "objective": "wcet"}
        )
        k4, _ = jobs_mod.resolve_job("curve", {"benchmark": "sha"})
        assert k1 == k2
        assert len({k1, k3, k4}) == 3
        assert p1["objective"] == "avg"  # defaults are normalized in

    def test_every_builtin_kind_resolves(self):
        for kind in ("identify", "curve", "pareto", "mlgp", "mtreconfig"):
            params = (
                {"benchmark": "crc32"}
                if kind in ("identify", "curve")
                else {"benchmarks": ["crc32"]}
            )
            if kind == "mtreconfig":
                params = {"benchmarks": [], "tasks": 4}
            key, norm = jobs_mod.resolve_job(kind, params)
            assert key and isinstance(norm, dict)
        key, norm = jobs_mod.resolve_job("reconfig", {})
        assert key

    def test_curve_compute_matches_direct_build(self):
        from repro.core import build_task
        from repro.workloads import get_program

        _, params = jobs_mod.resolve_job("curve", {"benchmark": "crc32"})
        out = jobs_mod.compute_job("curve", params)
        task = build_task(get_program("crc32"))
        assert out["wcet"] == task.wcet
        assert out["configurations"] == [
            [c.area, c.cycles] for c in task.configurations
        ]
