"""Tests for the real-time scheduling substrate (tasks, EDF, RMS, energy)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.rtsched import (
    TM5400_POINTS,
    PeriodicTask,
    TaskSet,
    edf_schedulable,
    energy_improvement,
    hyperperiod_energy,
    lowest_feasible_point,
    rms_schedulable,
    rms_schedulable_costs,
    rms_task_load,
    scale_periods_for_utilization,
    simulate,
)
from repro.selection.config_curve import TaskConfiguration


def _task(name, period, wcet, configs=None):
    if configs is None:
        return PeriodicTask(name=name, period=period, wcet=wcet)
    return PeriodicTask(
        name=name,
        period=period,
        wcet=wcet,
        configurations=tuple(TaskConfiguration(a, c) for a, c in configs),
    )


class TestTaskModel:
    def test_default_software_configuration(self):
        t = _task("t", 10, 4)
        assert t.n_configurations == 1
        assert t.configurations[0].area == 0
        assert t.configurations[0].cycles == 4

    def test_config_zero_must_be_software(self):
        with pytest.raises(ScheduleError):
            _task("t", 10, 4, configs=[(1.0, 4.0)])

    def test_config_zero_cycles_must_match_wcet(self):
        with pytest.raises(ScheduleError):
            _task("t", 10, 4, configs=[(0.0, 5.0)])

    def test_invalid_period(self):
        with pytest.raises(ScheduleError):
            _task("t", 0, 4)

    def test_utilization(self):
        ts = TaskSet([_task("a", 10, 2), _task("b", 20, 5)])
        assert ts.utilization == pytest.approx(0.45)

    def test_assignment_utilization_and_area(self):
        t = _task("t", 10, 4, configs=[(0.0, 4.0), (3.0, 2.0)])
        ts = TaskSet([t])
        assert ts.utilization_for([1]) == pytest.approx(0.2)
        assert ts.area_for([1]) == pytest.approx(3.0)

    def test_scale_periods_hits_target(self):
        tasks = [_task("a", 1, 30), _task("b", 1, 70)]
        ts = scale_periods_for_utilization(tasks, 1.05)
        assert ts.utilization == pytest.approx(1.05)

    def test_hyperperiod(self):
        ts = TaskSet([_task("a", 4, 1), _task("b", 6, 1)])
        assert ts.hyperperiod() == 12

    def test_rms_priority_order(self):
        ts = TaskSet([_task("slow", 20, 1), _task("fast", 5, 1)])
        ordered = ts.by_priority_rms()
        assert [t.name for t in ordered] == ["fast", "slow"]


class TestEdf:
    def test_bound(self):
        assert edf_schedulable(TaskSet([_task("a", 2, 1), _task("b", 4, 2)]))
        assert not edf_schedulable(TaskSet([_task("a", 2, 1), _task("b", 4, 2.1)]))


class TestRmsExact:
    def test_liu_layland_example(self):
        # Classic: U = 5/6 > LL bound but RMS-schedulable at these points.
        assert rms_schedulable_costs([2, 3], [1, 1])

    def test_full_utilization_harmonic(self):
        # Harmonic periods schedulable at U = 1.
        assert rms_schedulable_costs([2, 4], [1, 2])

    def test_infeasible(self):
        assert not rms_schedulable_costs([2, 3], [1, 1.5])

    def test_thesis_motivating_example_unschedulable_software(self):
        # Figure 3.2: periods 6, 8, 12 and costs 2, 3, 6 -> U = 29/24 > 1.
        assert not rms_schedulable_costs([6, 8, 12], [2, 3, 6])

    def test_thesis_motivating_example_optimal_solution(self):
        # Optimal (e): T1 software (2), T2 custom (2), T3 custom (5): U = 1.
        # EDF-schedulable; RMS needs the exact test at these periods.
        costs = [2, 2, 5]
        util = 2 / 6 + 2 / 8 + 5 / 12
        assert util == pytest.approx(1.0)
        # Exact RMS test verdict must agree with simulation.
        sim = simulate([6, 8, 12], costs, policy="rm")
        assert rms_schedulable_costs([6, 8, 12], costs) == sim.schedulable

    @given(st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_exact_test_matches_simulation(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        periods = [float(rng.choice([2, 3, 4, 5, 6, 8, 10, 12])) for _ in range(n)]
        costs = [max(1.0, round(p * rng.uniform(0.1, 0.6))) for p in periods]
        analytic = rms_schedulable_costs(periods, costs)
        sim = simulate(periods, costs, policy="rm")
        assert analytic == sim.schedulable

    def test_load_factor_monotone_in_cost(self):
        base = rms_task_load([2, 5], [1, 1], 1)
        heavier = rms_task_load([2, 5], [1, 2], 1)
        assert heavier > base


class TestSimulator:
    def test_schedulable_edf(self):
        res = simulate([4, 6], [2, 2], policy="edf")
        assert res.schedulable
        assert res.busy_time == pytest.approx(2 * 3 + 2 * 2)  # hyperperiod 12

    def test_overload_misses(self):
        res = simulate([2, 3], [1.5, 1.5], policy="edf")
        assert not res.schedulable
        assert res.missed

    def test_rm_vs_edf_difference(self):
        # U = 1 with non-harmonic periods: EDF ok, RM misses.
        periods, costs = [5.0, 7.0], [2.5, 3.5]
        assert simulate(periods, costs, policy="edf", horizon=35.0).schedulable
        assert not simulate(periods, costs, policy="rm", horizon=35.0).schedulable

    def test_observed_utilization(self):
        res = simulate([4], [1], policy="edf")
        assert res.observed_utilization == pytest.approx(0.25)

    def test_bad_args(self):
        with pytest.raises(ScheduleError):
            simulate([], [])
        with pytest.raises(ScheduleError):
            simulate([2], [1], policy="xyz")


class TestEnergy:
    def test_lowest_point_edf(self):
        # U = 0.5 at f_max=633: need f >= 316.5 -> 366 MHz point.
        p = lowest_feasible_point(0.5, 2, policy="edf")
        assert p is not None and p.mhz == pytest.approx(366.0)

    def test_unschedulable_returns_none(self):
        assert lowest_feasible_point(1.2, 3, policy="edf") is None

    def test_rms_more_conservative_than_edf(self):
        u = 0.75
        p_edf = lowest_feasible_point(u, 4, policy="edf")
        p_rms = lowest_feasible_point(u, 4, policy="rms")
        assert p_edf is not None and p_rms is not None
        assert p_rms.mhz >= p_edf.mhz

    def test_energy_decreases_at_lower_voltage(self):
        ts = TaskSet([_task("a", 10, 2), _task("b", 20, 4)])
        slow = hyperperiod_energy(ts, None, TM5400_POINTS[0])
        fast = hyperperiod_energy(ts, None, TM5400_POINTS[-1])
        assert slow < fast

    def test_energy_improvement_positive_with_customization(self):
        t = _task("t", 10, 8, configs=[(0.0, 8.0), (5.0, 4.0)])
        ts = TaskSet([t])
        imp = energy_improvement(ts, None, [1], policy="edf")
        assert imp is not None and imp > 0

    def test_improvement_none_when_custom_unschedulable(self):
        t = _task("t", 10, 20, configs=[(0.0, 20.0), (5.0, 15.0)])
        ts = TaskSet([t])
        assert energy_improvement(ts, None, [1], policy="edf") is None
