"""Property tests tying the scheduler simulator to the analytic tests.

Simulating one hyperperiod from the synchronous release (the critical
instant) is exact for preemptive EDF and RM with deadline = period, so on
randomized integral task sets the simulator verdict must agree with:

* EDF — the utilization bound ``U <= 1`` (exact for implicit deadlines)
  and the processor-demand test of :mod:`repro.rtsched.dbf`;
* RM — the exact Bini-Buttazzo point test of :mod:`repro.rtsched.rms` and
  response-time analysis of :mod:`repro.rtsched.response_time`.

The event-compressed engine is additionally checked against the retained
release-by-release reference engine field by field.  Workloads stay
integral so both engines accumulate exactly representable floats.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtsched.dbf import edf_constrained_schedulable
from repro.rtsched.response_time import rta_schedulable
from repro.rtsched.rms import rms_schedulable_costs
from repro.rtsched.simulator import simulate

PERIOD_CHOICES = (2, 3, 4, 5, 6, 8, 10, 12, 15, 20)


@st.composite
def task_sets(draw, max_tasks: int = 5):
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    periods = [float(draw(st.sampled_from(PERIOD_CHOICES))) for _ in range(n)]
    costs = [
        float(draw(st.integers(min_value=1, max_value=max(1, int(p)))))
        for p in periods
    ]
    return periods, costs


def _hyperperiod(periods):
    h = 1
    for p in periods:
        h = math.lcm(h, round(p))
    return float(h)


@settings(max_examples=150, deadline=None)
@given(task_sets())
def test_edf_simulation_matches_analysis(ts):
    periods, costs = ts
    utilization = sum(c / p for c, p in zip(costs, periods))
    analytic = utilization <= 1.0 + 1e-9
    sim = simulate(periods, costs, policy="edf", horizon=_hyperperiod(periods))
    assert sim.schedulable == analytic
    # The demand-bound test must agree with the utilization bound here
    # (implicit deadlines) and hence with the simulator.
    assert edf_constrained_schedulable(periods, costs) == analytic


@settings(max_examples=150, deadline=None)
@given(task_sets())
def test_rms_simulation_matches_analysis(ts):
    periods, costs = ts
    sim = simulate(periods, costs, policy="rm", horizon=_hyperperiod(periods))
    assert sim.schedulable == rms_schedulable_costs(periods, costs)
    assert sim.schedulable == rta_schedulable(periods, costs)


@settings(max_examples=150, deadline=None)
@given(task_sets(), st.sampled_from(["edf", "rm"]))
def test_event_engine_matches_reference(ts, policy):
    periods, costs = ts
    fast = simulate(periods, costs, policy=policy)
    ref = simulate(periods, costs, policy=policy, engine="reference")
    assert fast.schedulable == ref.schedulable
    assert fast.missed == ref.missed
    assert fast.horizon == ref.horizon
    assert math.isclose(fast.busy_time, ref.busy_time, abs_tol=1e-6)
    for a, b in zip(fast.max_response, ref.max_response):
        assert math.isclose(a, b, abs_tol=1e-6)


@settings(max_examples=80, deadline=None)
@given(task_sets(), st.sampled_from(["edf", "rm"]))
def test_stop_on_first_miss_consistent(ts, policy):
    periods, costs = ts
    full = simulate(periods, costs, policy=policy)
    quick = simulate(periods, costs, policy=policy, stop_on_first_miss=True)
    assert quick.schedulable == full.schedulable
    if not full.schedulable:
        assert quick.missed
        assert quick.missed[0] in full.missed
        assert quick.horizon <= full.horizon + 1e-9
