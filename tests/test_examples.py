"""Smoke tests: the fast example scripts must run cleanly end to end.

(The slower walkthroughs — JPEG reconfiguration with exhaustive search,
the Pareto and iterative-codesign demos — are exercised through the
benchmark suite instead.)
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "custom_hardware_import.py",
    "mpsoc_customization.py",
    "biomonitoring.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
        assert "def main()" in text, f"{script.name} lacks a main()"
