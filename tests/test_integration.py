"""Cross-module integration tests: full pipelines end to end."""

from __future__ import annotations

import pytest

from repro.core import build_task, build_task_set, customize
from repro.mtreconfig import dp_solution, ilp_solution, tasks_from_benchmarks
from repro.pareto import (
    TaskCurve,
    approx_utilization_curve,
    exact_utilization_curve,
    is_eps_cover,
)
from repro.reconfig import greedy_partition, iterative_partition
from repro.rtsched import simulate_taskset
from repro.workloads import (
    JPEG_MAX_AREA,
    JPEG_RHO,
    get_program,
    jpeg_loops,
    jpeg_trace,
    programs_for,
)


@pytest.fixture(scope="module")
def small_task_set():
    """Two small benchmarks, periods scaled to software U = 1.1."""
    programs = programs_for(("crc32", "ndes"))
    return build_task_set(programs, target_utilization=1.1, name="it")


class TestChapter3Pipeline:
    def test_customization_makes_unschedulable_set_schedulable(
        self, small_task_set
    ):
        assert small_task_set.utilization > 1.0
        res = customize(small_task_set, small_task_set.max_area, policy="edf")
        assert res.schedulable
        assert res.utilization_after < res.utilization_before

    def test_edf_result_validated_by_simulation(self, small_task_set):
        res = customize(small_task_set, small_task_set.max_area, policy="edf")
        # Integer-period simulation: round periods conservatively down.
        import math

        tasks = small_task_set.tasks
        periods = [float(math.floor(t.period)) for t in tasks]
        costs = [
            math.ceil(t.configurations[j].cycles)
            for t, j in zip(tasks, res.assignment)
        ]
        from repro.rtsched import simulate

        sim = simulate(periods, costs, policy="edf", horizon=20 * max(periods))
        assert sim.schedulable

    def test_rms_policy_runs(self, small_task_set):
        res = customize(small_task_set, small_task_set.max_area, policy="rms")
        assert res.policy == "rms"
        if res.schedulable:
            assert res.utilization_after <= 1.0 + 1e-9

    def test_more_area_never_hurts(self, small_task_set):
        max_area = small_task_set.max_area
        utils = [
            customize(small_task_set, max_area * f, policy="edf").utilization_after
            for f in (0.0, 0.3, 0.6, 1.0)
        ]
        assert utils == sorted(utils, reverse=True)


class TestChapter4Pipeline:
    def test_curves_from_real_tasks(self):
        """Intra-task curves from built tasks feed the inter-task stage."""
        programs = programs_for(("crc32", "lms"))
        tasks = [build_task(p, max_configs=8) for p in programs]
        curves = [
            TaskCurve(
                period=2.0 * t.wcet,
                workloads=tuple(c.cycles for c in t.configurations),
                areas=tuple(int(round(c.area)) for c in t.configurations),
            )
            for t in tasks
        ]
        exact = exact_utilization_curve(curves)
        approx = approx_utilization_curve(curves, eps=0.69)
        assert len(exact) >= 1
        assert len(approx) <= len(exact) or len(exact) <= 3
        assert is_eps_cover(approx, exact, 0.69)


class TestChapter6Pipeline:
    def test_jpeg_iterative_beats_greedy_or_close(self):
        loops, trace = jpeg_loops(), jpeg_trace()
        it = iterative_partition(loops, trace, JPEG_MAX_AREA, JPEG_RHO)
        gr = greedy_partition(loops, trace, JPEG_MAX_AREA, JPEG_RHO)
        assert it.gain >= gr.gain - 1e-9

    def test_jpeg_reconfiguration_beats_static(self):
        """With multiple configurations the JPEG app gains more than any
        single static configuration (thesis Section 6.4.2 conclusion)."""
        from repro.reconfig import spatial_select

        loops, trace = jpeg_loops(), jpeg_trace()
        _sel, static_gain = spatial_select(loops, JPEG_MAX_AREA)
        it = iterative_partition(loops, trace, JPEG_MAX_AREA, JPEG_RHO)
        assert it.gain >= static_gain - 1e-9


class TestChapter7Pipeline:
    def test_benchmark_tasks_flow(self):
        tasks = tasks_from_benchmarks(("crc32", "lms"), target_utilization=1.2)
        fabric = 0.4 * sum(max(v.area for v in t.versions) for t in tasks)
        rho = 0.001 * min(t.period for t in tasks)
        dp = dp_solution(tasks, fabric, rho)
        ilp = ilp_solution(tasks, fabric, rho)
        assert dp.solution.utilization == pytest.approx(
            ilp.solution.utilization, rel=0.05
        )
        assert dp.solution.utilization < sum(
            t.software_utilization for t in tasks
        )


class TestChapter8Pipeline:
    def test_biomonitor_customization_speedup(self):
        from repro.enumeration import build_candidate_library
        from repro.selection import build_configuration_curve
        from repro.workloads import biomonitor_program

        program = biomonitor_program("ecg_filter")
        lib = build_candidate_library(program)
        curve = build_configuration_curve(program, lib.candidates)
        speedup = curve[0].cycles / curve[-1].cycles
        assert speedup > 1.1
