"""Tests for Chapter 6 runtime reconfiguration partitioning."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.reconfig import (
    CISVersion,
    HotLoop,
    Partition,
    build_rcg,
    count_reconfigurations,
    edge_cut,
    exhaustive_partition,
    greedy_partition,
    iterative_partition,
    kway_partition,
    net_gain,
    spatial_select,
)
from repro.workloads.loops import synthetic_loops, synthetic_trace


def motivating_loops() -> list[HotLoop]:
    """Thesis Figure 6.4 loop versions (areas in AUs, gains in Kcycles)."""
    mk = CISVersion
    return [
        HotLoop("loop1", (mk(0, 0), mk(257, 111), mk(301, 160), mk(1612, 563))),
        HotLoop(
            "loop2",
            (mk(0, 0), mk(76, 230), mk(1041, 387), mk(1321, 426), mk(2004, 556)),
        ),
        HotLoop("loop3", (mk(0, 0), mk(967, 493), mk(1249, 549))),
    ]


def build_fig64_trace() -> list[int]:
    """A trace realizing the Figure 6.4 reconfiguration structure.

    Pairwise transition counts: w(loop2, loop3) = 31 and 18 transitions
    touching loop1, so the solution-C cut (loop1 alone) costs 18
    reconfigurations and the all-singletons cut costs 49, exactly as in
    the thesis example.
    """
    trace: list[int] = []
    for _ in range(16):
        trace += [1, 2]  # 31 transitions between loop2 and loop3
    trace += [0, 2] * 9  # 18 transitions between loop1 and loop3
    return trace


class TestModel:
    def test_version_zero_must_be_software(self):
        with pytest.raises(ReproError):
            HotLoop("x", (CISVersion(1, 1),))

    def test_best_version(self):
        lp = motivating_loops()[0]
        assert lp.best_version == 3

    def test_count_reconfigurations_basic(self):
        # Trace A B A B with both hw in different configs: 3 switches.
        assert count_reconfigurations([0, 1, 0, 1], [0, 1], [0, 1]) == 3

    def test_same_config_no_switches(self):
        assert count_reconfigurations([0, 1, 0, 1], [5, 5], [0, 1]) == 0

    def test_software_loops_transparent(self):
        # Loop 1 is software; consecutive 0s around it do not switch.
        assert count_reconfigurations([0, 1, 0], {0: 0, 1: 1}, [0]) == 0

    def test_initial_load_not_counted(self):
        assert count_reconfigurations([0], [0], [0]) == 0

    def test_net_gain(self):
        loops = motivating_loops()
        part = Partition(selection=(2, 1, 1), config_of=(0, 0, 0))
        trace = [0, 1, 2]
        # One config: no reconfig. Gain = 160 + 230 + 493.
        assert net_gain(loops, part, trace, rho=15.0) == pytest.approx(883.0)


class TestRcg:
    def test_thesis_figure_6_6(self):
        # Trace ABCBCBA, all in hardware: w(A,B)=2, w(B,C)=4, no (A,C) edge.
        a, b, c = 0, 1, 2
        trace = [a, b, c, b, c, b, a]
        edges = build_rcg(trace, [a, b, c])
        assert edges[(a, b)] == 2
        assert edges[(b, c)] == 4
        assert (a, c) not in edges

    def test_software_elision_connects_neighbours(self):
        # B in software: A and C become adjacent (w(A,C)=2).
        a, b, c = 0, 1, 2
        trace = [a, b, c, b, c, b, a]
        edges = build_rcg(trace, [a, c])
        assert edges[(a, c)] == 2
        assert edges[(c, c) if False else (a, c)] == 2

    def test_self_transitions_free(self):
        assert build_rcg([0, 0, 0], [0]) == {}


class TestSpatialSelect:
    @given(st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        loops = synthetic_loops(4, seed=seed, max_versions=4)
        budget = float(rng.randint(20, 250))
        sel, gain = spatial_select(loops, budget, scale=1)
        # Brute force.
        best = 0.0
        for combo in itertools.product(*[range(lp.n_versions) for lp in loops]):
            area = sum(lp.versions[j].area for lp, j in zip(loops, combo))
            if area <= budget + 1e-9:
                best = max(best, sum(lp.versions[j].gain for lp, j in zip(loops, combo)))
        assert gain == pytest.approx(best)
        assert sum(lp.versions[j].area for lp, j in zip(loops, sel)) <= budget + 1e-9

    def test_zero_budget(self):
        loops = synthetic_loops(3, seed=1)
        sel, gain = spatial_select(loops, 0.0)
        assert sel == [0, 0, 0]
        assert gain == 0.0


class TestKwayPartition:
    def test_assignment_shape(self):
        assign = kway_partition(6, {(0, 1): 5.0, (2, 3): 2.0}, k=2)
        assert len(assign) == 6
        assert all(0 <= p < 2 for p in assign)

    def test_k_geq_n(self):
        assert kway_partition(3, {}, k=5) == [0, 1, 2]

    def test_k_one(self):
        assert kway_partition(4, {(0, 1): 1.0}, k=1) == [0, 0, 0, 0]

    def test_heavy_edges_kept_together(self):
        # Two heavy cliques joined by a light edge: the cut should be light.
        edges = {
            (0, 1): 100.0,
            (1, 2): 100.0,
            (0, 2): 100.0,
            (3, 4): 100.0,
            (4, 5): 100.0,
            (3, 5): 100.0,
            (2, 3): 1.0,
        }
        assign = kway_partition(6, edges, k=2, seed=3)
        assert edge_cut(edges, assign) == pytest.approx(1.0)

    def test_balance_respected(self):
        weights = [1.0] * 8
        assign = kway_partition(8, {}, weights, k=2, imbalance=0.2)
        sizes = [assign.count(p) for p in range(2)]
        assert max(sizes) <= 5  # (1 + 0.2) * 8/2 = 4.8 -> at most 4 actually


class TestAlgorithms:
    def test_motivating_example_optimal(self):
        """Figure 6.4: the optimal solution puts loop1 alone (v4) and
        loop2 (v3) + loop3 (v2) together, net gain 1173K cycles."""
        loops = motivating_loops()
        trace = build_fig64_trace()
        edges = build_rcg(trace, [0, 1, 2])
        assert edges[(1, 2)] == 31
        assert edges[(0, 2)] in (17, 18)  # alternation parity
        sol = exhaustive_partition(loops, trace, max_area=2048.0, rho=15.0)
        # Solution C of the thesis: selection (v4, v3, v2).
        assert sol.partition.selection == (3, 2, 1)
        # loop1 alone; loop2 and loop3 together.
        cfg = sol.partition.config_of
        assert cfg[1] == cfg[2] and cfg[0] != cfg[1]

    def test_exhaustive_near_optimal_others_bounded(self):
        """Exhaustive is exact over the thesis search space (gain-optimal
        local selection); the iterative algorithm must stay close and may
        exceed it via its software-demotion post-pass; greedy never beats
        exhaustive here because it only adds profitable versions."""
        for seed in (1, 2, 3):
            loops = synthetic_loops(6, seed=seed)
            trace = synthetic_trace(6, seed=seed)
            ex = exhaustive_partition(loops, trace, 150.0, 400.0)
            it = iterative_partition(loops, trace, 150.0, 400.0)
            gr = greedy_partition(loops, trace, 150.0, 400.0)
            assert it.gain >= 0.85 * ex.gain
            assert ex.gain >= gr.gain - 1e-9

    def test_iterative_selection_fits_configurations(self):
        loops = synthetic_loops(10, seed=4)
        trace = synthetic_trace(10, seed=4)
        sol = iterative_partition(loops, trace, 150.0, 400.0)
        by_cfg: dict[int, float] = {}
        for i, j in enumerate(sol.partition.selection):
            if j == 0:
                continue
            cfg = sol.partition.config_of[i]
            by_cfg[cfg] = by_cfg.get(cfg, 0.0) + loops[i].versions[j].area
        for area in by_cfg.values():
            assert area <= 150.0 + 1e-9

    def test_greedy_configurations_fit(self):
        loops = synthetic_loops(12, seed=5)
        trace = synthetic_trace(12, seed=5)
        sol = greedy_partition(loops, trace, 150.0, 400.0)
        by_cfg: dict[int, float] = {}
        for i, j in enumerate(sol.partition.selection):
            if j == 0:
                continue
            cfg = sol.partition.config_of[i]
            by_cfg[cfg] = by_cfg.get(cfg, 0.0) + loops[i].versions[j].area
        for area in by_cfg.values():
            assert area <= 150.0 + 1e-9

    def test_zero_rho_wants_max_gain(self):
        """With free reconfiguration, iterative reaches every loop's best
        version."""
        loops = synthetic_loops(5, seed=6)
        trace = synthetic_trace(5, seed=6)
        sol = iterative_partition(loops, trace, 150.0, rho=0.0)
        expected = sum(lp.versions[lp.best_version].gain for lp in loops)
        assert sol.gain == pytest.approx(expected)

    def test_huge_rho_forces_single_configuration(self):
        loops = synthetic_loops(6, seed=7)
        trace = synthetic_trace(6, seed=7)
        sol = iterative_partition(loops, trace, 150.0, rho=1e9)
        assert sol.n_configurations <= 1

    def test_exhaustive_time_budget(self):
        from repro.errors import SolverError

        loops = synthetic_loops(14, seed=8)
        trace = synthetic_trace(14, seed=8)
        with pytest.raises(SolverError):
            exhaustive_partition(loops, trace, 150.0, 400.0, time_budget=0.0)


class TestSetPartitions:
    def test_bell_numbers(self):
        from repro.reconfig import set_partitions

        for n, bell in ((1, 1), (2, 2), (3, 5), (4, 15), (5, 52)):
            assert sum(1 for _ in set_partitions(n)) == bell

    def test_partitions_are_valid_rgs(self):
        from repro.reconfig import set_partitions

        for rgs in set_partitions(4):
            assert rgs[0] == 0
            for i in range(1, 4):
                assert rgs[i] <= max(rgs[:i]) + 1
