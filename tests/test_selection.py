"""Tests for the custom-instruction selection solvers."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration.patterns import Candidate
from repro.selection import (
    select_branch_bound,
    select_greedy,
    select_ilp,
    select_knapsack,
)


def _cand(
    block: int, nodes: tuple[int, ...], gain: float, area: float
) -> Candidate:
    """Candidate with explicit gain (encoded via sw/hw/frequency)."""
    return Candidate(
        block_index=block,
        nodes=frozenset(nodes),
        sw_cycles=int(gain) + 1,
        hw_cycles=1,
        area=area,
        inputs=2,
        outputs=1,
        frequency=1.0,
    )


def _random_instance(seed: int, n: int = 8):
    rng = random.Random(seed)
    cands = []
    for i in range(n):
        block = rng.randint(0, 1)
        start = rng.randint(0, 6)
        size = rng.randint(1, 3)
        nodes = tuple(range(start, start + size))
        cands.append(
            _cand(block, nodes, gain=rng.randint(1, 50), area=rng.randint(1, 10))
        )
    budget = rng.randint(5, 30)
    return cands, float(budget)


def _brute_force(cands, budget):
    best_gain, best = 0.0, []
    for r in range(len(cands) + 1):
        for combo in itertools.combinations(range(len(cands)), r):
            if sum(cands[i].area for i in combo) > budget + 1e-9:
                continue
            ok = all(
                not cands[i].overlaps(cands[j])
                for i, j in itertools.combinations(combo, 2)
            )
            if not ok:
                continue
            gain = sum(cands[i].total_gain for i in combo)
            if gain > best_gain:
                best_gain, best = gain, list(combo)
    return best_gain, best


class TestBranchBound:
    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_optimal_vs_bruteforce(self, seed):
        cands, budget = _random_instance(seed)
        expected, _ = _brute_force(cands, budget)
        sel = select_branch_bound(cands, budget)
        got = sum(cands[i].total_gain for i in sel)
        assert got == pytest.approx(expected)

    def test_respects_budget_and_conflicts(self):
        cands, budget = _random_instance(42, n=12)
        sel = select_branch_bound(cands, budget)
        assert sum(cands[i].area for i in sel) <= budget + 1e-9
        for i, j in itertools.combinations(sel, 2):
            assert not cands[i].overlaps(cands[j])

    def test_empty_pool(self):
        assert select_branch_bound([], 10.0) == []


class TestIlp:
    @given(st.integers(0, 120))
    @settings(max_examples=20, deadline=None)
    def test_ilp_matches_bruteforce(self, seed):
        cands, budget = _random_instance(seed, n=7)
        expected, _ = _brute_force(cands, budget)
        sel = select_ilp(cands, budget)
        got = sum(cands[i].total_gain for i in sel)
        assert got == pytest.approx(expected)

    def test_isomorphic_sharing_allows_more(self):
        # Two identical candidates in different blocks; budget fits one area.
        a = _cand(0, (0, 1), gain=10, area=5)
        b = _cand(1, (0, 1), gain=10, area=5)
        object.__setattr__(a, "structural_key", ("k",))
        object.__setattr__(b, "structural_key", ("k",))
        no_share = select_ilp([a, b], 5.0, share_isomorphic=False)
        share = select_ilp([a, b], 5.0, share_isomorphic=True)
        assert len(no_share) == 1
        assert len(share) == 2

    def test_empty(self):
        assert select_ilp([], 5.0) == []


class TestGreedy:
    def test_respects_budget_and_conflicts(self):
        cands, budget = _random_instance(7, n=14)
        sel = select_greedy(cands, budget)
        assert sum(cands[i].area for i in sel) <= budget + 1e-9
        for i, j in itertools.combinations(sel, 2):
            assert not cands[i].overlaps(cands[j])

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError):
            select_greedy([], 1.0, priority="nope")

    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_never_beats_optimal(self, seed):
        cands, budget = _random_instance(seed)
        expected, _ = _brute_force(cands, budget)
        sel = select_greedy(cands, budget)
        got = sum(cands[i].total_gain for i in sel)
        assert got <= expected + 1e-9


class TestKnapsack:
    @given(st.integers(0, 150))
    @settings(max_examples=30, deadline=None)
    def test_optimal_on_disjoint_items(self, seed):
        rng = random.Random(seed)
        # Disjoint candidates: distinct blocks.
        cands = [
            _cand(i, (0, 1), gain=rng.randint(1, 40), area=rng.randint(1, 8))
            for i in range(7)
        ]
        budget = float(rng.randint(4, 25))
        expected, _ = _brute_force(cands, budget)
        sel = select_knapsack(cands, budget)
        got = sum(cands[i].total_gain for i in sel)
        assert got == pytest.approx(expected)

    def test_zero_budget(self):
        cands = [_cand(0, (0,), 5, 2)]
        assert select_knapsack(cands, 0.0) == []
