"""Tests for candidates, candidate libraries and library construction."""

from __future__ import annotations

import pytest

from repro.enumeration.library import build_candidate_library, hot_block_indices
from repro.enumeration.patterns import Candidate, CandidateLibrary, make_candidate
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, Loop, Program, Seq
from repro.isa.opcodes import Opcode
from tests.conftest import random_small_dfg


class TestCandidate:
    def test_make_candidate_costs(self, chain_dfg):
        c = make_candidate(chain_dfg, [0, 1, 2], frequency=10.0)
        assert c.sw_cycles == 1 + 3 + 1  # add, mul, sub
        assert c.hw_cycles >= 1
        assert c.gain_per_exec == c.sw_cycles - c.hw_cycles
        assert c.total_gain == c.gain_per_exec * 10.0
        assert c.area == pytest.approx(1.0 + 18.0 + 1.0)

    def test_overlap_same_block(self, chain_dfg):
        a = make_candidate(chain_dfg, [0, 1], block_index=0)
        b = make_candidate(chain_dfg, [1, 2], block_index=0)
        c = make_candidate(chain_dfg, [1, 2], block_index=1)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # different block

    def test_size(self, chain_dfg):
        assert make_candidate(chain_dfg, [0, 1]).size == 2


class TestCandidateLibrary:
    def test_conflicts_detects_overlap(self, chain_dfg):
        lib = CandidateLibrary(
            [
                make_candidate(chain_dfg, [0, 1], block_index=0),
                make_candidate(chain_dfg, [1, 2], block_index=0),
                make_candidate(chain_dfg, [0, 1], block_index=1),
            ]
        )
        assert lib.conflicts() == [(0, 1)]

    def test_isomorphism_classes_group_identical_shapes(self):
        dfg = DataFlowGraph()
        a0 = dfg.add_op(Opcode.ADD)
        a1 = dfg.add_op(Opcode.MUL, preds=[a0])
        b0 = dfg.add_op(Opcode.ADD)
        b1 = dfg.add_op(Opcode.MUL, preds=[b0])
        lib = CandidateLibrary(
            [make_candidate(dfg, [a0, a1]), make_candidate(dfg, [b0, b1])]
        )
        classes = lib.isomorphism_classes()
        assert len(classes) == 1
        assert sorted(next(iter(classes.values()))) == [0, 1]

    def test_profitable_filter(self, chain_dfg):
        good = make_candidate(chain_dfg, [0, 1, 2], frequency=5.0)
        bad = Candidate(
            block_index=0,
            nodes=frozenset([0]),
            sw_cycles=1,
            hw_cycles=1,
            area=1.0,
            inputs=2,
            outputs=1,
        )
        lib = CandidateLibrary([good, bad])
        assert len(lib.profitable()) == 1


class TestLibraryBuild:
    def test_hot_blocks_ordered_by_contribution(self, tiny_program):
        hot = hot_block_indices(tiny_program, hot_threshold=0.0)
        freq = tiny_program.profile()
        blocks = tiny_program.basic_blocks
        contribs = [freq[i] * blocks[i].dfg.sw_cycles() for i in hot]
        assert contribs == sorted(contribs, reverse=True)

    def test_threshold_excludes_cold_blocks(self, tiny_program):
        # The loop body dominates; a high threshold keeps only it.
        hot = hot_block_indices(tiny_program, hot_threshold=0.5)
        assert hot == [1]

    def test_library_candidates_profitable_and_feasible(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        blocks = tiny_program.basic_blocks
        for c in lib:
            assert c.total_gain > 0
            dfg = blocks[c.block_index].dfg
            assert dfg.is_feasible(c.nodes, 4, 2)

    def test_library_sorted_by_gain(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        gains = [c.total_gain for c in lib]
        assert gains == sorted(gains, reverse=True)

    def test_io_constraints_propagate(self, tiny_program):
        lib = build_candidate_library(tiny_program, max_inputs=2, max_outputs=1)
        for c in lib:
            assert c.inputs <= 2
            assert c.outputs <= 1


class TestDisconnectedLibrary:
    def test_disconnected_candidates_extend_library(self, tiny_program):
        base = build_candidate_library(tiny_program)
        extended = build_candidate_library(
            tiny_program, include_disconnected=True
        )
        assert len(extended) >= len(base)

    def test_disconnected_candidates_feasible(self, tiny_program):
        lib = build_candidate_library(tiny_program, include_disconnected=True)
        blocks = tiny_program.basic_blocks
        for c in lib:
            assert blocks[c.block_index].dfg.is_feasible(c.nodes, 4, 2)
