"""Edge-case and error-path tests across modules."""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError, ScheduleError, WorkloadError
from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import Opcode


class TestTaskSetErrors:
    def test_empty_task_set_rejected(self):
        from repro.rtsched import TaskSet

        with pytest.raises(ScheduleError):
            TaskSet([])

    def test_assignment_length_checked(self):
        from repro.rtsched import PeriodicTask, TaskSet

        ts = TaskSet([PeriodicTask(name="t", period=2.0, wcet=1.0)])
        with pytest.raises(ScheduleError):
            ts.utilization_for([0, 0])
        with pytest.raises(ScheduleError):
            ts.area_for([])

    def test_hyperperiod_requires_integral_periods(self):
        from repro.rtsched import PeriodicTask, TaskSet

        ts = TaskSet([PeriodicTask(name="t", period=2.5, wcet=1.0)])
        with pytest.raises(ScheduleError):
            ts.hyperperiod()

    def test_scale_periods_invalid_target(self):
        from repro.rtsched import PeriodicTask, scale_periods_for_utilization

        t = PeriodicTask(name="t", period=2.0, wcet=1.0)
        with pytest.raises(ScheduleError):
            scale_periods_for_utilization([t], 0.0)
        with pytest.raises(ScheduleError):
            scale_periods_for_utilization([], 1.0)


class TestCoreFlowErrors:
    def test_unknown_policy(self):
        from repro.core import customize
        from repro.rtsched import PeriodicTask, TaskSet

        ts = TaskSet([PeriodicTask(name="t", period=2.0, wcet=1.0)])
        with pytest.raises(ScheduleError):
            customize(ts, 1.0, policy="fifo")

    def test_negative_budget_rejected_both_policies(self):
        from repro.core import select_edf, select_rms
        from repro.rtsched import PeriodicTask, TaskSet

        ts = TaskSet([PeriodicTask(name="t", period=2.0, wcet=1.0)])
        with pytest.raises(ScheduleError):
            select_edf(ts, -1.0)
        with pytest.raises(ScheduleError):
            select_rms(ts, -1.0)

    def test_mpsoc_invalid_args(self):
        from repro.core import customize_mpsoc, partition_tasks_worst_fit
        from repro.rtsched import PeriodicTask

        t = PeriodicTask(name="t", period=2.0, wcet=1.0)
        with pytest.raises(ScheduleError):
            partition_tasks_worst_fit([t], 0)
        with pytest.raises(ScheduleError):
            customize_mpsoc([t], 1, total_area=-5.0)


class TestReconfigErrors:
    def test_iterative_needs_loops(self):
        from repro.reconfig import iterative_partition

        with pytest.raises(ReproError):
            iterative_partition([], [], 10.0, 1.0)

    def test_net_gain_length_check(self):
        from repro.reconfig import CISVersion, HotLoop, Partition, net_gain

        loops = [HotLoop("a", (CISVersion(0, 0),))]
        bad = Partition(selection=(0, 0), config_of=(0, 0))
        with pytest.raises(ReproError):
            net_gain(loops, bad, [], 1.0)

    def test_spatial_negative_budget(self):
        from repro.reconfig import CISVersion, HotLoop, spatial_select

        loops = [HotLoop("a", (CISVersion(0, 0),))]
        with pytest.raises(ReproError):
            spatial_select(loops, -1.0)

    def test_cisversion_validation(self):
        from repro.reconfig import CISVersion

        with pytest.raises(ReproError):
            CISVersion(area=-1.0, gain=1.0)


class TestMtreconfigErrors:
    def test_taskversion_validation(self):
        from repro.mtreconfig import TaskVersion

        with pytest.raises(ReproError):
            TaskVersion(area=1.0, cycles=0.0)

    def test_effective_utilization_length_check(self):
        from repro.mtreconfig import ReconfigTask, TaskVersion, effective_utilization

        t = ReconfigTask(name="t", period=2.0, versions=(TaskVersion(0.0, 1.0),))
        with pytest.raises(ReproError):
            effective_utilization([t], [0, 0], [0], 1.0)

    def test_static_negative_area(self):
        from repro.mtreconfig import ReconfigTask, TaskVersion, static_solution

        t = ReconfigTask(name="t", period=2.0, versions=(TaskVersion(0.0, 1.0),))
        with pytest.raises(ScheduleError):
            static_solution([t], -1.0)


class TestDfgMisc:
    def test_to_networkx_roundtrip(self, diamond_dfg):
        g = diamond_dfg.to_networkx()
        assert set(g.nodes) == set(diamond_dfg.nodes)
        assert g.has_edge(0, 1) and g.has_edge(2, 3)

    def test_opcode_str(self):
        assert str(Opcode.ADD) == "add"

    def test_repr_contains_name(self):
        dfg = DataFlowGraph("blk")
        assert "blk" in repr(dfg)

    def test_io_count_accepts_frozenset(self, diamond_dfg):
        io = diamond_dfg.io_count(frozenset({1, 2}))
        assert io.outputs == 2


class TestSimulatorEdges:
    def test_explicit_horizon(self):
        from repro.rtsched import simulate

        res = simulate([4.0], [1.0], policy="edf", horizon=8.0)
        assert res.horizon == 8.0
        assert res.busy_time == pytest.approx(2.0)

    def test_non_integral_periods_default_horizon(self):
        from repro.rtsched import simulate

        res = simulate([2.5, 3.5], [0.5, 0.5], policy="edf")
        assert res.horizon == pytest.approx(20.0 * 3.5)
        assert res.schedulable

    def test_zero_utilization_idle(self):
        from repro.rtsched import simulate

        res = simulate([100.0], [1.0], policy="rm", horizon=100.0)
        assert res.observed_utilization == pytest.approx(0.01)


class TestWorkloadEdges:
    def test_synthetic_loops_single(self):
        from repro.workloads import synthetic_loops

        loops = synthetic_loops(1, seed=0)
        assert len(loops) == 1

    def test_synthetic_trace_has_target_length(self):
        from repro.workloads import synthetic_trace

        trace = synthetic_trace(4, seed=0, length=100)
        assert len(trace) >= 100

    def test_jpeg_trace_single_mcu(self):
        from repro.workloads import jpeg_trace

        assert len(jpeg_trace(1)) == 8

    def test_get_program_cached(self):
        from repro.workloads import get_program

        assert get_program("lms") is get_program("lms")


class TestEnergyEdges:
    def test_unknown_policy(self):
        from repro.errors import ScheduleError
        from repro.rtsched import lowest_feasible_point

        with pytest.raises(ScheduleError):
            lowest_feasible_point(0.5, 2, policy="weird")

    def test_custom_operating_points(self):
        from repro.rtsched import OperatingPoint, lowest_feasible_point

        pts = (OperatingPoint(100.0, 1.0), OperatingPoint(200.0, 1.4))
        p = lowest_feasible_point(0.5, 1, "edf", points=pts)
        assert p is not None and p.mhz == 100.0


class TestParetoEdges:
    def test_cioption_validation(self):
        from repro.pareto import CIOption

        with pytest.raises(ReproError):
            CIOption(delta=-1.0, area=1)
        with pytest.raises(ReproError):
            CIOption(delta=1.0, area=-1)

    def test_exact_curve_zero_cost_options(self):
        from repro.pareto import CIOption, exact_workload_curve

        # All-zero-area options collapse to a single (improved) point.
        curve = exact_workload_curve(10.0, [CIOption(delta=2.0, area=0)])
        assert len(curve) == 1
        assert curve[0].value == pytest.approx(8.0)
