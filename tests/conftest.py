"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, Loop, Program, Seq
from repro.isa.opcodes import Opcode


@pytest.fixture(autouse=True)
def _fresh_obs_epoch():
    """Start every test in a fresh observability epoch.

    Zeroed metrics, re-armed one-shot warnings and an empty span buffer
    make warn-once and counter assertions order-independent across tests.
    """
    obs.reset()
    yield
    obs.disable_tracing()


@pytest.fixture
def chain_dfg() -> DataFlowGraph:
    """add -> mul -> sub chain with external inputs.

    Node 0: ADD(ext, ext); node 1: MUL(n0, ext); node 2: SUB(n1, ext).
    """
    dfg = DataFlowGraph("chain")
    n0 = dfg.add_op(Opcode.ADD)
    n1 = dfg.add_op(Opcode.MUL, preds=[n0])
    dfg.add_op(Opcode.SUB, preds=[n1])
    return dfg


@pytest.fixture
def diamond_dfg() -> DataFlowGraph:
    """Diamond: n0 feeds n1 and n2; both feed n3.

    Classic convexity test shape: {n1, n2, n3} is convex, {n0, n3} is not.
    """
    dfg = DataFlowGraph("diamond")
    n0 = dfg.add_op(Opcode.ADD)
    n1 = dfg.add_op(Opcode.SHL, preds=[n0])
    n2 = dfg.add_op(Opcode.XOR, preds=[n0])
    dfg.add_op(Opcode.OR, preds=[n1, n2])
    return dfg


@pytest.fixture
def load_split_dfg() -> DataFlowGraph:
    """Two valid clusters separated by an (invalid) load.

    Nodes 0,1 form region A; node 2 is a LOAD; nodes 3,4 form region B fed
    by the load.
    """
    dfg = DataFlowGraph("split")
    a0 = dfg.add_op(Opcode.ADD)
    a1 = dfg.add_op(Opcode.MUL, preds=[a0])
    ld = dfg.add_op(Opcode.LOAD, preds=[a1])
    b0 = dfg.add_op(Opcode.SUB, preds=[ld])
    dfg.add_op(Opcode.XOR, preds=[b0])
    return dfg


def random_small_dfg(seed: int, n: int = 10) -> DataFlowGraph:
    """A random, valid-op-only DAG for property tests."""
    rng = random.Random(seed)
    valid_ops = [
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.XOR,
        Opcode.AND,
        Opcode.SHL,
        Opcode.CMP,
    ]
    dfg = DataFlowGraph(f"rand{seed}")
    for i in range(n):
        preds = []
        if i > 0:
            count = rng.randint(0, min(2, i))
            preds = rng.sample(range(i), count)
        dfg.add_op(rng.choice(valid_ops), preds=preds)
    return dfg


@pytest.fixture
def tiny_program() -> Program:
    """init block; loop(bound=10) around one kernel block; exit block."""
    def block(ops: int, seed: int) -> Block:
        return Block(random_small_dfg(seed, ops))

    return Program(
        "tiny",
        Seq([block(4, 1), Loop(block(8, 2), bound=10, avg_trip=8.0), block(3, 3)]),
    )
