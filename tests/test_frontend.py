"""Tests for the real-code front-end (:mod:`repro.frontend`).

Covers the Python AST builder (opcode mapping, MAC fusion, liveness
across blocks, hints, WCET composition), the JSON/DOT importers (exact
inverse of ``dfg_to_dot``, malformed-graph rejection), the workload
registry, the ``repro ingest`` CLI and the service job kinds running on
ingested programs.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cache
from repro import frontend
from repro.cli import main
from repro.errors import FrontendError, ReproError, WorkloadError
from repro.frontend import (
    DEFAULT_LOOP_BOUND,
    KernelHints,
    dfg_from_dict,
    dfg_to_dict,
    import_dot,
    ingest_function,
    ingest_path,
    ingest_source,
    kernel,
    program_from_dict,
    program_to_dict,
)
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.export import dfg_to_dot
from repro.graphs.program import Block, IfElse, Loop, Seq
from repro.isa.opcodes import Opcode
from repro.workloads import get_program, registry
from tests.conftest import random_small_dfg

KERNEL_SRC = '''
from repro.frontend import kernel

@kernel(bounds={"i": 16}, avg_trips={"i": 12}, taken_probs={0: 0.25})
def fir(x, h, n, acc):
    for i in range(n):
        acc = acc + x[i] * h[i]
    if acc > 255:
        acc = 255
    return acc
'''


def _ops(dfg: DataFlowGraph) -> Counter:
    return Counter(str(dfg.op(n)) for n in dfg.nodes)


def _all_ops(program) -> Counter:
    total: Counter = Counter()
    for b in program.basic_blocks:
        total.update(_ops(b.dfg))
    return total


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    registry.clear_registry()
    # CLI --no-cache flips the process-wide switch; restore it so later
    # test files keep their warm-cache assertions.
    cache.set_enabled(True)


# ----------------------------------------------------------------------
# AST builder
# ----------------------------------------------------------------------
class TestPyAstBuilder:
    def test_straightline_expression_mapping(self):
        p = ingest_source(
            "def f(a, b, c):\n"
            "    d = (a + b) - (a & b)\n"
            "    e = d << 2\n"
            "    g = min(d, e, c)\n"
            "    h = abs(g) ^ max(d, e)\n"
            "    s = h if g > 0 else d\n"
            "    return s\n"
        )
        ops = _all_ops(p)
        assert ops["add"] == 1 and ops["sub"] == 1 and ops["and"] == 1
        assert ops["shl"] == 1 and ops["min"] == 2  # 3-arg min folds
        assert ops["abs"] == 1 and ops["max"] == 1 and ops["xor"] == 1
        assert ops["cmp"] == 1 and ops["select"] == 1
        assert len(p.basic_blocks) == 1

    def test_mac_fusion_both_orders(self):
        p = ingest_source(
            "def f(a, b, c):\n"
            "    x = a + b * c\n"
            "    y = b * c + a\n"
            "    return x, y\n"
        )
        ops = _all_ops(p)
        assert ops["mac"] == 2
        assert ops["mul"] == 0 and ops["add"] == 0
        # MAC is a 3-input op: here one operand (a) is a live-in.
        dfg = p.basic_blocks[0].dfg
        for n in dfg.nodes:
            if dfg.op(n) is Opcode.MAC:
                assert len(dfg.preds(n)) + dfg.external_inputs(n) == 3

    def test_loads_stores_calls_are_invalid_and_split_regions(self):
        p = ingest_source(
            "def f(x, i, a, b):\n"
            "    t = x[i] + a\n"
            "    u = helper(t)\n"
            "    v = u * b\n"
            "    x[i] = v\n"
            "    return v\n"
        )
        dfg = p.basic_blocks[0].dfg
        ops = _ops(dfg)
        assert ops["load"] == 1 and ops["store"] == 1 and ops["call"] == 1
        invalid = [n for n in dfg.nodes if not dfg.is_valid_node(n)]
        assert len(invalid) == 3
        # The invalid ops split the valid nodes into >1 region.
        assert len(dfg.regions()) >= 2

    def test_constant_dedup_per_block(self):
        p = ingest_source(
            "def f(a):\n"
            "    x = a + 3\n"
            "    y = a - 3\n"
            "    z = x * 4\n"
            "    return y, z\n"
        )
        assert _ops(p.basic_blocks[0].dfg)["const"] == 2  # 3 deduped, 4

    def test_augmented_assign_desugars(self):
        p = ingest_source("def f(a, b):\n    a += b\n    a <<= 1\n    return a\n")
        ops = _all_ops(p)
        assert ops["add"] == 1 and ops["shl"] == 1

    def test_compare_chain_folds_to_and(self):
        p = ingest_source("def f(a, b, c):\n    ok = a < b < c\n    return ok\n")
        ops = _all_ops(p)
        assert ops["cmp"] == 2 and ops["and"] == 1

    def test_cross_block_use_marks_liveout_and_livein(self):
        p = ingest_source(
            "def f(a, b):\n"
            "    t = a + b\n"
            "    if a > 0:\n"
            "        u = t * 2\n"
            "    else:\n"
            "        u = t + 1\n"
            "    return u\n"
        )
        pre = p.basic_blocks[0].dfg  # add + cmp + branch block
        add_node = next(n for n in pre.nodes if pre.op(n) is Opcode.ADD)
        assert pre.is_live_out(add_node)
        # Both branch definitions of `u` escape to the return.
        for blk in p.basic_blocks[1:]:
            producers = [n for n in blk.dfg.nodes if blk.dfg.is_live_out(n)]
            assert producers, f"{blk.dfg.name} has no live-out"

    def test_loop_carried_value_is_liveout(self):
        p = ingest_source(
            "def f(n, acc):\n"
            "    for i in range(8):\n"
            "        acc = acc + i\n"
            "    return acc\n"
        )
        body = p.basic_blocks[0].dfg
        adds = [n for n in body.nodes if body.op(n) is Opcode.ADD]
        # Both the induction step and the accumulator are carried.
        assert all(body.is_live_out(n) for n in adds)

    def test_static_range_bound_and_hint_override(self):
        p = ingest_source("def f(a):\n    for i in range(8):\n        a = a + i\n    return a\n")
        loop = p.root.children[0]
        assert isinstance(loop, Loop) and loop.bound == 8
        q = ingest_source(
            "def f(a):\n    for i in range(8):\n        a = a + i\n    return a\n",
            hints={"bounds": {"i": 3}},
        )
        assert q.root.children[0].bound == 3

    def test_dynamic_range_uses_default_bound(self):
        p = ingest_source("def f(a, n):\n    for i in range(n):\n        a = a + i\n    return a\n")
        assert p.root.children[0].bound == DEFAULT_LOOP_BOUND

    def test_while_bound_keyed_in_source_order(self):
        src = (
            "def f(a):\n"
            "    while a > 0:\n"
            "        a = a - 1\n"
            "    while a < 100:\n"
            "        a = a + 3\n"
            "    return a\n"
        )
        p = ingest_source(src, hints={"bounds": {"while#0": 5, "while#1": 9}})
        loops = [c for c in p.root.children if isinstance(c, Loop)]
        assert [lp.bound for lp in loops] == [5, 9]

    def test_statically_empty_loop_is_dropped(self):
        p = ingest_source(
            "def f(a):\n"
            "    for i in range(0):\n"
            "        a = a * 2\n"
            "    return a + 1\n"
        )
        assert not any(isinstance(c, Loop) for c in p.root.children)

    def test_taken_prob_hint_shapes_profile(self):
        src = (
            "def f(a):\n"
            "    if a > 0:\n"
            "        b = a * 3\n"
            "    else:\n"
            "        b = a + 1\n"
            "    return b\n"
        )
        hot = ingest_source(src, hints={"taken_probs": {0: 1.0}})
        cold = ingest_source(src, hints={"taken_probs": {0: 0.0}})
        # MUL costs more than ADD, so always-taken runs longer on average.
        assert hot.avg_cycles() > cold.avg_cycles()
        assert hot.wcet() == cold.wcet()  # WCET takes max regardless

    def test_wcet_composition_nested_loop_ifelse(self):
        src = (
            "def f(a, b):\n"
            "    t = a + b\n"
            "    for i in range(4):\n"
            "        for j in range(2):\n"
            "            t = t + i * j\n"
            "        if t > 10:\n"
            "            t = t // 3\n"
            "        else:\n"
            "            t = t + 2\n"
            "    return t\n"
        )
        p = ingest_source(src)
        blocks = p.basic_blocks
        assert len(blocks) == 7
        c = [float(b.dfg.sw_cycles()) for b in blocks]
        # Seq(bb0, Loop4(Seq(bb1, Loop2(bb2), bb3, IfElse(bb4, bb5), bb6)))
        expected = c[0] + 4 * (c[1] + 2 * c[2] + c[3] + max(c[4], c[5]) + c[6])
        assert p.wcet() == pytest.approx(expected)
        # Average case: both trips at bound, branches split 50/50.
        expected_avg = c[0] + 4 * (
            c[1] + 2 * c[2] + c[3] + 0.5 * c[4] + 0.5 * c[5] + c[6]
        )
        assert p.avg_cycles() == pytest.approx(expected_avg)

    def test_empty_function_errors_with_location(self):
        with pytest.raises(FrontendError, match=r"body\.py:2: .*no operations"):
            ingest_source("\ndef empty():\n    pass\n", filename="body.py")

    def test_unsupported_statement_names_file_and_line(self):
        src = "def f(a):\n    x = a + 1\n    with a:\n        pass\n    return x\n"
        with pytest.raises(FrontendError, match=r"k\.py:3: unsupported construct 'With'"):
            ingest_source(src, filename="k.py")

    def test_unsupported_expression_names_file_and_line(self):
        src = "def f(a):\n    return {1: a}\n"
        with pytest.raises(FrontendError, match=r"k\.py:2: unsupported expression"):
            ingest_source(src, filename="k.py")

    def test_unknown_hint_rejected(self):
        with pytest.raises(FrontendError, match="unknown kernel hint"):
            KernelHints.from_mapping({"boundz": 3})

    def test_kernel_decorator_keeps_function_callable(self):
        @kernel(bound=7)
        def plain(a, b):
            return a + b

        assert plain(2, 3) == 5
        assert plain.__repro_hints__.bound == 7

    def test_ingest_path_reads_static_decorator_hints(self, tmp_path):
        path = tmp_path / "fir.py"
        path.write_text(KERNEL_SRC)
        p = ingest_path(path)
        loop = next(c for c in p.root.children if isinstance(c, Loop))
        assert loop.bound == 16 and loop.avg_trip == 12.0
        cond = next(c for c in p.root.children if isinstance(c, IfElse))
        assert cond.taken_prob == 0.25

    def test_function_selection(self, tmp_path):
        src = "def a(x):\n    return x + 1\n\ndef b(x):\n    return x * 2\n"
        path = tmp_path / "two.py"
        path.write_text(src)
        assert ingest_path(path, function="b").name == "b"
        with pytest.raises(FrontendError, match="2 functions found"):
            ingest_path(path)
        with pytest.raises(FrontendError, match="no function named 'c'"):
            ingest_path(path, function="c")

    def test_fingerprint_is_content_addressed(self):
        src = "def f(a, b):\n    return a + b * 3\n"
        p1 = ingest_source(src, filename="one.py")
        p2 = ingest_source(src, filename="two.py", name="f")
        assert cache.program_fingerprint(p1) == cache.program_fingerprint(p2)


# ----------------------------------------------------------------------
# JSON / DOT importers
# ----------------------------------------------------------------------
def _demo_dfg(name: str = "demo") -> DataFlowGraph:
    dfg = DataFlowGraph(name=name)
    a = dfg.add_op(Opcode.CONST)
    b = dfg.add_op(Opcode.LOAD, [a])
    c = dfg.add_op(Opcode.MAC, [a, b], external_inputs=1)
    dfg.add_op(Opcode.STORE, [c, a])
    dfg.set_live_out(c)
    return dfg


class TestImporters:
    def test_json_roundtrip(self):
        dfg = _demo_dfg()
        back = dfg_from_dict(dfg_to_dict(dfg))
        assert cache.dfg_digest(back) == cache.dfg_digest(dfg)
        assert back.name == dfg.name

    def test_dot_roundtrip_is_exact_inverse(self):
        dfg = _demo_dfg()
        back = import_dot(dfg_to_dot(dfg))
        assert cache.dfg_digest(back) == cache.dfg_digest(dfg)
        assert back.name == dfg.name
        for n in dfg.nodes:
            assert back.preds(n) == dfg.preds(n)
            assert back.external_inputs(n) == dfg.external_inputs(n)
            assert back.is_live_out(n) == dfg.is_live_out(n)

    def test_dot_roundtrip_with_clusters(self):
        dfg = _demo_dfg()
        dot = dfg_to_dot(dfg, instructions=[[0, 2]])
        back = import_dot(dot)
        assert cache.dfg_digest(back) == cache.dfg_digest(dfg)

    @pytest.mark.parametrize(
        "name",
        ['quo"ted', "back\\slash", 'both\\"mixed\\\\"', "trailing\\"],
    )
    def test_dot_roundtrip_exotic_names(self, name):
        dfg = _demo_dfg(name)
        back = import_dot(dfg_to_dot(dfg))
        assert back.name == name
        assert cache.dfg_digest(back) == cache.dfg_digest(dfg)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(4, 24),
        name=st.text(
            st.characters(blacklist_categories=("Cs", "Cc")),
            min_size=1,
            max_size=12,
        ),
    )
    def test_dot_roundtrip_property(self, seed, n, name):
        dfg = random_small_dfg(seed, n=n)
        dfg.name = name
        back = import_dot(dfg_to_dot(dfg))
        assert back.name == name
        assert cache.dfg_digest(back) == cache.dfg_digest(dfg)

    def test_import_rejects_cycle(self):
        data = {
            "name": "cyc",
            "nodes": [
                {"id": 0, "op": "add", "preds": [1]},
                {"id": 1, "op": "add", "preds": [0]},
            ],
        }
        with pytest.raises(ReproError, match="cycle"):
            dfg_from_dict(data, relabel=True)

    def test_import_rejects_self_edge(self):
        data = {"name": "x", "nodes": [{"id": 0, "op": "add", "preds": [0]}]}
        with pytest.raises(ReproError, match="self-edge"):
            dfg_from_dict(data)

    def test_import_rejects_duplicate_ids(self):
        data = {
            "name": "dup",
            "nodes": [{"id": 0, "op": "add"}, {"id": 0, "op": "sub"}],
        }
        with pytest.raises(ReproError, match="duplicate node id 0"):
            dfg_from_dict(data)

    def test_import_rejects_non_dense_ids(self):
        data = {
            "name": "gap",
            "nodes": [{"id": 0, "op": "add"}, {"id": 2, "op": "sub"}],
        }
        with pytest.raises(ReproError, match="dense"):
            dfg_from_dict(data)

    def test_import_rejects_unknown_opcode(self):
        data = {"name": "bad", "nodes": [{"id": 0, "op": "frobnicate"}]}
        with pytest.raises(ReproError, match="unknown opcode 'frobnicate'"):
            dfg_from_dict(data)

    def test_import_rejects_missing_pred(self):
        data = {"name": "bad", "nodes": [{"id": 0, "op": "add", "preds": [7]}]}
        with pytest.raises(ReproError, match="predecessor 7 does not exist"):
            dfg_from_dict(data)

    def test_non_topological_needs_relabel(self):
        data = {
            "name": "rev",
            "nodes": [
                {"id": 0, "op": "add", "preds": [1]},
                {"id": 1, "op": "const", "preds": []},
            ],
        }
        with pytest.raises(ReproError, match="relabel"):
            dfg_from_dict(data)
        dfg = dfg_from_dict(data, relabel=True)
        assert dfg.op(0) is Opcode.CONST and dfg.op(1) is Opcode.ADD
        assert dfg.preds(1) == [0]

    def test_import_dot_rejects_garbage_line(self):
        text = 'digraph "g" {\n  n0 [label="0: add", shape=box];\n  what is this\n}\n'
        with pytest.raises(ReproError, match="DOT line 3"):
            import_dot(text)

    def test_import_dot_rejects_missing_header(self):
        with pytest.raises(ReproError, match="digraph"):
            import_dot("graph g {}\n")

    def test_import_dot_rejects_undeclared_edge_endpoint(self):
        text = 'digraph "g" {\n  n0 [label="0: add", shape=box];\n  n0 -> n5;\n}\n'
        with pytest.raises(ReproError, match="undeclared node n5"):
            import_dot(text)

    def test_program_roundtrip_preserves_fingerprint_and_structure(self):
        p = ingest_source(KERNEL_SRC, filename="fir.py")
        back = program_from_dict(program_to_dict(p))
        assert cache.program_fingerprint(back) == cache.program_fingerprint(p)
        assert back.name == p.name
        assert back.wcet() == p.wcet()
        assert back.avg_cycles() == pytest.approx(p.avg_cycles())

    def test_program_dict_rejects_bad_schema_and_kind(self):
        p = ingest_source("def f(a):\n    return a + 1\n")
        good = program_to_dict(p)
        with pytest.raises(ReproError, match="schema"):
            program_from_dict({**good, "schema": "other/v9"})
        with pytest.raises(ReproError, match="kind"):
            program_from_dict({**good, "kind": "task_set"})
        with pytest.raises(ReproError, match="construct type"):
            program_from_dict({**good, "root": {"type": "goto"}})


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_and_resolve_by_name(self):
        p = ingest_source("def reg_demo(a, b):\n    return a * b + 1\n")
        name = registry.register_program(p)
        assert name == "reg_demo"
        assert get_program("reg_demo") is p
        registry.unregister_program("reg_demo")
        with pytest.raises(WorkloadError, match="unknown benchmark"):
            get_program("reg_demo")

    def test_registered_name_shadows_builtin(self):
        p = ingest_source("def f(a):\n    return a + 1\n", name="crc32")
        registry.register_program(p, name="crc32")
        assert get_program("crc32") is p
        registry.clear_registry()
        assert get_program("crc32") is not p

    def test_path_like_names_resolve(self, tmp_path):
        p = ingest_source(KERNEL_SRC, filename="fir.py")
        artifact = tmp_path / "fir.json"
        from repro.io import save_json

        save_json(program_to_dict(p), artifact)
        loaded = get_program(str(artifact))
        assert cache.program_fingerprint(loaded) == cache.program_fingerprint(p)
        # .py sources ingest directly
        src_path = tmp_path / "fir_src.py"
        src_path.write_text(KERNEL_SRC)
        assert get_program(str(src_path)).name == "fir"
        # .dot graphs load as single-block programs
        dot_path = tmp_path / "block.dot"
        dot_path.write_text(dfg_to_dot(p.basic_blocks[0].dfg))
        assert len(get_program(str(dot_path)).basic_blocks) == 1

    def test_missing_path_is_workload_error(self):
        with pytest.raises(WorkloadError, match="does not exist"):
            get_program("no/such/file.json")

    def test_workload_dir_resolution(self, tmp_path, monkeypatch):
        p = ingest_source(KERNEL_SRC, filename="fir.py")
        from repro.io import save_json

        save_json(program_to_dict(p), tmp_path / "fir.json")
        monkeypatch.setenv(registry.ENV_WORKLOAD_DIR, str(tmp_path))
        assert get_program("fir").name == "fir"

    def test_file_cache_invalidates_on_change(self, tmp_path):
        from repro.io import save_json

        p1 = ingest_source("def f(a):\n    return a + 1\n", name="v")
        p2 = ingest_source("def f(a):\n    return a * 2 + 1\n", name="v")
        path = tmp_path / "v.json"
        save_json(program_to_dict(p1), path)
        first = get_program(str(path))
        save_json(program_to_dict(p2), path)
        second = get_program(str(path))
        assert cache.program_fingerprint(first) != cache.program_fingerprint(
            second
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestIngestCli:
    def test_ingest_py_to_artifact_and_dot(self, tmp_path, capsys):
        src = tmp_path / "fir.py"
        src.write_text(KERNEL_SRC)
        out = tmp_path / "fir.json"
        dot = tmp_path / "fir.dot"
        code = main(
            ["ingest", str(src), "--output", str(out), "--dot", str(dot)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "fingerprint" in stdout
        data = json.loads(out.read_text())
        assert data["kind"] == "program" and data["schema"] == "repro/v1"
        assert import_dot(dot.read_text())  # the render parses back

    def test_ingest_register_then_pipelines_resolve(
        self, tmp_path, monkeypatch, capsys
    ):
        src = tmp_path / "fir.py"
        src.write_text(KERNEL_SRC)
        wl = tmp_path / "wl"
        code = main(
            ["ingest", str(src), "--output", str(tmp_path / "a.json"),
             "--register", str(wl)]
        )
        assert code == 0
        monkeypatch.setenv(registry.ENV_WORKLOAD_DIR, str(wl))
        assert main(["--no-cache", "curve", "fir"]) == 0
        assert "configuration curve for fir" in capsys.readouterr().out

    def test_ingest_hints_override(self, tmp_path, capsys):
        src = tmp_path / "k.py"
        src.write_text("def f(a, n):\n    for i in range(n):\n        a = a + i\n    return a\n")
        out = tmp_path / "k.json"
        assert main(
            ["ingest", str(src), "--output", str(out),
             "--hints", '{"bounds": {"i": 2}}']
        ) == 0
        capsys.readouterr()
        program = program_from_dict(json.loads(out.read_text()))
        loop = next(c for c in program.root.children if isinstance(c, Loop))
        assert loop.bound == 2

    def test_ingest_unsupported_construct_exit_2(self, tmp_path, capsys):
        src = tmp_path / "bad.py"
        src.write_text("def f(a):\n    with a:\n        pass\n    return a\n")
        assert main(["ingest", str(src)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "bad.py:2" in err

    def test_ingest_cyclic_json_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "cyc.json"
        bad.write_text(json.dumps({
            "schema": "repro/v1", "kind": "dfg", "name": "cyc",
            "nodes": [
                {"id": 0, "op": "add", "preds": [1]},
                {"id": 1, "op": "add", "preds": [0]},
            ],
        }))
        assert main(["ingest", str(bad), "--relabel"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "cycle" in err

    def test_ingest_wrong_kind_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "ts.json"
        bad.write_text(json.dumps({"schema": "repro/v1", "kind": "task_set"}))
        assert main(["ingest", str(bad)]) == 2
        assert "not ingestible" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Service job kinds on ingested workloads
# ----------------------------------------------------------------------
class TestServiceJobs:
    def test_identify_and_curve_on_ingested_path(self, tmp_path):
        from repro.io import save_json
        from repro.service.jobs import compute_job, resolve_job

        p = ingest_source(KERNEL_SRC, filename="fir.py")
        path = tmp_path / "fir.json"
        save_json(program_to_dict(p), path)

        key1, params = resolve_job("identify", {"benchmark": str(path)})
        key2, _ = resolve_job("identify", {"benchmark": "crc32"})
        assert key1 != key2
        result = compute_job("identify", params)
        assert result["n_candidates"] > 0

        _, cparams = resolve_job("curve", {"benchmark": str(path)})
        curve = compute_job("curve", cparams)
        assert len(curve["configurations"]) >= 2

    def test_identify_key_is_content_addressed(self, tmp_path):
        from repro.io import save_json
        from repro.service.jobs import resolve_job

        p = ingest_source(KERNEL_SRC, filename="fir.py")
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_json(program_to_dict(p), a)
        save_json(program_to_dict(p), b)
        key_a, _ = resolve_job("identify", {"benchmark": str(a)})
        key_b, _ = resolve_job("identify", {"benchmark": str(b)})
        assert key_a == key_b  # same content, different paths -> same job

    def test_reconfig_from_benchmarks(self):
        from repro.service.jobs import compute_job, resolve_job

        p = ingest_source(
            "def tiny(a, b):\n"
            "    for i in range(4):\n"
            "        a = a + b * i\n"
            "    return a\n"
        )
        registry.register_program(p, name="tiny_loop")
        key, params = resolve_job(
            "reconfig", {"benchmarks": ["tiny_loop"], "max_versions": 3}
        )
        result = compute_job("reconfig", params)
        assert "gain" in result and "selection" in result

    def test_reconfig_rejects_loops_and_benchmarks(self):
        from repro.service.jobs import resolve_job

        with pytest.raises(ReproError, match="either"):
            resolve_job(
                "reconfig",
                {"benchmarks": ["crc32"], "loops": {"schema": "repro/v1"}},
            )
