"""Tests for the extension modules: disconnected candidates, ISEGEN,
reconfiguration variants, and MPSoC customization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import (
    components_independent,
    enumerate_connected,
    pair_disconnected,
)
from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import Opcode
from repro.mlgp import isegen_selection, iterative_selection
from repro.reconfig import (
    iterative_partition,
    iterative_partition_partial,
    partial_net_gain,
    temporal_only_partition,
)
from repro.workloads.loops import synthetic_loops, synthetic_trace
from tests.conftest import random_small_dfg


class TestDisconnected:
    def _two_islands(self) -> DataFlowGraph:
        """Two independent 2-op chains; the union needs 4 inputs total."""
        dfg = DataFlowGraph("islands")
        a0 = dfg.add_op(Opcode.NOT)  # 1 external input
        a1 = dfg.add_op(Opcode.MUL, preds=[a0])  # 1 external input
        b0 = dfg.add_op(Opcode.NOT)  # 1 external input
        b1 = dfg.add_op(Opcode.SHL, preds=[b0])  # 1 external input
        return dfg

    def test_independent_components_detected(self):
        dfg = self._two_islands()
        assert components_independent(dfg, frozenset({0, 1}), frozenset({2, 3}))

    def test_dependent_components_rejected(self, diamond_dfg):
        # {0} feeds {3} through {1,2}: not independent.
        assert not components_independent(
            diamond_dfg, frozenset({0}), frozenset({3})
        )

    def test_overlapping_components_rejected(self, diamond_dfg):
        assert not components_independent(
            diamond_dfg, frozenset({0, 1}), frozenset({1, 2})
        )

    def test_pairing_respects_io(self):
        dfg = self._two_islands()
        connected = [frozenset({0, 1}), frozenset({2, 3})]
        # Union needs 4 inputs and 2 outputs: allowed at (4, 2).
        pairs = pair_disconnected(dfg, connected, max_inputs=4, max_outputs=2)
        assert frozenset({0, 1, 2, 3}) in pairs
        # Tighter input budget rejects the union.
        assert pair_disconnected(dfg, connected, max_inputs=3, max_outputs=2) == []

    def test_parallel_hw_latency_beats_sequential(self):
        """The whole point: a disconnected pair's critical path is the max
        of the components, not the sum."""
        from repro.isa.costmodel import DEFAULT_COST_MODEL as m

        dfg = self._two_islands()
        union = sorted({0, 1, 2, 3})
        preds = {n: [p for p in dfg.preds(n) if p in union] for n in union}
        ops = {n: dfg.op(n) for n in union}
        delay = m.critical_path_delay(union, preds, ops)
        a_delay = m.critical_path_delay([0, 1], {0: [], 1: [0]}, ops)
        assert delay == pytest.approx(max(a_delay, 0.05 + 0.25))

    @given(st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_pairs_are_feasible(self, seed):
        dfg = random_small_dfg(seed, 14)
        connected = enumerate_connected(dfg, 4, 2, max_size=5)
        for union in pair_disconnected(dfg, connected[:20], 4, 2, max_pairs=50):
            io = dfg.io_count(union)
            assert io.inputs <= 4 and io.outputs <= 2
            assert dfg.is_convex(union)


class TestIsegen:
    def test_cuts_disjoint_feasible_profitable(self):
        dfg = random_small_dfg(41, 25)
        steps = isegen_selection(dfg, max_iterations=6)
        seen: set[int] = set()
        for s in steps:
            assert not (s.nodes & seen)
            seen |= s.nodes
            assert dfg.is_feasible(s.nodes, 4, 2)
            assert s.gain > 0

    def test_comparable_to_is_on_small_blocks(self):
        """ISEGEN should reach a meaningful fraction of IS's total gain."""
        dfg = random_small_dfg(42, 20)
        is_gain = sum(s.gain for s in iterative_selection(dfg, max_iterations=8))
        isegen_gain = sum(s.gain for s in isegen_selection(dfg, max_iterations=8))
        if is_gain > 0:
            assert isegen_gain >= 0.4 * is_gain

    def test_max_iterations_respected(self):
        dfg = random_small_dfg(43, 30)
        assert len(isegen_selection(dfg, max_iterations=2)) <= 2

    def test_runs_on_large_block_quickly(self):
        import time

        dfg = random_small_dfg(44, 300)
        t0 = time.perf_counter()
        steps = isegen_selection(dfg, max_iterations=10, time_budget=20.0)
        assert time.perf_counter() - t0 < 25.0
        assert steps  # finds something on a large block


class TestTemporalOnly:
    def test_single_loop_per_configuration(self):
        loops = synthetic_loops(8, seed=3)
        trace = synthetic_trace(8, seed=3)
        sol = temporal_only_partition(loops, trace, 150.0, 400.0)
        hw = sol.partition.hardware_loops()
        configs = [sol.partition.config_of[i] for i in hw]
        assert len(configs) == len(set(configs))

    def test_never_beats_spatial_sharing(self):
        """Temporal+spatial reconfiguration dominates temporal-only (it can
        always emulate it)."""
        for seed in (1, 2, 5):
            loops = synthetic_loops(8, seed=seed)
            trace = synthetic_trace(8, seed=seed)
            spatial = iterative_partition(loops, trace, 150.0, 400.0)
            temporal = temporal_only_partition(loops, trace, 150.0, 400.0)
            assert spatial.gain >= temporal.gain - 1e-9

    def test_high_rho_forces_software(self):
        loops = synthetic_loops(6, seed=9)
        trace = synthetic_trace(6, seed=9)
        sol = temporal_only_partition(loops, trace, 150.0, rho=1e9)
        # At most one loop can stay in hardware (no transitions = no cost).
        assert len(sol.partition.hardware_loops()) <= 1


class TestPartialReconfig:
    def test_partial_cost_scales_with_loaded_area(self):
        loops = synthetic_loops(5, seed=4)
        trace = synthetic_trace(5, seed=4)
        sol = iterative_partition(loops, trace, 150.0, 400.0)
        g_small = partial_net_gain(loops, sol.partition, trace, 0.1)
        g_large = partial_net_gain(loops, sol.partition, trace, 10.0)
        assert g_small >= g_large

    def test_zero_unit_cost_equals_raw_gain(self):
        loops = synthetic_loops(5, seed=6)
        trace = synthetic_trace(5, seed=6)
        sol = iterative_partition(loops, trace, 150.0, 0.0)
        raw = sum(
            loops[i].versions[j].gain
            for i, j in enumerate(sol.partition.selection)
        )
        assert partial_net_gain(loops, sol.partition, trace, 0.0) == pytest.approx(raw)

    def test_partial_beats_constant_cost_model(self):
        """Partial reconfiguration pays area-proportional costs, which can
        only help relative to full-fabric reloads at the same unit price."""
        loops = synthetic_loops(8, seed=7)
        trace = synthetic_trace(8, seed=7)
        max_area, unit = 150.0, 3.0
        full = iterative_partition(loops, trace, max_area, unit * max_area)
        _sol, partial_gain = iterative_partition_partial(
            loops, trace, max_area, unit
        )
        assert partial_gain >= full.gain - 1e-9


class TestMpsoc:
    def _tasks(self):
        from repro.rtsched import PeriodicTask
        from repro.selection.config_curve import TaskConfiguration

        def t(name, period, configs):
            return PeriodicTask(
                name=name,
                period=period,
                wcet=configs[0][1],
                configurations=tuple(
                    TaskConfiguration(a, c) for a, c in configs
                ),
            )

        return [
            t("a", 10, [(0, 6), (4, 3)]),
            t("b", 10, [(0, 6), (4, 3)]),
            t("c", 20, [(0, 8), (6, 4)]),
            t("d", 20, [(0, 8), (6, 4)]),
        ]

    def test_worst_fit_balances(self):
        from repro.core import partition_tasks_worst_fit

        bins = partition_tasks_worst_fit(self._tasks(), 2)
        loads = [sum(t.utilization for t in b) for b in bins]
        assert abs(loads[0] - loads[1]) < 0.2 + 1e-9

    def test_customization_lowers_max_utilization(self):
        from repro.core import customize_mpsoc

        tasks = self._tasks()
        zero = customize_mpsoc(tasks, 2, total_area=0.0)
        full = customize_mpsoc(tasks, 2, total_area=20.0)
        assert full.max_utilization < zero.max_utilization

    def test_budgets_within_total(self):
        from repro.core import customize_mpsoc

        res = customize_mpsoc(self._tasks(), 2, total_area=10.0)
        assert sum(res.budgets) <= 10.0 + 1e-9

    def test_single_processor_equals_chapter3(self):
        from repro.core import customize_mpsoc, select_edf
        from repro.rtsched import TaskSet

        tasks = self._tasks()
        res = customize_mpsoc(tasks, 1, total_area=20.0)
        direct = select_edf(TaskSet(tasks), 20.0)
        assert res.max_utilization == pytest.approx(direct.utilization)

    def test_more_processors_never_worse(self):
        from repro.core import customize_mpsoc

        tasks = self._tasks()
        one = customize_mpsoc(tasks, 1, total_area=12.0)
        two = customize_mpsoc(tasks, 2, total_area=12.0)
        assert two.max_utilization <= one.max_utilization + 1e-9
