"""Tests for MLGP custom-instruction generation and the iterative flow."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.program import Loop, Program, Seq
from repro.mlgp import (
    iterative_customization,
    iterative_selection,
    mlgp_partition,
    mlgp_program_profile,
)
from tests.conftest import random_small_dfg


class TestMlgpPartition:
    def test_partitions_disjoint_and_feasible(self):
        dfg = random_small_dfg(3, 20)
        region = dfg.regions()[0]
        res = mlgp_partition(dfg, region)
        seen: set[int] = set()
        for part in res.partitions:
            assert not (part & seen)
            seen |= part
            assert dfg.is_feasible(part, 4, 2)

    def test_partitions_within_region(self):
        dfg = random_small_dfg(5, 18)
        region = dfg.regions()[0]
        res = mlgp_partition(dfg, region)
        region_set = set(region)
        for part in res.partitions:
            assert part <= region_set

    @given(st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_gains_match_cost_model(self, seed):
        from repro.isa.costmodel import DEFAULT_COST_MODEL

        dfg = random_small_dfg(seed, 15)
        regions = dfg.regions()
        if not regions or len(regions[0]) < 2:
            return
        res = mlgp_partition(dfg, regions[0])
        for part, gain in zip(res.partitions, res.gains):
            nodes = sorted(part)
            preds = {n: [p for p in dfg.preds(n) if p in part] for n in nodes}
            ops = {n: dfg.op(n) for n in nodes}
            cost = DEFAULT_COST_MODEL.subgraph_cost(nodes, preds, ops)
            expected = float(cost.gain) if len(part) > 1 else 0.0
            assert gain == pytest.approx(max(0.0, expected)) or gain == pytest.approx(expected)

    def test_deterministic_for_seed(self):
        dfg = random_small_dfg(9, 25)
        region = dfg.regions()[0]
        a = mlgp_partition(dfg, region, seed=5)
        b = mlgp_partition(dfg, region, seed=5)
        assert a.partitions == b.partitions

    def test_respects_io_constraints(self):
        dfg = random_small_dfg(13, 22)
        region = dfg.regions()[0]
        res = mlgp_partition(dfg, region, max_inputs=2, max_outputs=1)
        for part in res.partitions:
            io = dfg.io_count(part)
            assert io.inputs <= 2
            assert io.outputs <= 1

    def test_custom_instructions_positive_gain(self):
        dfg = random_small_dfg(17, 30)
        region = dfg.regions()[0]
        res = mlgp_partition(dfg, region)
        for ci in res.custom_instructions():
            idx = list(res.partitions).index(ci)
            assert res.gains[idx] > 0


class TestIterativeSelection:
    def test_cis_disjoint(self):
        dfg = random_small_dfg(21, 25)
        steps = iterative_selection(dfg, max_iterations=5)
        seen: set[int] = set()
        for s in steps:
            assert not (s.nodes & seen)
            seen |= s.nodes

    def test_cis_feasible_with_positive_gain(self):
        dfg = random_small_dfg(22, 25)
        steps = iterative_selection(dfg, max_iterations=5)
        for s in steps:
            assert dfg.is_feasible(s.nodes, 4, 2)
            assert s.gain > 0

    def test_first_instruction_is_best(self):
        """IS commits the maximum-gain single cut first."""
        dfg = random_small_dfg(23, 14)
        steps = iterative_selection(dfg, max_iterations=3)
        if len(steps) >= 2:
            assert steps[0].gain >= steps[1].gain - 1e-9

    def test_max_iterations(self):
        dfg = random_small_dfg(24, 30)
        steps = iterative_selection(dfg, max_iterations=2)
        assert len(steps) <= 2

    def test_elapsed_monotone(self):
        dfg = random_small_dfg(25, 25)
        steps = iterative_selection(dfg, max_iterations=4)
        times = [s.elapsed for s in steps]
        assert times == sorted(times)


class TestIterativeFlow:
    def _programs(self):
        from tests.conftest import random_small_dfg
        from repro.graphs.program import Block

        def prog(name, seed):
            kern = Block(random_small_dfg(seed, 30))
            return Program(name, Seq([Loop(kern, bound=100)]))

        return [prog("a", 31), prog("b", 32)]

    def test_utilization_decreases(self):
        programs = self._programs()
        wcets = [p.wcet() for p in programs]
        periods = [w * 2 / 1.3 for w in wcets]  # software U = 1.3
        res = iterative_customization(programs, periods, u_target=1.0)
        u_before = sum(w / p for w, p in zip(wcets, periods))
        assert res.utilization < u_before
        utils = [r.utilization for r in res.records]
        assert utils == sorted(utils, reverse=True)

    def test_stops_at_target(self):
        programs = self._programs()
        wcets = [p.wcet() for p in programs]
        periods = [w * 2 / 1.05 for w in wcets]
        res = iterative_customization(programs, periods, u_target=1.0)
        if res.met_target:
            # No more iterations after the target is reached.
            assert res.records[-1].utilization <= 1.0 + 1e-9

    def test_total_area_shares_isomorphic(self):
        programs = self._programs()
        wcets = [p.wcet() for p in programs]
        periods = [w * 2 / 1.4 for w in wcets]
        res = iterative_customization(programs, periods, u_target=0.5)
        naive = sum(ci.area for ci in res.custom_instructions)
        assert res.total_area <= naive + 1e-9


class TestProgramProfile:
    def test_speedup_monotone_nondecreasing(self, tiny_program):
        steps = mlgp_program_profile(tiny_program)
        speedups = [s.speedup for s in steps]
        assert speedups == sorted(speedups)
        assert all(s.speedup >= 1.0 for s in steps)

    def test_area_accumulates(self, tiny_program):
        steps = mlgp_program_profile(tiny_program)
        areas = [s.area for s in steps]
        assert areas == sorted(areas)


class TestFlowKnobs:
    def _programs(self):
        from repro.graphs.program import Block, Loop, Program, Seq

        def prog(name, seed):
            kern = Block(random_small_dfg(seed, 30))
            return Program(name, Seq([Loop(kern, bound=100)]))

        return [prog("a", 61), prog("b", 62)]

    def test_max_iterations_cap(self):
        programs = self._programs()
        wcets = [p.wcet() for p in programs]
        periods = [w * 2 / 1.5 for w in wcets]
        res = iterative_customization(
            programs, periods, u_target=0.1, max_iterations=2
        )
        assert len(res.records) <= 2

    def test_unreachable_target_exhausts_tasks(self):
        """An impossible target deactivates every task and terminates."""
        programs = self._programs()
        wcets = [p.wcet() for p in programs]
        periods = [w * 2 / 1.5 for w in wcets]
        res = iterative_customization(programs, periods, u_target=0.0001)
        assert not res.met_target
        assert res.utilization > 0

    def test_coverage_parameter(self):
        programs = self._programs()
        wcets = [p.wcet() for p in programs]
        periods = [w * 2 / 1.3 for w in wcets]
        full = iterative_customization(
            programs, periods, u_target=0.5, path_weight_coverage=1.0
        )
        assert full.custom_instructions

    def test_profile_time_budget(self, tiny_program):
        steps = mlgp_program_profile(tiny_program, time_budget=0.0)
        assert steps == []


class TestIsegenVsMlgp:
    def test_both_generate_feasible_cis_on_same_block(self):
        from repro.mlgp import isegen_selection

        dfg = random_small_dfg(71, 40)
        region_nodes = set(dfg.regions()[0])
        mlgp_res = mlgp_partition(dfg, sorted(region_nodes))
        isegen_res = isegen_selection(dfg, max_iterations=10)
        assert mlgp_res.total_gain >= 0
        for step in isegen_res:
            assert dfg.is_feasible(step.nodes, 4, 2)
