"""Robustness tests for :func:`repro.parallel.parallel_map`.

The process pool is infrastructure, not a correctness dependency: worker
crashes, timeouts and forbidden pools must all degrade to serial execution
with the same results — never a lost batch, never a wrong result.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro import obs, parallel
from repro.parallel import parallel_map

#: The chaos CI job runs the suite with process pools forbidden; tests that
#: assert on pool-degradation behaviour need a real pool to degrade from.
needs_pool = pytest.mark.skipif(
    bool(os.environ.get("REPRO_NO_PROCESS_POOL")),
    reason="process pools disabled via REPRO_NO_PROCESS_POOL",
)


def _square(x: int) -> int:
    return x * x


def _crash_in_worker(x: int) -> int:
    """Dies hard in a pool worker; computes normally in the parent."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return x + 100


def _slow_in_worker(x: int) -> int:
    """Stalls in a pool worker; returns instantly in the parent."""
    if multiprocessing.parent_process() is not None:
        time.sleep(30.0)
    return x * 2


def _slow_everywhere(x: int) -> int:
    """Stalls in a pool worker and is slow enough in the parent that a
    serial retry cannot finish inside an already-exhausted budget."""
    if multiprocessing.parent_process() is not None:
        time.sleep(30.0)
    time.sleep(0.05)
    return x * 2


def _raise_value_error(x: int) -> int:
    raise ValueError(f"job {x} is bad")


@pytest.fixture(autouse=True)
def _rearm_warning():
    parallel._reset_warning()
    yield
    parallel._reset_warning()


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the host has CPUs to spare: single-core hosts skip the
    pool by design, so tests exercising pool behaviour must fake the
    core count (pool *creation* works fine on one core)."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)


class TestHappyPaths:
    def test_serial_when_workers_none(self):
        assert parallel_map(_square, [1, 2, 3], workers=None) == [1, 4, 9]

    def test_serial_single_job(self):
        assert parallel_map(_square, [5], workers=8) == [25]

    def test_parallel_matches_serial(self, multicore):
        jobs = list(range(6))
        assert parallel_map(_square, jobs, workers=2) == [
            _square(j) for j in jobs
        ]


class TestDegradedPaths:
    @needs_pool
    def test_worker_crash_retries_serially(self, multicore, caplog):
        with caplog.at_level("WARNING", logger="repro.parallel"):
            out = parallel_map(
                _crash_in_worker, [1, 2, 3, 4], workers=2, label="crashers"
            )
        assert out == [101, 102, 103, 104]
        assert any("crashers" in r.message for r in caplog.records)
        assert any("BrokenProcessPool" in r.message for r in caplog.records)

    @needs_pool
    def test_crash_warning_is_one_shot(self, multicore, caplog):
        with caplog.at_level("WARNING", logger="repro.parallel"):
            parallel_map(_crash_in_worker, [1, 2], workers=2)
            parallel_map(_crash_in_worker, [3, 4], workers=2)
        assert len(caplog.records) == 1

    @needs_pool
    def test_crash_warning_rearmed_by_obs_reset(self, multicore, caplog):
        with caplog.at_level("WARNING", logger="repro.parallel"):
            parallel_map(_crash_in_worker, [1, 2], workers=2)
            obs.reset()
            parallel_map(_crash_in_worker, [3, 4], workers=2)
        assert len(caplog.records) == 2

    @needs_pool
    def test_timeout_is_hard_deadline(self, multicore, caplog):
        """An exhausted budget raises instead of silently running serially."""
        before = obs.metrics_snapshot()["counters"]
        start = time.monotonic()
        with caplog.at_level("WARNING", logger="repro.parallel"):
            with pytest.raises(TimeoutError, match="sleepers"):
                parallel_map(
                    _slow_everywhere, list(range(1, 9)), workers=2,
                    timeout=0.3, label="sleepers",
                )
        assert time.monotonic() - start < 25.0  # never waited on the pool
        assert any("timeout" in r.message.lower() for r in caplog.records)
        after = obs.metrics_snapshot()["counters"]
        assert after.get("parallel.timeouts", 0) > before.get(
            "parallel.timeouts", 0
        )
        assert after.get("parallel.retry_deadline_exceeded", 0) > before.get(
            "parallel.retry_deadline_exceeded", 0
        )

    def test_generous_timeout_completes(self, multicore):
        """A budget that is not exhausted behaves like no timeout at all."""
        out = parallel_map(_square, [1, 2, 3], workers=2, timeout=60.0)
        assert out == [1, 4, 9]

    def test_serial_timeout_budget_is_enforced(self):
        """The deadline also bounds pure-serial maps (workers=None)."""
        with pytest.raises(TimeoutError, match="unfinished"):
            parallel_map(
                _slow_everywhere, list(range(8)), workers=None, timeout=0.12,
                label="serial sleepers",
            )

    def test_single_core_host_skips_pool_silently(self, monkeypatch, caplog):
        """With one CPU there is no parallelism to gain: no pool is
        spun up and no degradation warning fires — serial-by-design is
        not a degradation."""
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        before = obs.metrics_snapshot()["counters"]
        with caplog.at_level("WARNING", logger="repro.parallel"):
            # _crash_in_worker would break any pool; serial results prove
            # no pool was ever created.
            out = parallel_map(_crash_in_worker, [1, 2, 3], workers=4)
        assert out == [101, 102, 103]
        assert not caplog.records
        after = obs.metrics_snapshot()["counters"]
        assert after.get("parallel.pool_failures", 0) == before.get(
            "parallel.pool_failures", 0
        )

    def test_cpu_count_none_treated_as_single_core(self, monkeypatch):
        """``os.cpu_count()`` may return None; treat it as one core."""
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert parallel_map(_crash_in_worker, [1, 2], workers=4) == [101, 102]

    def test_workers_one_skips_pool_silently(self, caplog):
        with caplog.at_level("WARNING", logger="repro.parallel"):
            out = parallel_map(_crash_in_worker, [1, 2, 3], workers=1)
        assert out == [101, 102, 103]
        assert not caplog.records

    def test_env_kill_switch_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PROCESS_POOL", "1")
        # _crash_in_worker would break any pool; serial execution proves
        # no pool was ever created.
        assert parallel_map(_crash_in_worker, [1, 2, 3], workers=4) == [
            101, 102, 103,
        ]


class TestErrorPropagation:
    def test_fn_exception_propagates_serially(self):
        with pytest.raises(ValueError, match="job 1 is bad"):
            parallel_map(_raise_value_error, [1, 2], workers=None)

    def test_fn_exception_propagates_from_pool(self, multicore):
        with pytest.raises(ValueError, match="is bad"):
            parallel_map(_raise_value_error, [1, 2, 3], workers=2)
