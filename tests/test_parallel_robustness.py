"""Robustness tests for :func:`repro.parallel.parallel_map`.

The process pool is infrastructure, not a correctness dependency: worker
crashes, timeouts and forbidden pools must all degrade to serial execution
with the same results — never a lost batch, never a wrong result.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro import parallel
from repro.parallel import parallel_map


def _square(x: int) -> int:
    return x * x


def _crash_in_worker(x: int) -> int:
    """Dies hard in a pool worker; computes normally in the parent."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return x + 100


def _slow_in_worker(x: int) -> int:
    """Stalls in a pool worker; returns instantly in the parent."""
    if multiprocessing.parent_process() is not None:
        time.sleep(30.0)
    return x * 2


def _raise_value_error(x: int) -> int:
    raise ValueError(f"job {x} is bad")


@pytest.fixture(autouse=True)
def _rearm_warning():
    parallel._reset_warning()
    yield
    parallel._reset_warning()


class TestHappyPaths:
    def test_serial_when_workers_none(self):
        assert parallel_map(_square, [1, 2, 3], workers=None) == [1, 4, 9]

    def test_serial_single_job(self):
        assert parallel_map(_square, [5], workers=8) == [25]

    def test_parallel_matches_serial(self):
        jobs = list(range(6))
        assert parallel_map(_square, jobs, workers=2) == [
            _square(j) for j in jobs
        ]


class TestDegradedPaths:
    def test_worker_crash_retries_serially(self, caplog):
        with caplog.at_level("WARNING", logger="repro.parallel"):
            out = parallel_map(
                _crash_in_worker, [1, 2, 3, 4], workers=2, label="crashers"
            )
        assert out == [101, 102, 103, 104]
        assert any("crashers" in r.message for r in caplog.records)
        assert any("BrokenProcessPool" in r.message for r in caplog.records)

    def test_crash_warning_is_one_shot(self, caplog):
        with caplog.at_level("WARNING", logger="repro.parallel"):
            parallel_map(_crash_in_worker, [1, 2], workers=2)
            parallel_map(_crash_in_worker, [3, 4], workers=2)
        assert len(caplog.records) == 1

    def test_timeout_degrades_to_serial(self, caplog):
        start = time.monotonic()
        with caplog.at_level("WARNING", logger="repro.parallel"):
            out = parallel_map(
                _slow_in_worker, [1, 2, 3], workers=2, timeout=0.5,
                label="sleepers",
            )
        assert out == [2, 4, 6]
        assert time.monotonic() - start < 25.0  # never waited on the pool
        assert any("timeout" in r.message.lower() for r in caplog.records)

    def test_env_kill_switch_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PROCESS_POOL", "1")
        # _crash_in_worker would break any pool; serial execution proves
        # no pool was ever created.
        assert parallel_map(_crash_in_worker, [1, 2, 3], workers=4) == [
            101, 102, 103,
        ]


class TestErrorPropagation:
    def test_fn_exception_propagates_serially(self):
        with pytest.raises(ValueError, match="job 1 is bad"):
            parallel_map(_raise_value_error, [1, 2], workers=None)

    def test_fn_exception_propagates_from_pool(self):
        with pytest.raises(ValueError, match="is bad"):
            parallel_map(_raise_value_error, [1, 2, 3], workers=2)
