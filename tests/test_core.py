"""Tests for the Chapter 3 selection algorithms (EDF DP, RMS B&B)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import select_edf, select_rms
from repro.errors import ScheduleError
from repro.rtsched import PeriodicTask, TaskSet, rms_schedulable, simulate_taskset
from repro.selection.config_curve import TaskConfiguration


def _task(name, period, configs):
    """configs: list of (area, cycles); first must be (0, wcet)."""
    return PeriodicTask(
        name=name,
        period=period,
        wcet=configs[0][1],
        configurations=tuple(TaskConfiguration(a, c) for a, c in configs),
    )


def motivating_example() -> TaskSet:
    """Thesis Figure 3.2: three tasks, area budget 10, optimal U = 1.0."""
    return TaskSet(
        [
            _task("T1", 6, [(0, 2), (7, 1)]),
            _task("T2", 8, [(0, 3), (6, 2)]),
            _task("T3", 12, [(0, 6), (4, 5)]),
        ]
    )


def _random_taskset(seed: int, n_tasks: int = 3, n_cfg: int = 4):
    rng = random.Random(seed)
    tasks = []
    for i in range(n_tasks):
        wcet = rng.randint(4, 20)
        period = wcet * rng.uniform(1.2, 4.0)
        configs = [(0.0, float(wcet))]
        area, cycles = 0.0, float(wcet)
        for _ in range(rng.randint(0, n_cfg - 1)):
            area += rng.randint(1, 8)
            cycles = max(1.0, cycles - rng.randint(1, 4))
            configs.append((area, cycles))
        tasks.append(_task(f"t{i}", period, configs))
    budget = float(rng.randint(0, 30))
    return TaskSet(tasks), budget


def _brute_force_edf(ts: TaskSet, budget: float):
    best = float("inf")
    for assign in itertools.product(*[range(t.n_configurations) for t in ts]):
        if ts.area_for(assign) <= budget + 1e-9:
            best = min(best, ts.utilization_for(assign))
    return best


class TestEdfSelect:
    def test_motivating_example_schedulable(self):
        ts = motivating_example()
        sel = select_edf(ts, 10.0)
        assert sel.utilization == pytest.approx(1.0)
        assert sel.assignment == (0, 1, 1)
        assert sel.schedulable

    def test_motivating_example_tight_budget_fails(self):
        ts = motivating_example()
        # Budget 3 fits nothing: utilization stays 29/24.
        sel = select_edf(ts, 3.0)
        assert sel.assignment == (0, 0, 0)
        assert not sel.schedulable

    @given(st.integers(0, 300))
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce(self, seed):
        ts, budget = _random_taskset(seed)
        expected = _brute_force_edf(ts, budget)
        sel = select_edf(ts, budget, scale=1)  # integer areas: exact
        assert sel.utilization == pytest.approx(expected)

    def test_budget_respected(self):
        ts, budget = _random_taskset(5, n_tasks=5)
        sel = select_edf(ts, budget, scale=1)
        assert sel.area <= budget + 1e-9

    def test_negative_budget_rejected(self):
        with pytest.raises(ScheduleError):
            select_edf(motivating_example(), -1.0)

    def test_zero_budget_gives_software(self):
        ts = motivating_example()
        sel = select_edf(ts, 0.0)
        assert sel.assignment == (0, 0, 0)

    def test_monotone_in_budget(self):
        ts = motivating_example()
        utils = [select_edf(ts, b).utilization for b in (0, 4, 6, 10, 17)]
        assert utils == sorted(utils, reverse=True)

    def test_edf_solution_validated_by_simulation(self):
        ts = motivating_example()
        sel = select_edf(ts, 10.0)
        sim = simulate_taskset(ts, sel.assignment, policy="edf")
        assert sim.schedulable


def _brute_force_rms(ts: TaskSet, budget: float):
    best_u, best_assign = float("inf"), None
    for assign in itertools.product(*[range(t.n_configurations) for t in ts]):
        if ts.area_for(assign) > budget + 1e-9:
            continue
        if not rms_schedulable(ts, assign):
            continue
        u = ts.utilization_for(assign)
        if u < best_u - 1e-12:
            best_u, best_assign = u, assign
    return best_u, best_assign


class TestRmsSelect:
    def test_motivating_example(self):
        ts = motivating_example()
        sel = select_rms(ts, 10.0)
        # The same configuration is also RMS-schedulable here (harmonic-ish
        # periods 6, 8, 12 with U = 1 fails RMS; check via brute force).
        expected_u, expected_assign = _brute_force_rms(ts, 10.0)
        assert sel.utilization == pytest.approx(expected_u) or (
            sel.assignment is None and expected_assign is None
        )

    @given(st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, seed):
        ts, budget = _random_taskset(seed)
        expected_u, expected_assign = _brute_force_rms(ts, budget)
        sel = select_rms(ts, budget)
        if expected_assign is None:
            assert sel.assignment is None
        else:
            assert sel.assignment is not None
            assert sel.utilization == pytest.approx(expected_u)

    def test_solution_is_rms_schedulable(self):
        ts, budget = _random_taskset(11, n_tasks=4)
        sel = select_rms(ts, budget)
        if sel.assignment is not None:
            assert rms_schedulable(ts, sel.assignment)
            sim = simulate_taskset(ts, sel.assignment, policy="rm")
            assert sim.schedulable

    def test_unschedulable_reports_none(self):
        ts = TaskSet([_task("t", 4, [(0, 5)])])  # U > 1 with no options
        sel = select_rms(ts, 100.0)
        assert sel.assignment is None
        assert not sel.schedulable

    def test_area_budget_respected(self):
        ts, budget = _random_taskset(23, n_tasks=4)
        sel = select_rms(ts, budget)
        if sel.assignment is not None:
            assert sel.area <= budget + 1e-9


class TestEdfVsRms:
    @given(st.integers(0, 150))
    @settings(max_examples=30, deadline=None)
    def test_edf_never_worse_when_rms_schedulable(self, seed):
        """EDF dominates RMS: any RMS-schedulable assignment satisfies the
        EDF bound, so the EDF optimum cannot exceed the RMS optimum."""
        ts, budget = _random_taskset(seed)
        rms = select_rms(ts, budget)
        if rms.assignment is None:
            return
        edf = select_edf(ts, budget, scale=1)
        assert edf.utilization <= rms.utilization + 1e-9
