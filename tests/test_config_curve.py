"""Tests for configuration-curve construction and downsampling."""

from __future__ import annotations

import pytest

from repro.enumeration import build_candidate_library
from repro.selection import (
    bind_customized_cost,
    build_configuration_curve,
    downsample_curve,
)
from repro.selection.config_curve import TaskConfiguration


class TestCurve:
    def test_starts_with_software_point(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        curve = build_configuration_curve(tiny_program, lib.candidates)
        assert curve[0].area == 0.0
        assert curve[0].selected == ()

    def test_strictly_improving_frontier(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        curve = build_configuration_curve(tiny_program, lib.candidates)
        for a, b in zip(curve, curve[1:]):
            assert b.area > a.area
            assert b.cycles < a.cycles

    def test_wcet_objective_upper_bounds_avg(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        wcet_curve = build_configuration_curve(
            tiny_program, lib.candidates, objective="wcet"
        )
        avg_curve = build_configuration_curve(
            tiny_program, lib.candidates, objective="avg"
        )
        assert wcet_curve[0].cycles >= avg_curve[0].cycles

    def test_optimal_method_at_least_as_good_at_full_budget(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        greedy = build_configuration_curve(
            tiny_program, lib.candidates, method="greedy"
        )
        optimal = build_configuration_curve(
            tiny_program, lib.candidates, method="optimal", steps=4
        )
        assert optimal[-1].cycles <= greedy[-1].cycles + 1e-9

    def test_unknown_method_rejected(self, tiny_program):
        with pytest.raises(ValueError):
            build_configuration_curve(tiny_program, [], method="magic")

    def test_unknown_objective_rejected(self, tiny_program):
        with pytest.raises(ValueError):
            build_configuration_curve(tiny_program, [], objective="speed")

    def test_no_candidates_gives_software_only(self, tiny_program):
        curve = build_configuration_curve(tiny_program, [])
        assert len(curve) == 1

    def test_selected_candidates_consistent_with_cycles(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        curve = build_configuration_curve(tiny_program, lib.candidates)
        for pt in curve[1:]:
            total_area = sum(lib.candidates[i].area for i in pt.selected)
            assert total_area == pytest.approx(pt.area)


class TestDownsample:
    def _curve(self, n):
        return [
            TaskConfiguration(area=float(i), cycles=float(100 - i)) for i in range(n)
        ]

    def test_short_curve_unchanged(self):
        pts = self._curve(5)
        assert downsample_curve(pts, 10) == pts

    def test_endpoints_kept(self):
        pts = self._curve(50)
        out = downsample_curve(pts, 8)
        assert out[0] == pts[0]
        assert out[-1] == pts[-1]

    def test_size_bound(self):
        out = downsample_curve(self._curve(100), 8)
        assert len(out) <= 8

    def test_sorted_by_area(self):
        out = downsample_curve(self._curve(60), 12)
        areas = [p.area for p in out]
        assert areas == sorted(areas)

    def test_min_points_validation(self):
        with pytest.raises(ValueError):
            downsample_curve(self._curve(5), 1)


class TestCustomizedCost:
    def test_cost_reduced_by_gain(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        if not lib.candidates:
            pytest.skip("no candidates in tiny program")
        cost = bind_customized_cost(tiny_program, lib.candidates, [0])
        c = lib.candidates[0]
        block = tiny_program.basic_blocks[c.block_index]
        assert cost(block) == pytest.approx(
            block.dfg.sw_cycles() - c.gain_per_exec
        )

    def test_other_blocks_unchanged(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        if not lib.candidates:
            pytest.skip("no candidates")
        cost = bind_customized_cost(tiny_program, lib.candidates, [0])
        c = lib.candidates[0]
        for i, block in enumerate(tiny_program.basic_blocks):
            if i != c.block_index:
                assert cost(block) == pytest.approx(block.dfg.sw_cycles())


class TestIncrementalCosting:
    """The incremental curve coster must match a from-scratch re-evaluation."""

    @pytest.mark.parametrize("objective", ["avg", "wcet"])
    def test_curve_points_match_naive_recompute(self, tiny_program, objective):
        lib = build_candidate_library(tiny_program)
        curve = build_configuration_curve(
            tiny_program, lib.candidates, objective=objective, use_cache=False
        )
        evaluate = {
            "avg": tiny_program.avg_cycles,
            "wcet": tiny_program.wcet,
        }[objective]
        for pt in curve:
            cost = bind_customized_cost(tiny_program, lib.candidates, pt.selected)
            assert pt.cycles == pytest.approx(evaluate(cost))

    def test_optimal_method_matches_naive_recompute(self, tiny_program):
        lib = build_candidate_library(tiny_program)
        curve = build_configuration_curve(
            tiny_program, lib.candidates, method="optimal", steps=4, use_cache=False
        )
        for pt in curve:
            cost = bind_customized_cost(tiny_program, lib.candidates, pt.selected)
            assert pt.cycles == pytest.approx(tiny_program.avg_cycles(cost))
