"""Differential tests: array/compiled enumeration engines vs bitset/reference.

The ``engine="array"`` enumerator is promised *bit-identical* to the
bitset engine — same candidate sets in the same order AND the same five
stats counters — whenever the visit budgets and candidate caps do not
bind (under binding budgets the engines spend the same per-root budgets
breadth-first vs depth-first, so only determinism and cap-respect are
promised).  The ``engine="compiled"`` kernel walks the exact same level
tree as the array engine and must match it at **every** budget, binding
or not.  The bitset engine is in turn candidate-identical to the
original set-based reference.  These tests enforce all three promises
across seeded random DFGs, synthetic blocks and real benchmark blocks,
mirroring :mod:`tests.test_partitioning_differential` for the
partitioning engines.  On hosts without numba the compiled kernels run
under the interpreted tier (:func:`repro.jit.force_interp_for_tests`)
— same logic, bit for bit.
"""

from __future__ import annotations

import random

import pytest

from repro import jit, npbits
from repro.enumeration import enumerate_connected
from repro.enumeration import mimo_array, mimo_compiled
from repro.workloads import get_program
from repro.workloads.synthesis import OP_MIXES, synth_dfg
from tests.conftest import random_small_dfg

#: Budgets far beyond anything the small test graphs can exhaust: with
#: these, all three engines must agree bit for bit.
NO_BUDGET = dict(max_candidates=10**7, min_size=2, max_visited=10**9)

STAT_KEYS = (
    "visited",
    "feasible",
    "pruned_visit_budget",
    "pruned_inputs",
    "pruned_outputs",
)


@pytest.fixture
def force_array(monkeypatch):
    """Drop the hybrid cutoff so even tiny DFGs run the array kernel."""
    monkeypatch.setattr(mimo_array, "ARRAY_MIN_NODES", 0)


@pytest.fixture
def force_kernels(monkeypatch):
    """Drive every engine's real kernel regardless of block size/toolchain:
    array + compiled cutoffs pinned to 0, and the compiled kernels forced
    onto the interpreted tier when numba is not importable."""
    monkeypatch.setattr(mimo_array, "ARRAY_MIN_NODES", 0)
    monkeypatch.setattr(mimo_compiled, "COMPILED_MIN_NODES", 0)
    jit.force_interp_for_tests(monkeypatch)
    yield
    monkeypatch.undo()
    jit.reset_toolchain_cache()


def _run(dfg, engine, **kw):
    stats: dict = {}
    out = enumerate_connected(dfg, engine=engine, stats=stats, **kw)
    return out, {k: stats.get(k, 0) for k in STAT_KEYS}


def _assert_quartet_identical(dfg, **kw):
    ref, _ = _run(dfg, "reference", **kw)
    bit, bit_stats = _run(dfg, "bitset", **kw)
    arr, arr_stats = _run(dfg, "array", **kw)
    comp, comp_stats = _run(dfg, "compiled", **kw)
    assert arr == bit, "array candidates diverged from bitset"
    assert arr_stats == bit_stats, "array counters diverged from bitset"
    assert comp == arr, "compiled candidates diverged from array"
    assert comp_stats == arr_stats, "compiled counters diverged from array"
    assert arr == ref, "array candidates diverged from reference"


class TestArrayDifferential:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("n", (10, 18, 26))
    def test_random_dfgs_bit_identical(self, force_kernels, seed, n):
        """30 seeded random DFGs: array == compiled == bitset (candidates
        + counters) and == reference (candidates), non-binding budgets."""
        dfg = random_small_dfg(seed, n=n)
        _assert_quartet_identical(
            dfg, max_inputs=4, max_outputs=2, max_size=8, **NO_BUDGET
        )

    @pytest.mark.parametrize("mi,mo", ((2, 1), (3, 2), (4, 3)))
    def test_port_constraint_sweep(self, force_kernels, mi, mo):
        dfg = random_small_dfg(3, n=20)
        _assert_quartet_identical(
            dfg, max_inputs=mi, max_outputs=mo, max_size=7, **NO_BUDGET
        )

    @pytest.mark.parametrize("mix", ("crypto", "dsp"))
    def test_synth_blocks_bit_identical(self, force_kernels, mix):
        """Blocks big enough to clear the hybrid cutoff naturally."""
        rng = random.Random(mix)
        dfg = synth_dfg(rng, 60, OP_MIXES[mix])
        _assert_quartet_identical(
            dfg, max_inputs=4, max_outputs=2, max_size=6, **NO_BUDGET
        )

    @pytest.mark.parametrize("name", ("sha", "adpcm"))
    def test_benchmark_blocks_bit_identical(self, force_kernels, name):
        prog = get_program(name)
        for blk in prog.basic_blocks:
            _assert_quartet_identical(
                blk.dfg, max_inputs=4, max_outputs=2, max_size=6, **NO_BUDGET
            )

    def test_min_size_filter_matches(self, force_kernels):
        dfg = random_small_dfg(7, n=18)
        for min_size in (1, 3):
            kw = dict(NO_BUDGET, min_size=min_size)
            _assert_quartet_identical(
                dfg, max_inputs=4, max_outputs=2, max_size=6, **kw
            )


class TestArrayBudgets:
    """Binding budgets: BFS vs DFS spend them differently, so equality
    with the bitset engine is no longer promised — but determinism and
    cap-respect are."""

    def test_binding_budget_is_deterministic(self, force_array):
        rng = random.Random(99)
        dfg = synth_dfg(rng, 80, OP_MIXES["crypto"])
        # Loose ports + a tight visit cap: the per-root visit budget binds
        # (rather than the candidate cap stopping the search first).
        kw = dict(
            max_inputs=6, max_outputs=4, max_size=12,
            max_candidates=10**6, min_size=2, max_visited=300,
        )
        a1, s1 = _run(dfg, "array", **kw)
        a2, s2 = _run(dfg, "array", **kw)
        assert a1 == a2
        assert s1 == s2
        # The budget really bound (otherwise this test is vacuous).
        assert s1["pruned_visit_budget"] >= 1

    def test_compiled_matches_array_under_binding_budget(self, force_kernels):
        """The compiled kernel walks the array engine's exact level tree,
        so — unlike array vs bitset — equality holds even when the
        per-root visit budgets bind."""
        rng = random.Random(99)
        dfg = synth_dfg(rng, 80, OP_MIXES["crypto"])
        kw = dict(
            max_inputs=6, max_outputs=4, max_size=12,
            max_candidates=10**6, min_size=2, max_visited=300,
        )
        arr, arr_stats = _run(dfg, "array", **kw)
        comp, comp_stats = _run(dfg, "compiled", **kw)
        assert comp == arr
        assert comp_stats == arr_stats
        assert arr_stats["pruned_visit_budget"] >= 1

    def test_compiled_matches_array_under_candidate_cap(self, force_kernels):
        rng = random.Random(99)
        dfg = synth_dfg(rng, 80, OP_MIXES["crypto"])
        kw = dict(
            max_inputs=4, max_outputs=2, max_size=10,
            max_candidates=25, min_size=2, max_visited=None,
        )
        arr, arr_stats = _run(dfg, "array", **kw)
        comp, comp_stats = _run(dfg, "compiled", **kw)
        assert comp == arr
        assert comp_stats == arr_stats
        assert len(comp) <= 25

    def test_candidate_cap_respected(self, force_array):
        rng = random.Random(99)
        dfg = synth_dfg(rng, 80, OP_MIXES["crypto"])
        out, stats = _run(
            dfg, "array", max_inputs=4, max_outputs=2, max_size=10,
            max_candidates=25, min_size=2, max_visited=None,
        )
        assert len(out) <= 25
        assert stats["feasible"] >= len(out)

    def test_non_binding_budget_flags_no_pruning(self, force_array):
        dfg = random_small_dfg(1, n=16)
        _, stats = _run(
            dfg, "array", max_inputs=4, max_outputs=2, max_size=8, **NO_BUDGET
        )
        assert stats["pruned_visit_budget"] == 0


class TestHybridDispatch:
    def test_small_blocks_delegate_to_bitset(self):
        """Below ARRAY_MIN_NODES the array engine must hand the identical
        call to the bitset engine (no monkeypatching here)."""
        dfg = random_small_dfg(2, n=12)
        assert len(dfg) < mimo_array.ARRAY_MIN_NODES
        bit, bit_stats = _run(
            dfg, "bitset", max_inputs=4, max_outputs=2, max_size=8, **NO_BUDGET
        )
        arr, arr_stats = _run(
            dfg, "array", max_inputs=4, max_outputs=2, max_size=8, **NO_BUDGET
        )
        assert arr == bit
        assert arr_stats == bit_stats


class TestPopcountFallback:
    def test_fallback_popcount_bit_identical(self, force_array, monkeypatch):
        """The table-lookup popcount path (NumPy < 2.0 or
        REPRO_NO_BITWISE_COUNT set) must produce identical enumerations."""
        dfg = random_small_dfg(5, n=22)
        kw = dict(max_inputs=4, max_outputs=2, max_size=7, **NO_BUDGET)
        fast, fast_stats = _run(dfg, "array", **kw)
        monkeypatch.setattr(npbits, "HAVE_BITWISE_COUNT", False)
        slow, slow_stats = _run(dfg, "array", **kw)
        assert slow == fast
        assert slow_stats == fast_stats

    def test_popcount_helpers_agree(self, monkeypatch):
        import numpy as np

        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2**63, size=(17, 3), dtype=np.uint64)
        fast_rows = npbits.popcount_rows(rows)
        fast_u64 = npbits.popcount_u64(rows)
        monkeypatch.setattr(npbits, "HAVE_BITWISE_COUNT", False)
        assert (npbits.popcount_rows(rows) == fast_rows).all()
        assert (npbits.popcount_u64(rows) == fast_u64).all()


class TestIngestedDifferential:
    """Engine parity on DFGs built by the real-code front-end.

    Ingested graphs have shapes the synthetic generator never produces
    (MAC chains, invalid LOAD/STORE/BRANCH region splits, latch CMPs),
    so they are a distinct corpus for the bitset/array oracles.
    """

    @pytest.fixture(scope="class")
    def ingested_blocks(self):
        from pathlib import Path

        from repro.frontend import ingest_path

        example = Path(__file__).resolve().parent.parent / "examples" / "fir_kernel.py"
        program = ingest_path(example, function="fir_filter")
        return [b.dfg for b in program.basic_blocks]

    def test_example_kernel_blocks_bit_identical(
        self, force_kernels, ingested_blocks
    ):
        assert len(ingested_blocks) >= 3
        for dfg in ingested_blocks:
            _assert_quartet_identical(
                dfg, max_inputs=4, max_outputs=2, max_size=6, **NO_BUDGET
            )

    def test_ingested_source_bit_identical(self, force_kernels):
        from repro.frontend import ingest_source

        src = (
            "def mix(a, b, c, x, i):\n"
            "    t = a + b * c\n"
            "    u = x[i] ^ t\n"
            "    v = min(u, t) + max(a, c)\n"
            "    w = (v << 2) - (u & 0xFF)\n"
            "    return w\n"
        )
        program = ingest_source(src)
        for block in program.basic_blocks:
            _assert_quartet_identical(
                block.dfg, max_inputs=4, max_outputs=2, max_size=6, **NO_BUDGET
            )
