"""Differential tests: fast partitioning engines vs their reference oracles.

The fast MLGP and k-way engines are promised *bit-identical* to the
reference implementations under a fixed seed — same partitions, same
float gains/areas, same assignments.  These tests enforce that promise
across seeded random workloads and real benchmark regions, plus the
seed-determinism and cache-consistency properties the pipeline relies
on.
"""

from __future__ import annotations

import random

import pytest

from repro import cache, jit, obs
from repro.mlgp.mlgp import mlgp_partition
from repro.mtreconfig.dp import dp_solution
from repro.mtreconfig.model import ReconfigTask, TaskVersion
from repro.mtreconfig.workload import synthetic_reconfig_tasks
from repro.reconfig.extract import extract_hot_loops
from repro.reconfig.iterative import iterative_partition
from repro.reconfig.kwaypart import edge_cut, kway_partition
from repro.workloads import get_program
from tests.conftest import random_small_dfg


def _mlgp_quartet(dfg, region, seed, **kw):
    """(reference, fast, array, compiled) results for one region/seed."""
    return tuple(
        mlgp_partition(
            dfg, region, seed=seed, engine=eng, use_cache=False, **kw
        )
        for eng in ("reference", "fast", "array", "compiled")
    )


@pytest.fixture
def force_compiled_mlgp(monkeypatch):
    """Run the compiled MLGP kernel for real: interpreted tier when numba
    is absent, batch threshold pinned so even tiny passes hit it."""
    from repro.mlgp import mlgp_compiled

    monkeypatch.setattr(mlgp_compiled, "COMPILED_MIN_BATCH", 0)
    jit.force_interp_for_tests(monkeypatch)
    yield
    monkeypatch.undo()
    jit.reset_toolchain_cache()


class TestMlgpDifferential:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("n", (10, 18))
    def test_random_dfgs_bit_identical(self, force_compiled_mlgp, seed, n):
        """20 seeded random workloads: fast == array == compiled ==
        reference, bitwise."""
        dfg = random_small_dfg(seed, n=n)
        for region in dfg.regions():
            if len(region) < 2:
                continue
            ref, fast, arr, comp = _mlgp_quartet(dfg, region, seed)
            assert (
                ref.partitions == fast.partitions == arr.partitions
                == comp.partitions
            )
            assert ref.gains == fast.gains == arr.gains == comp.gains
            assert ref.areas == fast.areas == arr.areas == comp.areas

    @pytest.mark.parametrize("name", ("sha", "adpcm"))
    def test_benchmark_regions_bit_identical(self, force_compiled_mlgp, name):
        prog = get_program(name)
        for bi, blk in enumerate(prog.basic_blocks):
            for region in blk.dfg.regions():
                if len(region) < 2:
                    continue
                ref, fast, arr, comp = _mlgp_quartet(blk.dfg, region, bi)
                assert (ref.partitions, ref.gains, ref.areas) == (
                    fast.partitions,
                    fast.gains,
                    fast.areas,
                ) == (arr.partitions, arr.gains, arr.areas) == (
                    comp.partitions, comp.gains, comp.areas
                )

    def test_port_constraint_sweep(self, force_compiled_mlgp):
        dfg = random_small_dfg(3, n=16)
        region = max(dfg.regions(), key=len)
        for mi, mo in ((2, 1), (3, 2), (6, 3)):
            ref, fast, arr, comp = _mlgp_quartet(
                dfg, region, 7, max_inputs=mi, max_outputs=mo
            )
            assert (
                ref.partitions == fast.partitions == arr.partitions
                == comp.partitions
            )

    def test_array_forced_batch_kernel_bit_identical(self, monkeypatch):
        """Pin the batch threshold to 0 so even tiny passes go through the
        vectorized scoring kernel, then demand bitwise equality with the
        fast engine on real benchmark regions."""
        from repro.mlgp import mlgp_array

        monkeypatch.setattr(mlgp_array, "ARRAY_MIN_BATCH", 0)
        prog = get_program("sha")
        for bi, blk in enumerate(prog.basic_blocks):
            for region in blk.dfg.regions():
                if len(region) < 2:
                    continue
                fast = mlgp_partition(
                    blk.dfg, region, seed=bi, engine="fast", use_cache=False
                )
                arr = mlgp_partition(
                    blk.dfg, region, seed=bi, engine="array", use_cache=False
                )
                assert (fast.partitions, fast.gains, fast.areas) == (
                    arr.partitions,
                    arr.gains,
                    arr.areas,
                )

    def test_compiled_forced_batch_kernel_bit_identical(
        self, force_compiled_mlgp, monkeypatch
    ):
        """Same demand for the compiled scoring kernel: threshold pinned to
        0, bitwise equality with the fast engine on real regions."""
        prog = get_program("sha")
        for bi, blk in enumerate(prog.basic_blocks):
            for region in blk.dfg.regions():
                if len(region) < 2:
                    continue
                fast = mlgp_partition(
                    blk.dfg, region, seed=bi, engine="fast", use_cache=False
                )
                comp = mlgp_partition(
                    blk.dfg, region, seed=bi, engine="compiled",
                    use_cache=False,
                )
                assert (fast.partitions, fast.gains, fast.areas) == (
                    comp.partitions,
                    comp.gains,
                    comp.areas,
                )

    def test_array_counters_match_fast(self, force_compiled_mlgp):
        """The prefill must not change the search: identical mlgp.moves and
        mlgp.repairs tallies, not just identical final partitions."""
        dfg = random_small_dfg(8, n=18)
        region = max(dfg.regions(), key=len)

        def counters(engine):
            obs.reset()
            mlgp_partition(dfg, region, seed=4, engine=engine, use_cache=False)
            snap = obs.metrics_snapshot()["counters"]
            return {k: v for k, v in snap.items() if k.startswith("mlgp.")}

        assert counters("fast") == counters("array") == counters("compiled")

    def test_seed_determinism(self):
        """Same seed -> same result; the seed is part of the cache key."""
        dfg = random_small_dfg(5, n=14)
        region = max(dfg.regions(), key=len)
        a = mlgp_partition(dfg, region, seed=9, use_cache=False)
        b = mlgp_partition(dfg, region, seed=9, use_cache=False)
        assert (a.partitions, a.gains, a.areas) == (
            b.partitions,
            b.gains,
            b.areas,
        )

    def test_cache_hit_matches_computation(self):
        dfg = random_small_dfg(6, n=14)
        region = max(dfg.regions(), key=len)
        cache.clear()
        cold = mlgp_partition(dfg, region, seed=2)
        warm = mlgp_partition(dfg, region, seed=2)
        assert cold.partitions == warm.partitions
        assert cache.stats()["mlgp"]["hits"] >= 1

    def test_counters_flushed(self):
        obs.reset()
        dfg = random_small_dfg(4, n=16)
        region = max(dfg.regions(), key=len)
        mlgp_partition(dfg, region, seed=0, use_cache=False)
        counters = obs.metrics_snapshot()["counters"]
        assert "mlgp.moves" in counters
        assert "mlgp.repairs" in counters


def _random_graph(rng: random.Random, n: int, density: float = 0.08):
    edges = {}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                edges[(u, v)] = rng.uniform(0.5, 10.0)
    for u in range(n - 1):
        edges.setdefault((u, u + 1), rng.uniform(0.5, 5.0))
    return edges


class TestKwayDifferential:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("n,k", ((12, 2), (60, 3), (150, 8)))
    def test_random_graphs_bit_identical(self, seed, n, k):
        """30 seeded random workloads: identical assignments."""
        rng = random.Random(seed * 13 + 1)
        edges = _random_graph(rng, n)
        weights = [rng.uniform(0.5, 4.0) for _ in range(n)]
        ref = kway_partition(n, edges, weights, k=k, seed=seed,
                             engine="reference")
        fast = kway_partition(n, edges, weights, k=k, seed=seed,
                              engine="fast")
        assert ref == fast
        assert edge_cut(edges, ref) == edge_cut(edges, fast)

    def test_edge_cases_match(self):
        for engine in ("fast", "reference"):
            assert kway_partition(0, {}, engine=engine) == []
            assert kway_partition(3, {}, k=5, engine=engine) == [0, 1, 2]
            assert kway_partition(4, {(0, 1): 1.0}, k=1,
                                  engine=engine) == [0, 0, 0, 0]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            kway_partition(4, {}, k=2, engine="bogus")

    def test_counters_flushed(self):
        obs.reset()
        rng = random.Random(11)
        edges = _random_graph(rng, 40)
        kway_partition(40, edges, k=4, seed=1)
        counters = obs.metrics_snapshot()["counters"]
        assert counters.get("kway.kl_passes", 0) >= 1


class TestIterativePartitionDifferential:
    def test_engines_and_cache_agree(self):
        ex = extract_hot_loops(get_program("adpcm"))
        loops, trace = ex.loops, ex.trace
        ref = iterative_partition(
            loops, trace, 150.0, 400.0, seed=3, engine="reference",
            use_cache=False,
        )
        fast = iterative_partition(
            loops, trace, 150.0, 400.0, seed=3, engine="fast",
            use_cache=False,
        )
        assert ref.partition == fast.partition
        assert ref.gain == fast.gain
        cache.clear()
        cold = iterative_partition(loops, trace, 150.0, 400.0, seed=3)
        warm = iterative_partition(loops, trace, 150.0, 400.0, seed=3)
        assert cold.partition == warm.partition == fast.partition
        assert warm.gain == fast.gain


def _mk_task(name, period, versions):
    return ReconfigTask(
        name=name,
        period=period,
        versions=tuple(TaskVersion(area=a, cycles=c) for a, c in versions),
    )


class TestDpEdgeCases:
    def test_empty_task_set(self):
        report = dp_solution([], 1000.0, 50.0, use_cache=False)
        assert report.solution.selection == ()
        assert report.solution.utilization == 0.0

    def test_rho_zero_prefers_hardware(self):
        tasks = [
            _mk_task("a", 1000.0, [(0.0, 900.0), (10.0, 300.0)]),
            _mk_task("b", 1000.0, [(0.0, 800.0), (10.0, 250.0)]),
        ]
        report = dp_solution(tasks, 12.0, 0.0, use_cache=False)
        # With rho = 0 the tax vanishes, so every fitting hardware version
        # is free to use even across multiple configurations.
        assert all(j != 0 for j in report.solution.selection)
        expected = (300.0 + 250.0) / 1000.0
        assert report.solution.utilization == pytest.approx(expected)

    def test_fabric_smaller_than_every_version_is_all_software(self):
        tasks = [
            _mk_task("a", 1000.0, [(0.0, 900.0), (50.0, 300.0)]),
            _mk_task("b", 1000.0, [(0.0, 800.0), (60.0, 250.0)]),
        ]
        report = dp_solution(tasks, 10.0, 5.0, use_cache=False)
        assert report.solution.selection == (0, 0)
        assert report.solution.utilization == pytest.approx(
            0.9 + 0.8
        )

    def test_single_task_pays_no_multi_config_tax(self):
        # One hardware task always collapses to a single configuration,
        # so the reconfiguration tax must not be charged.
        tasks = [_mk_task("solo", 1000.0, [(0.0, 900.0), (10.0, 300.0)])]
        report = dp_solution(tasks, 20.0, 500.0, use_cache=False)
        assert report.solution.selection == (1,)
        assert report.solution.utilization == pytest.approx(0.3)

    def test_cache_roundtrip_deterministic(self):
        tasks = synthetic_reconfig_tasks(8, seed=4)
        cache.clear()
        cold = dp_solution(tasks, 2000.0, 5000.0)
        warm = dp_solution(tasks, 2000.0, 5000.0)
        assert cold.solution == warm.solution
        uncached = dp_solution(tasks, 2000.0, 5000.0, use_cache=False)
        assert uncached.solution == cold.solution
