"""Tests for the ISA opcode table and hardware cost model."""

from __future__ import annotations

import math

import pytest

from repro.isa import (
    DEFAULT_COST_MODEL,
    HardwareCostModel,
    OP_TABLE,
    Opcode,
    is_valid_op,
    op_info,
)


class TestOpTable:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            info = op_info(op)
            assert info.sw_cycles >= 1
            assert info.hw_delay >= 0.0
            assert info.hw_area >= 0.0

    def test_memory_and_control_ops_invalid(self):
        for op in (Opcode.LOAD, Opcode.STORE, Opcode.BRANCH, Opcode.CALL, Opcode.RETURN):
            assert not is_valid_op(op)

    def test_arithmetic_ops_valid(self):
        for op in (Opcode.ADD, Opcode.MUL, Opcode.XOR, Opcode.SHL, Opcode.SELECT):
            assert is_valid_op(op)

    def test_adder_is_area_unit(self):
        assert op_info(Opcode.ADD).hw_area == 1.0

    def test_mac_is_delay_unit(self):
        assert op_info(Opcode.MAC).hw_delay == 1.0

    def test_multiplier_costs_more_than_adder(self):
        assert op_info(Opcode.MUL).hw_area > op_info(Opcode.ADD).hw_area
        assert op_info(Opcode.MUL).hw_delay > op_info(Opcode.ADD).hw_delay

    def test_arity_matches_semantics(self):
        assert op_info(Opcode.CONST).arity == 0
        assert op_info(Opcode.NOT).arity == 1
        assert op_info(Opcode.ADD).arity == 2
        assert op_info(Opcode.SELECT).arity == 3


class TestHardwareCostModel:
    def test_invalid_cycle_delay_rejected(self):
        with pytest.raises(ValueError):
            HardwareCostModel(cycle_delay=0.0)

    def test_hw_cycles_minimum_one(self):
        assert DEFAULT_COST_MODEL.hw_cycles(0.0) == 1
        assert DEFAULT_COST_MODEL.hw_cycles(1e-9) == 1

    def test_hw_cycles_rounds_up(self):
        assert DEFAULT_COST_MODEL.hw_cycles(1.01) == 2
        assert DEFAULT_COST_MODEL.hw_cycles(2.0) == 2

    def test_critical_path_chain(self):
        # Chain of three adds: delay accumulates.
        nodes = [0, 1, 2]
        preds = {0: [], 1: [0], 2: [1]}
        ops = {i: Opcode.ADD for i in nodes}
        delay = DEFAULT_COST_MODEL.critical_path_delay(nodes, preds, ops)
        assert delay == pytest.approx(3 * op_info(Opcode.ADD).hw_delay)

    def test_critical_path_parallel(self):
        # Two parallel adds joining at a third: depth 2, not 3.
        nodes = [0, 1, 2]
        preds = {0: [], 1: [], 2: [0, 1]}
        ops = {i: Opcode.ADD for i in nodes}
        delay = DEFAULT_COST_MODEL.critical_path_delay(nodes, preds, ops)
        assert delay == pytest.approx(2 * op_info(Opcode.ADD).hw_delay)

    def test_subgraph_cost_gain_positive_for_chain(self):
        nodes = [0, 1, 2, 3]
        preds = {0: [], 1: [0], 2: [1], 3: [2]}
        ops = {i: Opcode.ADD for i in nodes}
        cost = DEFAULT_COST_MODEL.subgraph_cost(nodes, preds, ops)
        assert cost.sw_cycles == 4
        assert cost.hw_cycles == 2  # 4 x 0.35 = 1.4 -> 2 cycles
        assert cost.gain == 2
        assert cost.area == pytest.approx(4.0)

    def test_subgraph_sw_cycles_additive(self):
        ops = [Opcode.ADD, Opcode.MUL, Opcode.DIV]
        expected = sum(op_info(o).sw_cycles for o in ops)
        assert DEFAULT_COST_MODEL.subgraph_sw_cycles(ops) == expected

    def test_faster_clock_needs_more_cycles(self):
        fast = HardwareCostModel(cycle_delay=0.5)
        nodes = [0, 1, 2]
        preds = {0: [], 1: [0], 2: [1]}
        ops = {i: Opcode.MUL for i in nodes}
        slow_cost = DEFAULT_COST_MODEL.subgraph_cost(nodes, preds, ops)
        fast_cost = fast.subgraph_cost(nodes, preds, ops)
        assert fast_cost.hw_cycles > slow_cost.hw_cycles
