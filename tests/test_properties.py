"""Cross-module property-based tests on library invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reconfig import (
    build_rcg,
    count_reconfigurations,
    kway_partition,
    spatial_select,
)
from repro.workloads.loops import synthetic_loops, synthetic_trace
from tests.conftest import random_small_dfg



def _random_taskset_local(seed: int, n_tasks: int = 3):
    """Random task set with integer-area configuration curves."""
    from repro.rtsched import PeriodicTask, TaskSet
    from repro.selection.config_curve import TaskConfiguration

    rng = random.Random(seed)
    tasks = []
    for i in range(n_tasks):
        wcet = rng.randint(4, 20)
        period = wcet * rng.uniform(1.2, 4.0)
        configs = [(0.0, float(wcet))]
        area, cycles = 0.0, float(wcet)
        for _ in range(rng.randint(0, 3)):
            area += rng.randint(1, 8)
            cycles = max(1.0, cycles - rng.randint(1, 4))
            configs.append((area, cycles))
        tasks.append(
            PeriodicTask(
                name=f"t{i}",
                period=period,
                wcet=wcet,
                configurations=tuple(
                    TaskConfiguration(a, c) for a, c in configs
                ),
            )
        )
    budget = float(rng.randint(0, 30))
    return TaskSet(tasks), budget


class TestDfgInvariants:
    @given(st.integers(0, 200), st.integers(2, 15))
    @settings(max_examples=40, deadline=None)
    def test_regions_partition_valid_nodes(self, seed, n):
        dfg = random_small_dfg(seed, n)
        regions = dfg.regions()
        flat = [x for r in regions for x in r]
        assert sorted(flat) == sorted(dfg.valid_nodes)
        assert len(flat) == len(set(flat))

    @given(st.integers(0, 200), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_io_monotone_under_union_upper_bound(self, seed, n):
        """Union of two subgraphs never has more inputs than the sum."""
        rng = random.Random(seed)
        dfg = random_small_dfg(seed, n)
        a = set(rng.sample(range(n), rng.randint(1, n)))
        b = set(rng.sample(range(n), rng.randint(1, n)))
        io_a, io_b = dfg.io_count(a), dfg.io_count(b)
        io_u = dfg.io_count(a | b)
        assert io_u.inputs <= io_a.inputs + io_b.inputs
        assert io_u.outputs <= io_a.outputs + io_b.outputs

    @given(st.integers(0, 100), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_whole_graph_is_convex(self, seed, n):
        dfg = random_small_dfg(seed, n)
        assert dfg.is_convex(list(dfg.nodes))

    @given(st.integers(0, 100), st.integers(3, 12))
    @settings(max_examples=30, deadline=None)
    def test_structural_key_stable_under_relabeling(self, seed, n):
        """Keys only depend on structure: two generations with identical
        seeds agree node-for-node."""
        a = random_small_dfg(seed, n)
        b = random_small_dfg(seed, n)
        assert a.structural_key(range(n)) == b.structural_key(range(n))


class TestSelectionInvariants:
    @given(st.integers(0, 150))
    @settings(max_examples=25, deadline=None)
    def test_edf_dp_monotone_in_budget(self, seed):
        from repro.core import select_edf

        ts, _ = _random_taskset_local(seed, n_tasks=4)
        utils = [
            select_edf(ts, b, scale=1).utilization for b in (0, 5, 10, 20, 40)
        ]
        assert utils == sorted(utils, reverse=True)

    @given(st.integers(0, 150))
    @settings(max_examples=25, deadline=None)
    def test_edf_dp_never_exceeds_software(self, seed):
        from repro.core import select_edf

        ts, budget = _random_taskset_local(seed)
        sel = select_edf(ts, budget, scale=1)
        assert sel.utilization <= ts.utilization + 1e-9

    @given(st.integers(0, 150))
    @settings(max_examples=25, deadline=None)
    def test_spatial_select_monotone_in_budget(self, seed):
        loops = synthetic_loops(5, seed=seed)
        gains = [
            spatial_select(loops, float(b), scale=1)[1]
            for b in (0, 50, 100, 200, 400)
        ]
        assert gains == sorted(gains)


class TestReconfigInvariants:
    @given(st.integers(0, 200), st.integers(3, 10), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_reconfig_count_equals_rcg_cut(self, seed, n, k):
        """The trace reconfiguration count equals the RCG edge-cut for any
        configuration assignment covering all loops — the equivalence that
        justifies modeling temporal partitioning as graph partitioning
        (thesis Section 6.3.3)."""
        rng = random.Random(seed)
        trace = synthetic_trace(n, seed=seed)
        config_of = [rng.randrange(k) for _ in range(n)]
        switches = count_reconfigurations(trace, config_of, range(n))
        rcg = build_rcg(trace, range(n))
        cut = sum(
            w for (u, v), w in rcg.items() if config_of[u] != config_of[v]
        )
        assert switches == cut

    @given(st.integers(0, 100), st.integers(4, 12), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_kway_assignment_valid(self, seed, n, k):
        rng = random.Random(seed)
        edges = {}
        for _ in range(n * 2):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                key = (min(u, v), max(u, v))
                edges[key] = edges.get(key, 0.0) + rng.randint(1, 9)
        assign = kway_partition(n, edges, k=k, seed=seed)
        assert len(assign) == n
        assert all(0 <= p < max(k, n) for p in assign)

    @given(st.integers(0, 80))
    @settings(max_examples=20, deadline=None)
    def test_iterative_gain_no_worse_than_static(self, seed):
        """Reconfiguration can always fall back to a single configuration,
        so the iterative result dominates the static spatial optimum."""
        from repro.reconfig import iterative_partition

        loops = synthetic_loops(6, seed=seed)
        trace = synthetic_trace(6, seed=seed)
        _sel, static_gain = spatial_select(loops, 150.0)
        sol = iterative_partition(loops, trace, 150.0, 400.0)
        assert sol.gain >= static_gain - 1e-9


class TestSimulatorInvariants:
    @given(st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_busy_time_bounded(self, seed):
        from repro.rtsched import simulate

        rng = random.Random(seed)
        n = rng.randint(1, 4)
        periods = [float(rng.choice([2, 3, 4, 6, 8])) for _ in range(n)]
        costs = [max(1.0, round(p * rng.uniform(0.1, 0.5))) for p in periods]
        res = simulate(periods, costs, policy="edf")
        assert 0.0 <= res.busy_time <= res.horizon + 1e-9
        expected = sum(c * (res.horizon / p) for c, p in zip(costs, periods))
        if res.schedulable:
            assert res.busy_time == pytest.approx(expected)

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_edf_dominates_rm(self, seed):
        """Anything RM can schedule, EDF can (EDF optimality)."""
        from repro.rtsched import simulate

        rng = random.Random(seed)
        n = rng.randint(2, 4)
        periods = [float(rng.choice([2, 3, 4, 6, 8, 12])) for _ in range(n)]
        costs = [max(1.0, round(p * rng.uniform(0.1, 0.5))) for p in periods]
        rm = simulate(periods, costs, policy="rm")
        if rm.schedulable:
            assert simulate(periods, costs, policy="edf").schedulable


class TestEnergyInvariants:
    @given(st.floats(0.05, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_operating_point_monotone_in_utilization(self, u):
        from repro.rtsched import lowest_feasible_point

        p_lo = lowest_feasible_point(u * 0.5, 3, "edf")
        p_hi = lowest_feasible_point(u, 3, "edf")
        assert p_lo is not None
        if p_hi is not None:
            assert p_lo.mhz <= p_hi.mhz
