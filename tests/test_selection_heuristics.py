"""Tests for the GA / simulated-annealing selection heuristics."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selection import (
    select_annealing,
    select_branch_bound,
    select_genetic,
    select_greedy,
)
from tests.test_selection import _brute_force, _cand, _random_instance


def _total(cands, sel):
    return sum(cands[i].total_gain for i in sel)


def _is_feasible(cands, sel, budget):
    if sum(cands[i].area for i in sel) > budget + 1e-9:
        return False
    return all(
        not cands[i].overlaps(cands[j])
        for i, j in itertools.combinations(sel, 2)
    )


class TestGenetic:
    @given(st.integers(0, 120))
    @settings(max_examples=20, deadline=None)
    def test_feasible_and_bounded_by_optimum(self, seed):
        cands, budget = _random_instance(seed)
        sel = select_genetic(cands, budget, generations=20, seed=seed)
        assert _is_feasible(cands, sel, budget)
        optimum, _ = _brute_force(cands, budget)
        assert _total(cands, sel) <= optimum + 1e-9

    @given(st.integers(0, 80))
    @settings(max_examples=15, deadline=None)
    def test_never_below_greedy(self, seed):
        """The GA is seeded with the greedy solution, so it cannot lose."""
        cands, budget = _random_instance(seed)
        ga = _total(cands, select_genetic(cands, budget, generations=15, seed=1))
        greedy = _total(cands, select_greedy(cands, budget))
        assert ga >= greedy - 1e-9

    def test_deterministic_for_seed(self):
        cands, budget = _random_instance(9, n=10)
        a = select_genetic(cands, budget, seed=3)
        b = select_genetic(cands, budget, seed=3)
        assert a == b

    def test_empty_pool(self):
        assert select_genetic([], 10.0) == []

    def test_often_finds_optimum_on_small_instances(self):
        hits = 0
        for seed in range(10):
            cands, budget = _random_instance(seed, n=7)
            optimum, _ = _brute_force(cands, budget)
            got = _total(cands, select_genetic(cands, budget, seed=seed))
            if got >= optimum - 1e-9:
                hits += 1
        assert hits >= 7


class TestAnnealing:
    @given(st.integers(0, 120))
    @settings(max_examples=20, deadline=None)
    def test_feasible_and_bounded_by_optimum(self, seed):
        cands, budget = _random_instance(seed)
        sel = select_annealing(cands, budget, iterations=800, seed=seed)
        assert _is_feasible(cands, sel, budget)
        optimum, _ = _brute_force(cands, budget)
        assert _total(cands, sel) <= optimum + 1e-9

    @given(st.integers(0, 80))
    @settings(max_examples=15, deadline=None)
    def test_never_below_greedy(self, seed):
        """SA starts from greedy and keeps the best state visited."""
        cands, budget = _random_instance(seed)
        sa = _total(cands, select_annealing(cands, budget, iterations=500, seed=1))
        greedy = _total(cands, select_greedy(cands, budget))
        assert sa >= greedy - 1e-9

    def test_deterministic_for_seed(self):
        cands, budget = _random_instance(5, n=10)
        a = select_annealing(cands, budget, seed=2)
        b = select_annealing(cands, budget, seed=2)
        assert a == b

    def test_zero_budget(self):
        cands, _ = _random_instance(1)
        assert select_annealing(cands, 0.0) == []

    def test_escapes_greedy_local_optimum(self):
        """Instance where density-greedy is provably suboptimal: one dense
        small item conflicts with two larger ones that together win."""
        a = _cand(0, (0, 1), gain=10, area=2)  # density 5, picked first
        b = _cand(0, (1, 2), gain=12, area=6)  # conflicts with a
        c = _cand(0, (0, 5), gain=12, area=6)  # conflicts with a
        cands = [a, b, c]
        budget = 12.0
        greedy = _total(cands, select_greedy(cands, budget))
        optimal = _total(cands, select_branch_bound(cands, budget))
        assert optimal > greedy  # the trap is real
        sa = _total(cands, select_annealing(cands, budget, iterations=2000, seed=0))
        assert sa == pytest.approx(optimal)
