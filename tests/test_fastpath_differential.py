"""Differential tests: every fast engine against its retained scalar oracle.

PR convention: each vectorized/restructured hot path keeps the original
implementation behind ``engine="reference"``.  These tests drive both
engines over seeded random inputs and assert *bit-identical* results —
equal floats, equal assignments, equal node counts — not approximate
agreement.  Caching is bypassed (``use_cache=False``) so the engines
cannot observe each other's results (the engine name is part of each
cache key anyway; this keeps the tests independent of cache state).
"""

from __future__ import annotations

import random

import pytest

from repro.core.edf_select import select_edf
from repro.core.rms_select import select_rms
from repro.enumeration.patterns import Candidate
from repro.pareto.inter import TaskCurve, exact_utilization_curve
from repro.pareto.intra import CIOption, exact_workload_curve
from repro.rtsched.dbf import edf_constrained_schedulable
from repro.rtsched.response_time import response_time, rta_schedulable
from repro.selection.knapsack import select_knapsack
from repro.testing import random_task_set

SEEDS = range(12)


def _random_curves(rng: random.Random) -> list[TaskCurve]:
    curves = []
    for _ in range(rng.randint(2, 5)):
        n_opts = rng.randint(2, 6)
        period = float(rng.randint(50, 400))
        workloads = sorted(
            (float(rng.randint(5, 200)) for _ in range(n_opts)), reverse=True
        )
        areas = [0] + sorted(rng.randint(1, 25) for _ in range(n_opts - 1))
        curves.append(
            TaskCurve(period=period, workloads=tuple(workloads), areas=tuple(areas))
        )
    return curves


@pytest.mark.parametrize("seed", SEEDS)
def test_inter_exact_merge_matches_reference(seed):
    curves = _random_curves(random.Random(seed))
    merge = exact_utilization_curve(curves, engine="merge", use_cache=False)
    ref = exact_utilization_curve(curves, engine="reference", use_cache=False)
    # The (utilization, area) frontier must be bit-identical.
    assert [(p.value, p.cost) for p in merge] == [(p.value, p.cost) for p in ref]
    # Ties can be realized by different choices; each reported choice must
    # reproduce its point exactly (utilization accumulated in task order,
    # matching both engines' float addition order).
    for p in merge:
        u, c = 0.0, 0
        for t, k in zip(curves, p.choice):
            u += t.workloads[k] / t.period
            c += t.areas[k]
        assert u == p.value
        assert float(c) == p.cost


@pytest.mark.parametrize("seed", SEEDS)
def test_intra_vector_matches_reference(seed):
    rng = random.Random(1000 + seed)
    base = float(rng.randint(100, 1000))
    options = [
        CIOption(delta=float(rng.randint(0, 60)), area=rng.randint(0, 20))
        for _ in range(rng.randint(1, 10))
    ]
    fast = exact_workload_curve(base, options, engine="vector")
    ref = exact_workload_curve(base, options, engine="reference")
    assert [(p.value, p.cost) for p in fast] == [(p.value, p.cost) for p in ref]


@pytest.mark.parametrize("seed", SEEDS)
def test_edf_select_vector_matches_reference(seed):
    ts = random_task_set(seed, n_tasks=5, max_configs=6)
    budget = 0.5 * ts.max_area if ts.max_area > 0 else 1.0
    fast = select_edf(ts, budget, engine="vector", use_cache=False)
    ref = select_edf(ts, budget, engine="reference", use_cache=False)
    assert fast.assignment == ref.assignment
    assert fast.utilization == ref.utilization
    assert fast.area == ref.area


@pytest.mark.parametrize("seed", SEEDS)
def test_rms_select_fast_matches_reference(seed):
    # utilization near 1 gives a mix of schedulable and infeasible sets.
    ts = random_task_set(seed, n_tasks=4, max_configs=4, utilization=1.15)
    budget = 0.6 * ts.max_area if ts.max_area > 0 else 1.0
    fast = select_rms(ts, budget, engine="fast", use_cache=False)
    ref = select_rms(ts, budget, engine="reference", use_cache=False)
    assert fast.assignment == ref.assignment
    assert fast.utilization == ref.utilization
    assert fast.area == ref.area
    # Identical search tree, not just identical answers.
    assert fast.nodes_visited == ref.nodes_visited


@pytest.mark.parametrize("seed", SEEDS)
def test_knapsack_vector_matches_reference(seed):
    rng = random.Random(2000 + seed)
    candidates = []
    for i in range(rng.randint(1, 12)):
        sw = rng.randint(1, 20)
        candidates.append(
            Candidate(
                block_index=i,
                nodes=frozenset({i}),
                sw_cycles=sw,
                hw_cycles=rng.randint(0, sw),
                area=float(rng.randint(0, 8)) + rng.choice((0.0, 0.5)),
                inputs=2,
                outputs=1,
                frequency=float(rng.randint(1, 50)),
            )
        )
    budget = rng.uniform(0.0, sum(c.area for c in candidates) + 1.0)
    fast = select_knapsack(candidates, budget, engine="vector")
    ref = select_knapsack(candidates, budget, engine="reference")
    assert fast == ref


@pytest.mark.parametrize("seed", SEEDS)
def test_dbf_vector_matches_reference(seed):
    rng = random.Random(3000 + seed)
    n = rng.randint(1, 5)
    periods = [float(rng.choice((4, 5, 6, 8, 10, 12, 16, 20))) for _ in range(n)]
    costs = [float(rng.randint(1, int(p))) for p in periods]
    deadlines = [float(rng.randint(max(1, int(c)), int(p))) for p, c in zip(periods, costs)]
    fast = edf_constrained_schedulable(periods, costs, deadlines, engine="vector")
    ref = edf_constrained_schedulable(periods, costs, deadlines, engine="reference")
    assert fast == ref


@pytest.mark.parametrize("seed", SEEDS)
def test_rta_vector_matches_reference(seed):
    rng = random.Random(4000 + seed)
    n = rng.randint(1, 6)
    periods = sorted(float(rng.randint(5, 50)) for _ in range(n))
    costs = [float(rng.randint(1, int(p))) for p in periods]
    for i in range(n):
        fast = response_time(periods, costs, i, engine="vector")
        ref = response_time(periods, costs, i, engine="reference")
        assert fast == ref  # None or bit-equal float
    assert rta_schedulable(periods, costs, engine="vector") == rta_schedulable(
        periods, costs, engine="reference"
    )
