"""Tests for the dataflow-graph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import Opcode
from tests.conftest import random_small_dfg


class TestConstruction:
    def test_insertion_order_is_topological(self, chain_dfg):
        for n in chain_dfg.nodes:
            assert all(p < n for p in chain_dfg.preds(n))

    def test_unknown_predecessor_rejected(self):
        dfg = DataFlowGraph()
        with pytest.raises(GraphError):
            dfg.add_op(Opcode.ADD, preds=[0])

    def test_forward_reference_rejected(self):
        dfg = DataFlowGraph()
        dfg.add_op(Opcode.ADD)
        with pytest.raises(GraphError):
            dfg.add_op(Opcode.ADD, preds=[5])

    def test_external_inputs_default_from_arity(self):
        dfg = DataFlowGraph()
        n0 = dfg.add_op(Opcode.ADD)  # 2 external operands
        n1 = dfg.add_op(Opcode.ADD, preds=[n0])  # 1 external
        assert dfg.external_inputs(n0) == 2
        assert dfg.external_inputs(n1) == 1

    def test_negative_external_inputs_rejected(self):
        dfg = DataFlowGraph()
        with pytest.raises(GraphError):
            dfg.add_op(Opcode.ADD, external_inputs=-1)

    def test_duplicate_preds_deduplicated(self):
        dfg = DataFlowGraph()
        n0 = dfg.add_op(Opcode.ADD)
        n1 = dfg.add_op(Opcode.MUL, preds=[n0, n0])
        assert dfg.preds(n1) == [n0]

    def test_succs_mirror_preds(self, diamond_dfg):
        assert diamond_dfg.succs(0) == [1, 2]
        assert diamond_dfg.preds(3) == [1, 2]


class TestIOCount:
    def test_chain_full_io(self, chain_dfg):
        io = chain_dfg.io_count([0, 1, 2])
        # Externals: n0 has 2, n1 has 1, n2 has 1 -> 4 inputs; only n2's
        # value leaves (it is a sink with no live_out -> 0 outputs).
        assert io.inputs == 4
        assert io.outputs == 0

    def test_interior_cut_counts_producer(self, chain_dfg):
        io = chain_dfg.io_count([1, 2])
        # Producer n0 is one input; n1's own external operand and n2's.
        assert io.inputs == 3

    def test_output_counted_when_consumed_outside(self, chain_dfg):
        io = chain_dfg.io_count([0, 1])
        assert io.outputs == 1  # n1 feeds n2 outside

    def test_live_out_counts_as_output(self, chain_dfg):
        chain_dfg.set_live_out(2)
        io = chain_dfg.io_count([0, 1, 2])
        assert io.outputs == 1

    def test_diamond_single_output(self, diamond_dfg):
        io = diamond_dfg.io_count([0, 1, 2, 3])
        assert io.outputs == 0  # n3 is a sink, not live-out
        io = diamond_dfg.io_count([0, 1, 2])
        assert io.outputs == 2  # n1 and n2 both feed n3


class TestConvexity:
    def test_singletons_convex(self, diamond_dfg):
        for n in diamond_dfg.nodes:
            assert diamond_dfg.is_convex([n])

    def test_diamond_hole_not_convex(self, diamond_dfg):
        assert not diamond_dfg.is_convex([0, 3])
        assert not diamond_dfg.is_convex([0, 1, 3])  # n2 path escapes

    def test_full_diamond_convex(self, diamond_dfg):
        assert diamond_dfg.is_convex([0, 1, 2, 3])

    def test_parallel_branches_convex(self, diamond_dfg):
        assert diamond_dfg.is_convex([1, 2])

    @given(st.integers(0, 200), st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_convexity_matches_bruteforce(self, seed, n):
        """Fast convexity check agrees with a path-based definition."""
        import itertools

        import networkx as nx

        dfg = random_small_dfg(seed, n)
        g = dfg.to_networkx()
        rng_nodes = list(dfg.nodes)
        # Try a handful of subsets per graph.
        import random as _random

        rng = _random.Random(seed)
        for _ in range(8):
            size = rng.randint(1, n)
            sub = set(rng.sample(rng_nodes, size))
            # Brute force: exists path u ->* v (u, v in sub) through outside?
            brute_convex = True
            for u in sub:
                for v in sub:
                    if u == v:
                        continue
                    for path in nx.all_simple_paths(g, u, v, cutoff=n):
                        if any(x not in sub for x in path[1:-1]):
                            brute_convex = False
                            break
                    if not brute_convex:
                        break
                if not brute_convex:
                    break
            assert dfg.is_convex(sub) == brute_convex


class TestFeasibility:
    def test_io_limits_enforced(self, chain_dfg):
        assert chain_dfg.is_feasible([0, 1, 2], max_inputs=4, max_outputs=2)
        assert not chain_dfg.is_feasible([0, 1, 2], max_inputs=3, max_outputs=2)

    def test_invalid_node_rejected(self, load_split_dfg):
        assert not load_split_dfg.is_feasible([1, 2], 4, 2)  # node 2 is LOAD

    def test_empty_set_infeasible(self, chain_dfg):
        assert not chain_dfg.is_feasible([], 4, 2)


class TestRegions:
    def test_load_splits_regions(self, load_split_dfg):
        regions = load_split_dfg.regions()
        assert sorted(map(sorted, regions)) == [[0, 1], [3, 4]]

    def test_regions_exclude_invalid_nodes(self, load_split_dfg):
        for region in load_split_dfg.regions():
            assert all(load_split_dfg.is_valid_node(n) for n in region)

    def test_single_region_when_connected(self, diamond_dfg):
        assert diamond_dfg.regions() == [[0, 1, 2, 3]]

    def test_regions_sorted_by_size(self):
        dfg = DataFlowGraph()
        a = dfg.add_op(Opcode.ADD)
        dfg.add_op(Opcode.LOAD)
        b = dfg.add_op(Opcode.ADD)
        c = dfg.add_op(Opcode.MUL, preds=[b])
        d = dfg.add_op(Opcode.SUB, preds=[c])
        regions = dfg.regions()
        assert len(regions[0]) >= len(regions[-1])


class TestStructuralKey:
    def test_isomorphic_subgraphs_same_key(self):
        dfg = DataFlowGraph()
        # Two identical add->mul chains.
        a0 = dfg.add_op(Opcode.ADD)
        a1 = dfg.add_op(Opcode.MUL, preds=[a0])
        b0 = dfg.add_op(Opcode.ADD)
        b1 = dfg.add_op(Opcode.MUL, preds=[b0])
        assert dfg.structural_key([a0, a1]) == dfg.structural_key([b0, b1])

    def test_different_shapes_different_keys(self, diamond_dfg):
        assert diamond_dfg.structural_key([0, 1]) != diamond_dfg.structural_key([1, 2])

    def test_key_independent_of_node_order(self, diamond_dfg):
        assert diamond_dfg.structural_key([1, 0]) == diamond_dfg.structural_key([0, 1])
