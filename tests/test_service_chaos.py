"""Chaos harness for the durable service (:mod:`repro.service`).

Three failure families, escalating in realism:

* **journal semantics** — unit tests of :mod:`repro.service.journal`:
  replay, torn-tail/garbage truncation, compaction, fsync lag,
  unserializable params;
* **in-process chaos** — :class:`ServerThread` servers with stand-in
  pools and directly-written journals: retry budgets, graceful drain,
  recovered-job-as-cache-hit;
* **subprocess chaos** — a real ``repro serve`` process SIGKILLed
  mid-flight (journal recovery, client retry/backoff across the
  restart) and SIGTERMed (graceful drain).

Subprocess servers run ``--inline`` so the chaos job kind registered by
the launcher script resolves inside the serving process without pool
bootstrapping; the pool-path chaos (worker SIGKILL, retry budget) is
covered by the in-process tests.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import cache, parallel
from repro.errors import ReproError
from repro.service import jobs as jobs_mod
from repro.service.client import ServiceClient
from repro.service.journal import JobJournal, replay_journal
from repro.service.server import ServerThread

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture(autouse=True)
def fresh_cache():
    cache.set_enabled(True)
    cache.set_cache_dir(None)
    cache.reset_backend()
    cache.clear()
    yield
    cache.set_enabled(True)
    cache.reset_cache_dir()
    cache.reset_backend()
    cache.clear()


# ---------------------------------------------------------------------------
# Journal semantics
# ---------------------------------------------------------------------------
class TestJournalReplay:
    def test_missing_file_is_an_empty_journal(self, tmp_path):
        live, stats = replay_journal(str(tmp_path / "absent.jsonl"))
        assert live == []
        assert stats == {
            "records": 0, "bad_offset": None, "truncated_bytes": 0,
        }

    def test_live_set_is_submits_without_terminal_records(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = JobJournal(path, fsync_every=1)
        j.open()
        j.record_submitted("k1", "curve", {"x": 1})
        j.record_submitted("k2", "curve", {"x": 2})
        j.record_started("k1")
        j.record_done("k1")
        j.record_submitted("k3", "curve", {"x": 3})
        j.record_failed("k3", "boom")
        # No close(): simulate the process dying here.
        live, stats = replay_journal(path)
        assert [rec["key"] for rec in live] == ["k2"]
        assert stats["truncated_bytes"] == 0

    def test_torn_tail_is_truncated_on_disk(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = JobJournal(path, fsync_every=1)
        j.open()
        j.record_submitted("k1", "curve", {"x": 1})
        j.close()
        with open(path, "ab") as fh:  # a crash mid-append: no newline
            fh.write(b'{"rec": "done", "key": "k1"')
        good = os.path.getsize(path) - len(b'{"rec": "done", "key": "k1"')
        live, stats = replay_journal(path)
        assert [rec["key"] for rec in live] == ["k1"]
        assert stats["truncated_bytes"] > 0
        assert os.path.getsize(path) == good  # bad bytes are gone

    def test_records_after_corruption_are_dropped(self, tmp_path):
        # A valid-looking suffix after garbage cannot be trusted to be
        # ordered: replay keeps only the good prefix.
        path = str(tmp_path / "j.jsonl")
        j = JobJournal(path, fsync_every=1)
        j.open()
        j.record_submitted("k1", "curve", {"x": 1})
        j.close()
        rec = {"rec": "submitted", "key": "k2", "kind": "curve",
               "params": {"x": 2}}
        with open(path, "ab") as fh:
            fh.write(b"\x00\xffgarbage\n")
            fh.write(json.dumps(rec).encode() + b"\n")
        live, stats = replay_journal(path)
        assert [r["key"] for r in live] == ["k1"]
        assert stats["truncated_bytes"] > 0

    def test_open_compacts_and_appends_after_corruption(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = JobJournal(path, fsync_every=1)
        j.open()
        j.record_submitted("k1", "curve", {"x": 1})
        j.close()
        with open(path, "ab") as fh:
            fh.write(b"not json at all\n")
        j2 = JobJournal(path, fsync_every=1)
        replayed = j2.open()
        assert [rec["key"] for rec in replayed] == ["k1"]
        assert j2.truncated_bytes > 0
        j2.record_done("k1")  # the journal stays usable after surgery
        j2.close()
        live, _ = replay_journal(path)
        assert live == []

    def test_unserializable_params_skip_journaling(self, tmp_path):
        j = JobJournal(str(tmp_path / "j.jsonl"), fsync_every=1)
        j.open()
        assert j.record_submitted("k1", "curve", {"x": object()}) is False
        assert j.record_submitted("k2", "curve", {"x": 2}) is True
        j.close()
        live, _ = replay_journal(j.path)
        assert [rec["key"] for rec in live] == ["k2"]

    def test_compaction_bounds_the_file(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = JobJournal(path, fsync_every=1, compact_every=16)
        j.open()
        for i in range(40):  # 80 appends >> compact_every
            j.record_submitted(f"k{i}", "curve", {"x": i})
            j.record_done(f"k{i}")
        j.record_submitted("tail", "curve", {"x": -1})
        j.close()
        assert j.compactions >= 2
        live, stats = replay_journal(path)
        assert [rec["key"] for rec in live] == ["tail"]
        # The file holds the records since the last checkpoint, not the
        # full history.
        assert stats["records"] < 20

    def test_fsync_lag_is_reported_and_clearable(self, tmp_path):
        j = JobJournal(str(tmp_path / "j.jsonl"), fsync_every=100)
        j.open()
        for i in range(3):
            j.record_submitted(f"k{i}", "curve", {"x": i})
        assert j.lag() == 3
        j.sync()
        assert j.lag() == 0
        assert j.stats()["live"] == 3
        j.close()


# ---------------------------------------------------------------------------
# In-process chaos
# ---------------------------------------------------------------------------
class _Kind:
    """A test-local job kind with an optional gate and call count."""

    def __init__(self, name: str):
        self.name = name
        self.calls: list[dict] = []
        self.gate: threading.Event | None = None
        self._lock = threading.Lock()
        jobs_mod.register_kind(name, self._resolve, self._compute)

    def _resolve(self, params):
        x = params.get("x", 0)
        return f"svc-chaos-{self.name}-{x}", {"x": x}

    def _compute(self, params):
        with self._lock:
            self.calls.append(dict(params))
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        return {"x": params["x"], "tripled": params["x"] * 3}


@pytest.fixture
def kind(request):
    name = f"chaos-{request.node.name}"[:48]
    k = _Kind(name)
    yield k
    jobs_mod.JOB_KINDS.pop(name, None)


class TestCrashRecovery:
    def test_journaled_jobs_replay_and_complete(self, kind, tmp_path):
        # Forge the journal a crashed server would have left: two
        # submitted records, no terminal records.
        journal = str(tmp_path / "j.jsonl")
        j = JobJournal(journal, fsync_every=1)
        j.open()
        for x in (1, 2):
            key, norm = kind._resolve({"x": x})
            j.record_submitted(key, kind.name, norm)
        j.close()

        srv = ServerThread(journal=journal, use_processes=False).start()
        try:
            with ServiceClient(**srv.address) as c:
                deadline = time.time() + 30
                while len(kind.calls) < 2 and time.time() < deadline:
                    time.sleep(0.02)
                stats = c.stats()
                # Submitting the same work again is served at rest.
                resp = c.submit(kind.name, {"x": 1})
        finally:
            srv.stop()
        assert stats["counters"]["recovered"] == 2
        assert stats["counters"]["computed"] == 2
        assert resp["disposition"] == "cached"
        assert resp["job"]["result"]["tripled"] == 3
        assert len(kind.calls) == 2  # exactly once each
        live, _ = replay_journal(journal)
        assert live == []  # terminal records landed

    def test_recovered_completed_job_is_a_cache_hit(self, kind, tmp_path):
        # The crash lost the `done` record but the result reached the
        # at-rest store: replay must land as a hit, not a recompute —
        # and must write the missing terminal record.
        journal = str(tmp_path / "j.jsonl")
        key, norm = kind._resolve({"x": 5})
        cache.store_service_result(key, {"x": 5, "tripled": 15})
        j = JobJournal(journal, fsync_every=1)
        j.open()
        j.record_submitted(key, kind.name, norm)
        j.close()

        srv = ServerThread(journal=journal, use_processes=False).start()
        try:
            with ServiceClient(**srv.address) as c:
                stats = c.stats()
        finally:
            srv.stop()
        assert stats["counters"]["recovered"] == 1
        assert stats["counters"]["result_hits"] == 1
        assert stats["counters"]["computed"] == 0
        assert kind.calls == []
        live, _ = replay_journal(journal)
        assert live == []

    def test_unknown_kind_replay_fails_durably(self, tmp_path):
        # A journal from an older deployment may reference kinds this
        # server no longer registers: the record must turn terminal
        # instead of replaying (and warning) forever.
        journal = str(tmp_path / "j.jsonl")
        j = JobJournal(journal, fsync_every=1)
        j.open()
        j.record_submitted("stale-key", "no-such-kind", {"x": 1})
        j.close()
        srv = ServerThread(journal=journal, use_processes=False).start()
        try:
            with ServiceClient(**srv.address) as c:
                stats = c.stats()
        finally:
            srv.stop()
        assert stats["counters"]["recovered"] == 0
        live, _ = replay_journal(journal)
        assert live == []


class TestDrain:
    def test_drain_finishes_running_and_journals_queued(self, kind, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        kind.gate = threading.Event()
        srv = ServerThread(
            journal=journal, use_processes=False, workers=1
        ).start()
        try:
            with ServiceClient(**srv.address) as c:
                c.submit(kind.name, {"x": 1}, wait=False)  # runs, gated
                deadline = time.time() + 10
                while not kind.calls and time.time() < deadline:
                    time.sleep(0.01)
                c.submit(kind.name, {"x": 2}, wait=False)  # stays queued
                health = c.health()
                assert health["accepting"] is True
            # Give the running job a short budget, then release it
            # mid-drain so it finishes inside the window.
            t = threading.Timer(0.3, kind.gate.set)
            t.start()
            try:
                srv.drain(timeout=10)
            finally:
                t.cancel()
        finally:
            kind.gate.set()
            srv.stop()
        counters = srv.server.counters
        assert counters["drained"] == 1  # only the queued job
        assert len(kind.calls) == 1  # the queued job never started
        live, _ = replay_journal(journal)
        assert [rec["key"] for rec in live] == [kind._resolve({"x": 2})[0]]

        # The next start picks the drained job up.
        srv2 = ServerThread(journal=journal, use_processes=False).start()
        try:
            deadline = time.time() + 30
            while len(kind.calls) < 2 and time.time() < deadline:
                time.sleep(0.02)
        finally:
            srv2.stop()
        assert srv2.server.counters["recovered"] == 1
        assert len(kind.calls) == 2
        live, _ = replay_journal(journal)
        assert live == []

    def test_draining_server_rejects_submits_as_retryable(self, kind):
        from repro.service.client import ServiceBusyError

        kind.gate = threading.Event()
        srv = ServerThread(use_processes=False, workers=1).start()
        try:
            with ServiceClient(**srv.address) as c:
                c.submit(kind.name, {"x": 1}, wait=False)
                deadline = time.time() + 10
                while not kind.calls and time.time() < deadline:
                    time.sleep(0.01)
                # Start the drain without waiting for it, then poke the
                # draining server from a fresh connection.
                import asyncio

                asyncio.run_coroutine_threadsafe(
                    srv.server.drain(timeout=5), srv._loop
                )
                deadline = time.time() + 5
                while not srv.server._draining and time.time() < deadline:
                    time.sleep(0.01)
                with ServiceClient(**srv.address) as c2:
                    with pytest.raises(ServiceBusyError, match="draining"):
                        c2.submit(kind.name, {"x": 9})
        finally:
            kind.gate.set()
            srv.stop()


class TestRetryBudget:
    @staticmethod
    def _thread_pools(srv):
        from concurrent.futures import ThreadPoolExecutor

        srv.server._pool = ThreadPoolExecutor(max_workers=1)
        srv.server._new_pool = lambda: ThreadPoolExecutor(max_workers=1)

    def test_budget_exhaustion_fails_the_job(self, kind):
        from concurrent.futures.process import BrokenProcessPool

        def compute(params):
            kind.calls.append(dict(params))
            raise BrokenProcessPool("worker OOM-killed")

        jobs_mod.register_kind(kind.name, kind._resolve, compute)
        srv = ServerThread(use_processes=False, retries=1).start()
        try:
            self._thread_pools(srv)
            with ServiceClient(**srv.address) as c:
                with pytest.raises(ReproError, match="retry budget"):
                    c.submit(kind.name, {"x": 4})
                stats = c.stats()
        finally:
            srv.stop()
        assert len(kind.calls) == 2  # first attempt + 1 retry
        assert stats["counters"]["retried"] == 1
        assert stats["counters"]["pool_failures"] == 2
        assert stats["counters"]["failed"] == 1

    def test_zero_budget_fails_on_first_worker_death(self, kind):
        from concurrent.futures.process import BrokenProcessPool

        def compute(params):
            kind.calls.append(dict(params))
            raise BrokenProcessPool("worker died")

        jobs_mod.register_kind(kind.name, kind._resolve, compute)
        srv = ServerThread(use_processes=False, retries=0).start()
        try:
            self._thread_pools(srv)
            with ServiceClient(**srv.address) as c:
                with pytest.raises(ReproError, match="retry budget"):
                    c.submit(kind.name, {"x": 4})
                stats = c.stats()
        finally:
            srv.stop()
        assert len(kind.calls) == 1
        assert stats["counters"]["retried"] == 0

    @pytest.mark.skipif(
        not parallel.pool_allowed()
        or multiprocessing.get_start_method() != "fork",
        reason="needs a real fork-based process pool",
    )
    def test_sigkilled_pool_worker_retries_then_succeeds(
        self, kind, tmp_path
    ):
        # The real thing: the job SIGKILLs its own pool worker on the
        # first attempt (marker file arbitrates), which the server sees
        # as BrokenProcessPool; the retry on the replaced pool succeeds.
        marker = str(tmp_path / "died-once")

        def compute(params):
            if not os.path.exists(marker):
                with open(marker, "w") as fh:
                    fh.write("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return {"x": params["x"], "survived": True}

        jobs_mod.register_kind(kind.name, kind._resolve, compute)
        srv = ServerThread(use_processes=True, workers=1, retries=2).start()
        try:
            with ServiceClient(**srv.address) as c:
                resp = c.submit(kind.name, {"x": 6}, timeout=60)
                stats = c.stats()
        finally:
            srv.stop()
        assert resp["job"]["result"]["survived"] is True
        assert stats["counters"]["retried"] >= 1
        assert stats["counters"]["pool_failures"] >= 1
        assert stats["counters"]["failed"] == 0


# ---------------------------------------------------------------------------
# Subprocess chaos: a real `repro serve` killed and restarted
# ---------------------------------------------------------------------------
_LAUNCHER = """\
import sys
sys.path.insert(0, sys.argv.pop(1))
import time
from repro.service import jobs

def _resolve(params):
    x = int(params.get("x", 0))
    delay = float(params.get("delay", 0.0))
    return f"svc-subproc-chaos-{x}-{delay}", {"x": x, "delay": delay}

def _compute(params):
    time.sleep(params["delay"])
    return {"x": params["x"], "squared": params["x"] ** 2}

jobs.register_kind("chaos", _resolve, _compute)

from repro.cli import main
sys.argv[0] = "repro"
sys.exit(main())
"""


class _Server:
    """One `repro serve` subprocess with the chaos kind registered."""

    def __init__(self, tmp_path, cache_dir):
        self.tmp = tmp_path
        self.socket = str(tmp_path / "svc.sock")
        self.journal = str(tmp_path / "journal.jsonl")
        self.script = str(tmp_path / "launcher.py")
        with open(self.script, "w") as fh:
            fh.write(_LAUNCHER)
        self.env = {
            **os.environ,
            "PYTHONPATH": SRC,
            "REPRO_CACHE_DIR": cache_dir,
        }
        self.proc: subprocess.Popen | None = None

    def start(self, drain_timeout=10.0):
        if os.path.exists(self.socket):
            os.unlink(self.socket)
        self.proc = subprocess.Popen(
            [
                sys.executable, self.script, SRC, "serve",
                "--socket", self.socket, "--journal", self.journal,
                "--inline", "--workers", "2",
                "--drain-timeout", str(drain_timeout),
            ],
            env=self.env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        return self

    def wait_healthy(self, timeout=30.0) -> dict:
        """Readiness-gate on the health op, as the CI smoke does."""
        deadline = time.time() + timeout
        last: Exception | None = None
        while time.time() < deadline:
            if self.proc is not None and self.proc.poll() is not None:
                err = self.proc.stderr.read().decode(errors="replace")
                raise AssertionError(
                    f"server exited {self.proc.returncode}: {err}"
                )
            try:
                with self.client() as c:
                    health = c.health()
                if health.get("accepting"):
                    return health
            except ReproError as exc:
                last = exc
            time.sleep(0.05)
        raise AssertionError(f"server never became healthy: {last}")

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(socket_path=self.socket, **kwargs)

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=10)

    def sigterm(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=30)

    def stop(self):
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


class TestSubprocessChaos:
    def test_sigkill_midflight_then_journal_recovery(self, tmp_path):
        srv = _Server(tmp_path, str(tmp_path / "cache")).start()
        try:
            srv.wait_healthy()
            with srv.client() as c:
                done = c.submit("chaos", {"x": 2, "delay": 0.0})
                assert done["job"]["result"]["squared"] == 4
                c.submit("chaos", {"x": 3, "delay": 5.0}, wait=False)
                c.submit("chaos", {"x": 4, "delay": 5.0}, wait=False)
                deadline = time.time() + 10
                while time.time() < deadline:
                    if c.health()["running"] >= 2:
                        break
                    time.sleep(0.02)
            srv.sigkill()  # mid-flight: both slow jobs are running

            # SIGKILL never reached the journal: the two unfinished
            # submits are live (flushed to the OS, no fsync needed for
            # a process kill), the completed one is terminal.
            live, _ = replay_journal(srv.journal)
            assert {rec["params"]["x"] for rec in live} == {3, 4}

            srv.start()
            srv.wait_healthy()
            with srv.client() as c:
                deadline = time.time() + 60
                while time.time() < deadline:
                    health = c.health()
                    if (
                        health["counters"]["recovered"] == 2
                        and health["inflight"] == 0
                    ):
                        break
                    time.sleep(0.1)
                health = c.health()
                assert health["counters"]["recovered"] == 2
                # Exactly once: the replayed jobs computed here, and
                # nothing recomputed the job that finished pre-crash.
                assert health["counters"]["computed"] == 2
                again = c.submit("chaos", {"x": 2, "delay": 0.0})
                assert again["disposition"] == "cached"
                assert c.health()["counters"]["computed"] == 2
                c.shutdown()
        finally:
            srv.stop()

    def test_client_submit_survives_restart(self, tmp_path):
        srv = _Server(tmp_path, str(tmp_path / "cache")).start()
        try:
            srv.wait_healthy()
            restarted = threading.Event()

            def chaos_monkey():
                time.sleep(0.5)
                srv.sigkill()
                time.sleep(0.3)
                srv.start()
                restarted.set()

            monkey = threading.Thread(target=chaos_monkey)
            monkey.start()
            try:
                with srv.client(retries=20, backoff=0.2) as c:
                    # Sent to the first server, killed mid-wait; the
                    # retry layer reconnects and resubmits (idempotent
                    # by content key) against the restarted server.
                    resp = c.submit("chaos", {"x": 7, "delay": 2.0})
            finally:
                monkey.join(timeout=30)
            assert restarted.is_set()
            assert resp["job"]["result"]["squared"] == 49
            with srv.client() as c:
                c.shutdown()
        finally:
            srv.stop()

    def test_sigterm_drains_gracefully(self, tmp_path):
        srv = _Server(tmp_path, str(tmp_path / "cache")).start(
            drain_timeout=15.0
        )
        try:
            srv.wait_healthy()
            with srv.client() as c:
                c.submit("chaos", {"x": 5, "delay": 1.0}, wait=False)
                deadline = time.time() + 10
                while time.time() < deadline:
                    if c.health()["running"] >= 1:
                        break
                    time.sleep(0.02)
            rc = srv.sigterm()
            assert rc == 0  # drained, not crashed
            # The running job finished inside the drain window and its
            # terminal record landed: nothing is left to replay.
            live, _ = replay_journal(srv.journal)
            assert live == []
            # And the result is servable at rest after a restart.
            srv.start()
            srv.wait_healthy()
            with srv.client() as c:
                resp = c.submit("chaos", {"x": 5, "delay": 1.0})
                assert resp["disposition"] == "cached"
                assert resp["job"]["result"]["squared"] == 25
                c.shutdown()
        finally:
            srv.stop()

    def test_garbled_journal_degrades_gracefully(self, tmp_path):
        # Seed a journal with one good record and a garbage tail; the
        # server must start, warn, truncate and recover the prefix.
        srv = _Server(tmp_path, str(tmp_path / "cache"))
        j = JobJournal(srv.journal, fsync_every=1)
        j.open()
        key = "svc-subproc-chaos-9-0.0"
        j.record_submitted(key, "chaos", {"x": 9, "delay": 0.0})
        j.close()
        with open(srv.journal, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef not a record")
        srv.start()
        try:
            srv.wait_healthy()
            with srv.client() as c:
                deadline = time.time() + 30
                while time.time() < deadline:
                    health = c.health()
                    if health["inflight"] == 0:
                        break
                    time.sleep(0.05)
                assert health["counters"]["recovered"] == 1
                resp = c.submit("chaos", {"x": 9, "delay": 0.0})
                assert resp["disposition"] == "cached"
                assert resp["job"]["result"]["squared"] == 81
                c.shutdown()
        finally:
            srv.stop()
