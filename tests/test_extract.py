"""Tests for hot-loop extraction from program models (Figure 6.3 flow)."""

from __future__ import annotations

import pytest

from repro.graphs.program import Block, Loop, Program, Seq
from repro.reconfig import extract_hot_loops, iterative_partition, spatial_select
from repro.workloads import get_program, synth_pipeline_program
from tests.conftest import random_small_dfg


@pytest.fixture(scope="module")
def pipeline():
    return synth_pipeline_program("testpipe", n_kernels=4, frames=10)


class TestPipelineProgram:
    def test_structure(self, pipeline):
        # init block + one block per kernel stage.
        assert len(pipeline.basic_blocks) == 5

    def test_deterministic(self):
        a = synth_pipeline_program("p", n_kernels=3)
        b = synth_pipeline_program("p", n_kernels=3)
        assert a.wcet() == b.wcet()

    def test_salt_varies(self):
        a = synth_pipeline_program("p", n_kernels=3, salt=0)
        b = synth_pipeline_program("p", n_kernels=3, salt=1)
        assert a.wcet() != b.wcet()


class TestExtraction:
    def test_extracts_all_kernel_loops(self, pipeline):
        ex = extract_hot_loops(pipeline)
        # Four kernel stages; the outer frame loop owns no blocks directly
        # and therefore cannot become a hot loop itself.
        assert len(ex.loops) == 4

    def test_version_curves_monotone(self, pipeline):
        ex = extract_hot_loops(pipeline)
        for lp in ex.loops:
            areas = [v.area for v in lp.versions]
            gains = [v.gain for v in lp.versions]
            assert areas == sorted(areas)
            assert gains == sorted(gains)
            assert lp.versions[0].area == 0 and lp.versions[0].gain == 0

    def test_version_count_capped(self, pipeline):
        ex = extract_hot_loops(pipeline, max_versions=4)
        assert all(lp.n_versions <= 4 for lp in ex.loops)

    def test_trace_covers_all_loops_and_alternates(self, pipeline):
        ex = extract_hot_loops(pipeline)
        assert set(ex.trace) == set(range(len(ex.loops)))
        # Pipeline stages repeat per frame: the trace revisits each loop.
        first = ex.trace.index(0)
        assert 0 in ex.trace[first + 1 :]

    def test_coverage_reported(self, pipeline):
        ex = extract_hot_loops(pipeline)
        assert 0.5 <= ex.coverage <= 1.0

    def test_cold_program_no_loops(self):
        prog = Program("cold", Seq([Block(random_small_dfg(1, 6))]))
        ex = extract_hot_loops(prog)
        assert ex.loops == ()
        assert ex.trace == ()

    def test_threshold_filters_minor_loops(self):
        big = Loop(Block(random_small_dfg(2, 40)), bound=100)
        tiny = Loop(Block(random_small_dfg(3, 4)), bound=2)
        prog = Program("mix", Seq([big, tiny]))
        ex_all = extract_hot_loops(prog, hot_threshold=0.0001)
        ex_hot = extract_hot_loops(prog, hot_threshold=0.05)
        assert len(ex_hot.loops) < len(ex_all.loops)


class TestExtractionEndToEnd:
    def test_partitioning_on_extracted_loops(self, pipeline):
        ex = extract_hot_loops(pipeline)
        loops, trace = list(ex.loops), list(ex.trace)
        max_area = 0.4 * sum(max(v.area for v in lp.versions) for lp in loops)
        _sel, static_gain = spatial_select(loops, max_area)
        free = iterative_partition(loops, trace, max_area, rho=0.0)
        # Free reconfiguration must realize at least the static gain.
        assert free.gain >= static_gain - 1e-9

    def test_rho_sweep_monotone(self, pipeline):
        ex = extract_hot_loops(pipeline)
        loops, trace = list(ex.loops), list(ex.trace)
        max_area = 0.4 * sum(max(v.area for v in lp.versions) for lp in loops)
        gains = [
            iterative_partition(loops, trace, max_area, rho=r).gain
            for r in (0.0, 100.0, 10_000.0, 1e7)
        ]
        assert gains == sorted(gains, reverse=True)

    def test_single_loop_benchmarks_extract_one(self):
        ex = extract_hot_loops(get_program("crc32"))
        assert len(ex.loops) == 1
