"""Tests for the workload substrate (benchmarks, task sets, traces, cases)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    BENCHMARKS,
    BIOMONITOR_KERNELS,
    CH3_TASK_SETS,
    CH4_TASK_SETS,
    CH5_TASK_SETS,
    benchmark_names,
    biomonitor_program,
    biomonitor_programs,
    get_program,
    get_spec,
    jpeg_loops,
    jpeg_trace,
    programs_for,
    synthetic_loops,
    synthetic_trace,
)
from repro.workloads.synthesis import ProgramSpec, seed_for, synth_program


class TestBenchmarks:
    def test_table_5_1_benchmarks_present(self):
        for name in (
            "adpcm",
            "sha",
            "jfdctint",
            "g721decode",
            "lms",
            "ndes",
            "rijndael",
            "3des",
            "aes",
            "blowfish",
        ):
            assert name in BENCHMARKS

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            get_spec("nonexistent")

    def test_max_block_size_matches_spec(self):
        for name in ("sha", "adpcm", "ndes"):
            spec = get_spec(name)
            program = get_program(name)
            mx, _avg = program.block_stats()
            assert mx == spec.max_bb

    def test_wcet_close_to_spec(self):
        for name in ("sha", "crc32", "rijndael"):
            spec = get_spec(name)
            wcet = get_program(name).wcet()
            assert wcet == pytest.approx(spec.wcet_cycles, rel=0.25)

    def test_determinism(self):
        a = synth_program(get_spec("sha"))
        b = synth_program(get_spec("sha"))
        assert a.wcet() == b.wcet()
        assert [len(x.dfg) for x in a.basic_blocks] == [
            len(x.dfg) for x in b.basic_blocks
        ]

    def test_salt_changes_program(self):
        a = synth_program(get_spec("crc32"), salt=0)
        b = synth_program(get_spec("crc32"), salt=1)
        assert a.wcet() != b.wcet() or [len(x.dfg) for x in a.basic_blocks] != [
            len(x.dfg) for x in b.basic_blocks
        ]

    def test_seed_for_stable(self):
        assert seed_for("x") == seed_for("x")
        assert seed_for("x") != seed_for("y")

    def test_invalid_spec_rejected(self):
        with pytest.raises(WorkloadError):
            ProgramSpec("bad", "nope", max_bb=10, avg_bb=5)
        with pytest.raises(WorkloadError):
            ProgramSpec("bad", "dsp", max_bb=1, avg_bb=1)


class TestTaskSets:
    def test_ch3_compositions(self):
        assert len(CH3_TASK_SETS) == 6
        assert all(len(v) == 4 for v in CH3_TASK_SETS.values())
        assert CH3_TASK_SETS[1] == ("crc32", "sha", "jpeg_decoder", "blowfish")

    def test_ch4_sizes_grow(self):
        sizes = [len(CH4_TASK_SETS[i]) for i in range(1, 6)]
        assert sizes == [6, 7, 8, 9, 10]

    def test_ch5_compositions(self):
        assert CH5_TASK_SETS[1] == ("3des", "rijndael", "sha", "g721decode")

    def test_programs_for_instantiates_all(self):
        progs = programs_for(CH3_TASK_SETS[1])
        assert [p.name for p in progs] == list(CH3_TASK_SETS[1])

    def test_duplicates_get_distinct_instances(self):
        progs = programs_for(("crc32", "crc32"))
        assert progs[0] is not progs[1]

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            programs_for(())


class TestSyntheticLoops:
    def test_loop_count_and_software_version(self):
        loops = synthetic_loops(10, seed=1)
        assert len(loops) == 10
        for lp in loops:
            assert lp.versions[0].area == 0 and lp.versions[0].gain == 0

    def test_version_curves_monotone(self):
        for lp in synthetic_loops(20, seed=2):
            areas = [v.area for v in lp.versions]
            gains = [v.gain for v in lp.versions]
            assert areas == sorted(areas)
            assert gains == sorted(gains)

    def test_trace_covers_all_loops(self):
        trace = synthetic_trace(15, seed=3)
        assert set(trace) == set(range(15))

    def test_trace_deterministic(self):
        assert synthetic_trace(8, seed=4) == synthetic_trace(8, seed=4)


class TestJpeg:
    def test_eight_pipeline_loops(self):
        loops = jpeg_loops()
        assert len(loops) == 8
        names = [lp.name for lp in loops]
        assert "fdct_row" in names and "huffman_ac" in names

    def test_versions_fit_fabric(self):
        from repro.workloads import JPEG_MAX_AREA

        for lp in jpeg_loops():
            for v in lp.versions:
                assert v.area <= JPEG_MAX_AREA

    def test_trace_structure(self):
        trace = jpeg_trace(n_mcu=3)
        assert len(trace) == 24
        assert trace[:8] == list(range(8))


class TestBiomonitor:
    def test_all_kernels_build(self):
        progs = biomonitor_programs()
        assert len(progs) == len(BIOMONITOR_KERNELS)
        for p in progs:
            assert p.wcet() > 0

    def test_fixed_point_only(self):
        """Post fixed-point conversion: no floating-point ops exist (our
        opcode set is integer-only, but verify DIV-free DSP kernels too)."""
        from repro.isa.opcodes import Opcode

        for p in biomonitor_programs():
            for block in p.basic_blocks:
                for n in block.dfg.nodes:
                    assert block.dfg.op(n) != Opcode.DIV

    def test_kernels_customizable(self):
        """Every kernel's hot loop yields at least one profitable candidate."""
        from repro.enumeration import build_candidate_library

        for name in ("ecg_filter", "fall_detect", "ptt_compute"):
            program = biomonitor_program(name)
            lib = build_candidate_library(program)
            assert len(lib) > 0


class TestSdr:
    def test_loops_and_modes(self):
        from repro.workloads import SDR_MODE_A, SDR_MODE_B, sdr_loops

        loops = sdr_loops()
        assert len(loops) == 6
        assert set(SDR_MODE_A) | set(SDR_MODE_B) == set(range(6))
        assert not set(SDR_MODE_A) & set(SDR_MODE_B)

    def test_gains_scale_with_dwell(self):
        from repro.workloads import sdr_loops

        short = sdr_loops(frames_per_dwell=10)
        long = sdr_loops(frames_per_dwell=100)
        for a, b in zip(short, long):
            assert b.versions[-1].gain == pytest.approx(10 * a.versions[-1].gain)
            assert b.versions[-1].area == a.versions[-1].area

    def test_trace_alternates_modes(self):
        from repro.workloads import SDR_MODE_A, SDR_MODE_B, sdr_trace

        trace = sdr_trace(frames_per_dwell=2, dwells=2)
        first_half = trace[: len(trace) // 2]
        second_half = trace[len(trace) // 2 :]
        assert set(first_half) <= set(SDR_MODE_A)
        assert set(second_half) <= set(SDR_MODE_B)

    def test_reconfiguration_amortizes_with_dwell(self):
        """The thesis's mode-switching motivation: reconfiguration pays off
        once mode dwells are long enough to amortize the reload cost."""
        from repro.reconfig import iterative_partition, spatial_select
        from repro.workloads import SDR_MAX_AREA, sdr_loops, sdr_trace

        rho = 100.0
        advantages = []
        for dwell in (5, 80, 320):
            loops = sdr_loops(frames_per_dwell=dwell)
            trace = sdr_trace(frames_per_dwell=dwell)
            _sel, static = spatial_select(loops, SDR_MAX_AREA)
            it = iterative_partition(loops, trace, SDR_MAX_AREA, rho)
            advantages.append(it.gain / static)
        assert advantages == sorted(advantages)
        assert advantages[0] == pytest.approx(1.0)  # short dwell: stay static
        assert advantages[-1] > 1.5  # long dwell: reconfiguration wins big
