"""Tests for the structured program model (timing schema, profiles)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, IfElse, Loop, Program, Seq
from repro.isa.opcodes import Opcode
from tests.conftest import random_small_dfg


def _block(cycles: int) -> Block:
    """A block of exactly *cycles* single-cycle XOR ops."""
    dfg = DataFlowGraph()
    prev = None
    for _ in range(cycles):
        prev = dfg.add_op(Opcode.XOR, preds=[prev] if prev is not None else [])
    return Block(dfg)


class TestTimingSchema:
    def test_seq_sums(self):
        p = Program("p", Seq([_block(3), _block(5)]))
        assert p.wcet() == 8

    def test_loop_multiplies(self):
        p = Program("p", Loop(_block(4), bound=10))
        assert p.wcet() == 40

    def test_ifelse_takes_max(self):
        p = Program("p", IfElse(_block(3), _block(9)))
        assert p.wcet() == 9

    def test_nested_structure(self):
        inner = Loop(_block(2), bound=5)  # 10
        outer = Loop(Seq([_block(1), inner]), bound=3)  # 3 * 11
        p = Program("p", Seq([_block(4), outer]))
        assert p.wcet() == 4 + 33

    def test_loop_bound_validation(self):
        with pytest.raises(GraphError):
            Loop(_block(1), bound=0)

    def test_branch_probability_validation(self):
        with pytest.raises(GraphError):
            IfElse(_block(1), _block(1), taken_prob=1.5)

    def test_empty_program_rejected(self):
        with pytest.raises(GraphError):
            Program("empty", Seq([]))

    def test_custom_block_cost(self):
        b = _block(10)
        p = Program("p", Loop(b, bound=4))
        assert p.wcet(lambda blk: 2.0) == 8.0


class TestWcetPath:
    def test_path_picks_heavier_branch(self):
        heavy, light = _block(9), _block(2)
        p = Program("p", IfElse(heavy, light))
        path = p.wcet_path()
        assert len(path) == 1
        assert path[0].block is heavy

    def test_loop_blocks_scaled_by_bound(self):
        b = _block(2)
        p = Program("p", Loop(b, bound=7))
        path = p.wcet_path()
        assert path[0].count == 7
        assert path[0].cycles == 14

    def test_path_sorted_by_contribution(self, tiny_program):
        path = tiny_program.wcet_path()
        cycles = [w.cycles for w in path]
        assert cycles == sorted(cycles, reverse=True)

    def test_path_cycles_sum_to_wcet(self, tiny_program):
        path = tiny_program.wcet_path()
        assert sum(w.cycles for w in path) == pytest.approx(tiny_program.wcet())


class TestProfile:
    def test_profile_uses_avg_trip(self):
        b = _block(2)
        p = Program("p", Loop(b, bound=10, avg_trip=4.0))
        freq = p.profile()
        assert freq[0] == pytest.approx(4.0)

    def test_branch_probabilities_split_frequency(self):
        t, e = _block(1), _block(1)
        p = Program("p", IfElse(t, e, taken_prob=0.3))
        freq = p.profile()
        assert freq[0] == pytest.approx(0.3)
        assert freq[1] == pytest.approx(0.7)

    def test_avg_cycles_below_wcet_with_short_avg_trip(self, tiny_program):
        assert tiny_program.avg_cycles() < tiny_program.wcet()

    def test_block_stats(self, tiny_program):
        mx, avg = tiny_program.block_stats()
        assert mx == 8
        assert avg == pytest.approx((4 + 8 + 3) / 3)
