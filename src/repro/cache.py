"""Content-keyed memoization for identification artifacts.

Area/utilization sweeps (e.g. the Chapter 3 benches) re-run the
identification pipeline — candidate enumeration plus configuration-curve
construction — over the *same* programs at many budget points.  Both
artifacts depend only on the program's structure and the pipeline
parameters, so they are memoized behind a content key:

* **key** — SHA-256 over a canonical rendering of the program's syntax tree
  and every basic block's DFG (opcodes, edges, live-outs, live-in operand
  counts) plus the enumeration/selection parameters
  (:func:`program_fingerprint`, :func:`artifact_key`);
* **in-process LRU** — always on (disable per call with ``use_cache=False``
  or globally with :func:`set_enabled`);
* **on-disk JSON** — off by default; enabled by setting the
  ``REPRO_CACHE_DIR`` environment variable (or :func:`set_cache_dir`) to a
  writable directory, where artifacts persist across processes.

The cache stores immutable payloads (tuples of frozen dataclasses) and
returns them as fresh lists, so callers can mutate their copies freely.

The disk tier is hardened against a hostile filesystem: entries are
written atomically (unique tempfile + ``os.replace``) and carry a SHA-256
payload checksum; on load, a corrupt, truncated or checksum-mismatched
entry is treated as a plain miss — the offending file is quarantined with
a ``.corrupt`` suffix and a warning is logged once per observability epoch
(every occurrence is still counted on the ``cache.corrupt_entries``
metric; see :func:`repro.obs.reset`), never an exception, never a wrong
payload.

*Storage* of the persistent tier is pluggable (:mod:`repro.cache_backends`):
the default :class:`~repro.cache_backends.LocalDirBackend` keeps one JSON
file per entry under ``REPRO_CACHE_DIR`` with **LRU-by-mtime eviction**
under ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_ENTRIES`` budgets;
``REPRO_CACHE_BACKEND=shared`` selects the multi-host variant for shared
filesystems, and tests/embedders can :func:`set_backend` a
:class:`~repro.cache_backends.MemoryBackend`.  Envelope validation (this
module) is backend-independent, so every tier gets the same checksum and
quarantine guarantees.

Hit/miss accounting is mirrored into :mod:`repro.obs` under
``cache.<kind>.hits`` / ``.misses`` / ``.disk_hits``; the persistent
tier's occupancy/eviction/contention counters live under ``cache.disk.*``
and in the ``"disk"`` section of :func:`stats`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import weakref
from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path
from typing import Any

from repro import cache_backends, obs
from repro.cache_backends import CacheBackend
from repro.enumeration.patterns import Candidate
from repro.graphs.program import Block, IfElse, Loop, Program, Seq
from repro.selection.config_curve import TaskConfiguration

__all__ = [
    "artifact_key",
    "active_backend",
    "cache_dir",
    "cache_info",
    "disk_stats",
    "registered_kinds",
    "stats",
    "candidates_digest",
    "clear",
    "curves_digest",
    "dfg_digest",
    "fetch_candidates",
    "fetch_curve",
    "fetch_ksolutions",
    "fetch_mlgp",
    "fetch_mtsolution",
    "fetch_pareto",
    "fetch_partition",
    "fetch_selection",
    "fetch_service_result",
    "hot_loops_digest",
    "program_fingerprint",
    "reconfig_tasks_digest",
    "reset_backend",
    "reset_cache_dir",
    "set_backend",
    "set_cache_dir",
    "set_enabled",
    "store_candidates",
    "store_curve",
    "store_ksolutions",
    "store_mlgp",
    "store_mtsolution",
    "store_pareto",
    "store_partition",
    "store_selection",
    "store_service_result",
    "taskset_digest",
]

#: Bump when the serialized payload layout changes (stale disk entries with
#: an older schema are ignored, never misread).  2: entries carry a payload
#: checksum.
SCHEMA_VERSION = 2

_ENV_DIR = "REPRO_CACHE_DIR"

logger = logging.getLogger("repro.cache")


def _warn_corrupt_once(path: Path, reason: str) -> None:
    # Every occurrence is counted even when the log line is suppressed;
    # obs.reset() re-arms the log-once state (one line per epoch).
    obs.inc("cache.corrupt_entries")
    if obs.warn_once("cache.corrupt"):
        logger.warning(
            "corrupt cache entry %s (%s); quarantined as *.corrupt and treated "
            "as a miss (further corrupt entries are handled silently)",
            path.name,
            reason,
        )


def _quarantine(backend: CacheBackend, entry: str, reason: str) -> None:
    """Move a corrupt entry aside so it is never re-read, and log once."""
    backend.quarantine(entry, reason)
    _warn_corrupt_once(Path(entry), reason)


def _payload_checksum(payload: Any) -> str:
    """SHA-256 over the canonical JSON rendering of a payload."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


class _LRUCache:
    """A small thread-safe LRU map (no TTL; artifacts are content-keyed)."""

    def __init__(self, kind: str, maxsize: int) -> None:
        self.kind = kind
        self.maxsize = maxsize
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Any | None:
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                self.misses += 1
                obs.inc(f"cache.{self.kind}.misses")
                return None
            self._data[key] = value
            self.hits += 1
            obs.inc(f"cache.{self.kind}.hits")
            return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


#: Single registry of artifact kinds: stats()/clear() derive from it, so a
#: new kind can never drift out of the report or survive a clear().
_KINDS: dict[str, _LRUCache] = {}


def _register_kind(kind: str, maxsize: int) -> _LRUCache:
    lru = _LRUCache(kind, maxsize)
    _KINDS[kind] = lru
    return lru


_LIBRARIES = _register_kind("library", maxsize=256)
_CURVES = _register_kind("curve", maxsize=512)
_PARETO = _register_kind("pareto", maxsize=512)
_SELECTIONS = _register_kind("selection", maxsize=2048)
_PARTITIONS = _register_kind("partition", maxsize=256)
_MLGP = _register_kind("mlgp", maxsize=4096)
_KSOLUTIONS = _register_kind("ksolutions", maxsize=1024)
_MTSOLUTIONS = _register_kind("mtsolution", maxsize=512)
_SERVICE = _register_kind("service", maxsize=1024)
_enabled = True
_dir_override: Path | None | str = ""  # "" means "follow the environment"
_backend_override: CacheBackend | None | str = ""  # "" = derive from dir/env
#: Memoized auto-constructed backend: (directory, env signature) -> backend.
_auto_backend: tuple[tuple, CacheBackend] | None = None


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable the in-process and on-disk caches."""
    global _enabled
    _enabled = enabled


def set_cache_dir(path: str | os.PathLike | None) -> None:
    """Override the on-disk cache directory (``None`` disables the disk tier).

    Without an override the directory comes from the ``REPRO_CACHE_DIR``
    environment variable; when neither is set, no files are written.  Use
    :func:`reset_cache_dir` to drop the override and follow the environment
    again.
    """
    global _dir_override
    _dir_override = None if path is None else Path(path)


def reset_cache_dir() -> None:
    """Drop any :func:`set_cache_dir` override; follow ``REPRO_CACHE_DIR``."""
    global _dir_override
    _dir_override = ""


def cache_dir() -> Path | None:
    """The active on-disk cache directory, or ``None`` when disabled."""
    if _dir_override != "":
        return _dir_override  # type: ignore[return-value]
    env = os.environ.get(_ENV_DIR)
    return Path(env) if env else None


def set_backend(backend: CacheBackend | None) -> None:
    """Override the persistent-tier backend (``None`` disables the tier).

    Takes precedence over :func:`set_cache_dir` / ``REPRO_CACHE_DIR``; use
    :func:`reset_backend` to drop the override and derive the backend from
    the directory and ``REPRO_CACHE_BACKEND`` again.
    """
    global _backend_override
    _backend_override = backend


def reset_backend() -> None:
    """Drop any :func:`set_backend` override and the memoized auto
    backend; follow the directory/environment again."""
    global _backend_override, _auto_backend
    _backend_override = ""
    _auto_backend = None


def active_backend() -> CacheBackend | None:
    """The persistent-tier backend in effect, or ``None`` when disabled.

    Without a :func:`set_backend` override the backend is constructed from
    :func:`cache_dir` and the ``REPRO_CACHE_BACKEND`` /
    ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_ENTRIES`` environment,
    and memoized until any of those change.
    """
    global _auto_backend
    if _backend_override != "":
        return _backend_override  # type: ignore[return-value]
    d = cache_dir()
    if d is None:
        return None
    sig = (
        str(d),
        os.environ.get(cache_backends.ENV_BACKEND),
        os.environ.get(cache_backends.ENV_MAX_BYTES),
        os.environ.get(cache_backends.ENV_MAX_ENTRIES),
    )
    if _auto_backend is not None and _auto_backend[0] == sig:
        return _auto_backend[1]
    backend = cache_backends.backend_from_env(d)
    _auto_backend = (sig, backend)
    # Seed the cache.disk.* occupancy gauges so even read-only runs
    # surface the tier in metrics snapshots / trace summaries.
    backend.stats()
    return backend


def disk_stats() -> dict[str, Any] | None:
    """Occupancy/eviction/contention stats of the persistent tier, or
    ``None`` when no backend is active (the ``"disk"`` row of
    :func:`stats`)."""
    backend = active_backend()
    return backend.stats() if backend is not None else None


def clear(disk: bool = False) -> None:
    """Drop all in-process entries of every registered kind, zero every
    hit/miss counter (and optionally delete the persistent-tier entries)."""
    for lru in _KINDS.values():
        lru.clear()
    if disk:
        backend = active_backend()
        if backend is not None:
            backend.clear()


def registered_kinds() -> tuple[str, ...]:
    """Every artifact kind known to the cache, sorted."""
    return tuple(sorted(_KINDS))


def stats() -> dict[str, dict[str, Any]]:
    """Hit/miss/size counters per artifact kind (for tests and reports).

    The per-kind rows are derived from the kind registry, so those keys
    are exactly :func:`registered_kinds` — a kind can never drift out of
    the report.  When a persistent-tier backend is active, one extra
    ``"disk"`` row carries its occupancy/eviction/contention stats
    (:func:`disk_stats`).
    """
    out: dict[str, dict[str, Any]] = {
        kind: {"hits": lru.hits, "misses": lru.misses, "size": len(lru)}
        for kind, lru in sorted(_KINDS.items())
    }
    disk = disk_stats()
    if disk is not None:
        out["disk"] = disk
    return out


#: Backwards-compatible alias (pre-observability name).
cache_info = stats


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------
def _construct_repr(node: Any, block_ids: dict[int, int]) -> Any:
    if isinstance(node, Block):
        return ("B", block_ids[id(node)])
    if isinstance(node, Seq):
        return ("S", tuple(_construct_repr(c, block_ids) for c in node.children))
    if isinstance(node, Loop):
        return (
            "L",
            node.bound,
            node.avg_trip,
            _construct_repr(node.body, block_ids),
        )
    if isinstance(node, IfElse):
        return (
            "I",
            node.taken_prob,
            _construct_repr(node.then_branch, block_ids),
            _construct_repr(node.else_branch, block_ids),
        )
    raise TypeError(f"unknown construct {type(node).__name__}")


def _dfg_repr(block: Block) -> tuple:
    dfg = block.dfg
    return tuple(
        (
            dfg.op(n).value,
            tuple(dfg.preds(n)),
            dfg.is_live_out(n),
            dfg.external_inputs(n),
        )
        for n in dfg.nodes
    )


_FINGERPRINTS: "weakref.WeakKeyDictionary[Program, str]" = weakref.WeakKeyDictionary()


def program_fingerprint(program: Program) -> str:
    """SHA-256 hex digest of a program's structure.

    Two programs with identical syntax trees (bounds, trip counts, branch
    probabilities) and identical basic-block DFGs (opcodes, dependence
    edges, live-outs, live-in operand counts) get the same fingerprint, so
    identification artifacts computed for one are valid for the other.
    Names are deliberately excluded — the cache is content-addressed.
    Memoized per program object (programs are treated as immutable once
    handed to the pipeline).
    """
    memo = _FINGERPRINTS.get(program)
    if memo is not None:
        return memo
    blocks = program.basic_blocks
    block_ids = {id(b): i for i, b in enumerate(blocks)}
    payload = repr(
        (
            _construct_repr(program.root, block_ids),
            tuple(_dfg_repr(b) for b in blocks),
        )
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()
    _FINGERPRINTS[program] = digest
    return digest


_DFG_DIGESTS: "weakref.WeakKeyDictionary[Any, str]" = weakref.WeakKeyDictionary()


def dfg_digest(dfg: Any) -> str:
    """SHA-256 hex digest of one DFG's structure (for MLGP cache keys).

    Covers opcodes, dependence edges, live-outs and live-in operand
    counts — the same per-block rendering :func:`program_fingerprint`
    uses.  Memoized per DFG object (DFGs are treated as immutable once
    handed to the partitioning pipeline, like programs).
    """
    memo = _DFG_DIGESTS.get(dfg)
    if memo is not None:
        return memo
    payload = repr(
        tuple(
            (
                dfg.op(n).value,
                tuple(dfg.preds(n)),
                dfg.is_live_out(n),
                dfg.external_inputs(n),
            )
            for n in dfg.nodes
        )
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()
    _DFG_DIGESTS[dfg] = digest
    return digest


def hot_loops_digest(loops: Sequence[Any], trace: Sequence[int]) -> str:
    """SHA-256 hex digest of hot loops + their trace (Ch. 6 cache keys).

    Covers every loop's (area, gain) version curve in loop order plus the
    execution trace; names are excluded (content addressing).
    """
    payload = repr(
        (
            tuple(
                tuple((v.area, v.gain) for v in lp.versions) for lp in loops
            ),
            tuple(trace),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def reconfig_tasks_digest(tasks: Sequence[Any]) -> str:
    """SHA-256 hex digest of reconfigurable tasks (Ch. 7 cache keys).

    Covers periods and every version's (area, cycles) pair in task order
    (:class:`repro.mtreconfig.model.ReconfigTask`); names are excluded.
    """
    payload = repr(
        tuple(
            (t.period, tuple((v.area, v.cycles) for v in t.versions))
            for t in tasks
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def candidates_digest(candidates: Sequence[Candidate]) -> str:
    """SHA-256 hex digest of a candidate list (for curve cache keys)."""
    payload = repr(
        tuple(
            (
                c.block_index,
                tuple(sorted(c.nodes)),
                c.sw_cycles,
                c.hw_cycles,
                c.area,
                c.frequency,
            )
            for c in candidates
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def taskset_digest(task_set: Any) -> str:
    """SHA-256 hex digest of a task set's schedulability-relevant content.

    Covers periods and every configuration's (area, cycles) pair, in task
    order; names are deliberately excluded (content addressing, as with
    :func:`program_fingerprint`).  Accepts any object with a ``tasks``
    sequence of objects carrying ``period`` and ``configurations``.
    """
    payload = repr(
        tuple(
            (t.period, tuple((c.area, c.cycles) for c in t.configurations))
            for t in task_set.tasks
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def curves_digest(tasks: Sequence[Any]) -> str:
    """SHA-256 hex digest of per-task workload-area curves (Ch. 4 inputs).

    Accepts any sequence of objects with ``period``, ``workloads`` and
    ``areas`` attributes (:class:`repro.pareto.inter.TaskCurve`).
    """
    payload = repr(tuple((t.period, t.workloads, t.areas) for t in tasks))
    return hashlib.sha256(payload.encode()).hexdigest()


def artifact_key(fingerprint: str, **params: Any) -> str:
    """Key for one artifact: program fingerprint + pipeline parameters."""
    canon = json.dumps(params, sort_keys=True, default=repr)
    return hashlib.sha256(
        f"{SCHEMA_VERSION}:{fingerprint}:{canon}".encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# Serialization (on-disk JSON tier)
# ----------------------------------------------------------------------
def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def _candidate_to_jsonable(c: Candidate) -> dict[str, Any]:
    return {
        "block_index": c.block_index,
        "nodes": sorted(c.nodes),
        "sw_cycles": c.sw_cycles,
        "hw_cycles": c.hw_cycles,
        "area": c.area,
        "inputs": c.inputs,
        "outputs": c.outputs,
        "frequency": c.frequency,
        "structural_key": c.structural_key,
    }


def _candidate_from_jsonable(d: dict[str, Any]) -> Candidate:
    return Candidate(
        block_index=d["block_index"],
        nodes=frozenset(d["nodes"]),
        sw_cycles=d["sw_cycles"],
        hw_cycles=d["hw_cycles"],
        area=d["area"],
        inputs=d["inputs"],
        outputs=d["outputs"],
        frequency=d["frequency"],
        structural_key=_tuplify(d["structural_key"]),
    )


def _configuration_to_jsonable(p: TaskConfiguration) -> dict[str, Any]:
    return {"area": p.area, "cycles": p.cycles, "selected": list(p.selected)}


def _configuration_from_jsonable(d: dict[str, Any]) -> TaskConfiguration:
    return TaskConfiguration(
        area=d["area"], cycles=d["cycles"], selected=tuple(d["selected"])
    )


def _entry_name(kind: str, key: str) -> str:
    return f"repro-cache-{kind}-{key[:40]}.json"


def _disk_read(kind: str, key: str) -> Any | None:
    backend = active_backend()
    if backend is None:
        return None
    entry = _entry_name(kind, key)
    text = backend.load(entry)
    if text is None:
        return None
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        # Truncated write, bit rot, or a foreign file wearing our name.
        _quarantine(backend, entry, "not valid JSON")
        return None
    if not isinstance(data, dict):
        _quarantine(backend, entry, "entry is not a JSON object")
        return None
    if data.get("schema") != SCHEMA_VERSION:
        # A legitimately stale entry from an older layout: a plain miss
        # (it will be overwritten by the next store), not corruption.
        return None
    if data.get("key") != key:
        _quarantine(backend, entry, "key does not match the file name")
        return None
    payload = data.get("payload")
    try:
        checksum = _payload_checksum(payload)
    except (TypeError, ValueError):
        _quarantine(backend, entry, "payload is not canonically serializable")
        return None
    if data.get("checksum") != checksum:
        _quarantine(backend, entry, "payload checksum mismatch")
        return None
    # A validated hit refreshes the entry's LRU position, so hot
    # artifacts survive budget-bound eviction sweeps.
    backend.touch(entry)
    return payload


def _disk_write(kind: str, key: str, payload: Any) -> None:
    backend = active_backend()
    if backend is None:
        return
    text = json.dumps({
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "key": key,
        "checksum": _payload_checksum(payload),
        "payload": payload,
    })
    backend.store(_entry_name(kind, key), text)


# ----------------------------------------------------------------------
# Typed fetch/store
# ----------------------------------------------------------------------
def _fetch(
    lru: _LRUCache,
    kind: str,
    key: str,
    decode: Callable[[dict[str, Any]], Any],
) -> list[Any] | None:
    if not _enabled:
        return None
    cached = lru.get(key)
    if cached is not None:
        return list(cached)
    raw = _disk_read(kind, key)
    if raw is None:
        return None
    obs.inc(f"cache.{kind}.disk_hits")
    values = [decode(d) for d in raw]
    lru.put(key, tuple(values))
    return values


def _store(
    lru: _LRUCache,
    kind: str,
    key: str,
    values: Iterable[Any],
    encode: Callable[[Any], dict[str, Any]],
) -> None:
    if not _enabled:
        return
    frozen = tuple(values)
    lru.put(key, frozen)
    if active_backend() is not None:
        _disk_write(kind, key, [encode(v) for v in frozen])


def _fetch_json(lru: _LRUCache, kind: str, key: str) -> Any | None:
    """Generic JSON-payload fetch (LRU stores the serialized form, so every
    hit hands back a fresh deep copy the caller can mutate freely)."""
    if not _enabled:
        return None
    cached = lru.get(key)
    if cached is not None:
        return json.loads(cached)
    raw = _disk_read(kind, key)
    if raw is None:
        return None
    obs.inc(f"cache.{kind}.disk_hits")
    lru.put(key, json.dumps(raw))
    return raw


def _store_json(lru: _LRUCache, kind: str, key: str, payload: Any) -> None:
    if not _enabled:
        return
    lru.put(key, json.dumps(payload))
    if active_backend() is not None:
        _disk_write(kind, key, payload)


def fetch_candidates(key: str) -> list[Candidate] | None:
    """Cached candidate list for *key*, or None on a miss."""
    return _fetch(_LIBRARIES, "library", key, _candidate_from_jsonable)


def store_candidates(key: str, candidates: Sequence[Candidate]) -> None:
    """Memoize a built candidate library."""
    _store(_LIBRARIES, "library", key, candidates, _candidate_to_jsonable)


def fetch_curve(key: str) -> list[TaskConfiguration] | None:
    """Cached configuration curve for *key*, or None on a miss."""
    return _fetch(_CURVES, "curve", key, _configuration_from_jsonable)


def store_curve(key: str, curve: Sequence[TaskConfiguration]) -> None:
    """Memoize a built configuration curve."""
    _store(_CURVES, "curve", key, curve, _configuration_to_jsonable)


def fetch_pareto(key: str) -> list[dict[str, Any]] | None:
    """Cached Pareto curve (``{"value", "cost", "choice"}`` dicts) or None."""
    return _fetch_json(_PARETO, "pareto", key)


def store_pareto(key: str, points: Sequence[dict[str, Any]]) -> None:
    """Memoize a computed Pareto curve (jsonable point dicts)."""
    _store_json(_PARETO, "pareto", key, list(points))


def fetch_selection(key: str) -> dict[str, Any] | None:
    """Cached selection result (solver-specific jsonable dict) or None."""
    return _fetch_json(_SELECTIONS, "selection", key)


def store_selection(key: str, payload: dict[str, Any]) -> None:
    """Memoize a selection-solver result."""
    _store_json(_SELECTIONS, "selection", key, payload)


def fetch_partition(key: str) -> dict[str, Any] | None:
    """Cached reconfiguration-partition result or None."""
    return _fetch_json(_PARTITIONS, "partition", key)


def store_partition(key: str, payload: dict[str, Any]) -> None:
    """Memoize a reconfiguration-partition result."""
    _store_json(_PARTITIONS, "partition", key, payload)


def fetch_mlgp(key: str) -> dict[str, Any] | None:
    """Cached MLGP region result (partitions/gains/areas dict) or None."""
    return _fetch_json(_MLGP, "mlgp", key)


def store_mlgp(key: str, payload: dict[str, Any]) -> None:
    """Memoize an MLGP region result."""
    _store_json(_MLGP, "mlgp", key, payload)


def fetch_ksolutions(key: str) -> list[dict[str, Any]] | None:
    """Cached per-k candidate solution list (Algorithm 6 phase 1-3) or None."""
    return _fetch_json(_KSOLUTIONS, "ksolutions", key)


def store_ksolutions(key: str, payload: Sequence[dict[str, Any]]) -> None:
    """Memoize the candidate solutions of one configuration count k."""
    _store_json(_KSOLUTIONS, "ksolutions", key, list(payload))


def fetch_service_result(key: str) -> dict[str, Any] | None:
    """Cached :mod:`repro.service` job result (jsonable dict) or None.

    The service's at-rest dedup tier: completed job results are
    content-keyed like every other artifact, so workers — including
    workers on *other hosts* sharing a :class:`SharedDirBackend`
    directory — serve repeated requests straight from the store.
    """
    return _fetch_json(_SERVICE, "service", key)


def store_service_result(key: str, payload: dict[str, Any]) -> None:
    """Memoize a completed service job result."""
    _store_json(_SERVICE, "service", key, payload)


def fetch_mtsolution(key: str) -> dict[str, Any] | None:
    """Cached Chapter 7 DP solution or None."""
    return _fetch_json(_MTSOLUTIONS, "mtsolution", key)


def store_mtsolution(key: str, payload: dict[str, Any]) -> None:
    """Memoize a Chapter 7 DP solution."""
    _store_json(_MTSOLUTIONS, "mtsolution", key, payload)
