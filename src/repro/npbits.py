"""NumPy bitset-matrix kernels shared by the ``engine="array"`` fast paths.

The bitset engines (PR 1/5) represent node sets as Python int bitmasks —
one arbitrary-precision int per subgraph.  The array engines restructure
that state as **uint64 bitset matrices**: a batch of ``B`` node sets over
an ``n``-node DFG is a ``(B, n_words)`` ndarray with ``n_words =
ceil(n / 64)``, bit ``n`` of a row (little-endian word order) marking node
``n``'s membership.  Set algebra over a whole batch then becomes a single
vectorized ``&``/``|``/``~`` pass, and per-row population counts /
emptiness tests become one reduction — no per-candidate Python.

Population counting uses :func:`numpy.bitwise_count` (NumPy >= 2.0) when
available and falls back to an 8-bit lookup table otherwise; the fallback
is also forced by setting the ``REPRO_NO_BITWISE_COUNT`` environment
variable (non-empty) so the compatibility path stays exercised on CI even
with a modern NumPy installed.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "n_words",
    "pack_masks",
    "unpack_bits",
    "bit_rows",
    "low_mask_rows",
    "row_to_int",
    "popcount_rows",
    "popcount_u64",
    "nonzero_rows",
    "set_bits_csr",
    "HAVE_BITWISE_COUNT",
]

#: Env knob forcing the lookup-table popcount (compatibility/chaos testing).
_ENV_NO_BITWISE_COUNT = "REPRO_NO_BITWISE_COUNT"

#: True when :func:`numpy.bitwise_count` exists *and* is not disabled via
#: the environment.  Read at import; tests monkeypatch module state via
#: :func:`popcount_rows`'s dispatch instead of re-importing.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count") and not os.environ.get(
    _ENV_NO_BITWISE_COUNT
)

#: 8-bit population-count lookup table for the fallback path.
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def n_words(n_bits: int) -> int:
    """Words needed for an *n_bits*-bit bitset (at least one)."""
    return max(1, (n_bits + 63) >> 6)


def pack_masks(masks, words: int) -> np.ndarray:
    """Pack Python int bitmasks into a ``(len(masks), words)`` uint64 matrix.

    Little-endian word order: word ``w`` holds bits ``64*w .. 64*w + 63``.
    """
    nbytes = words * 8
    buf = b"".join(m.to_bytes(nbytes, "little") for m in masks)
    return (
        np.frombuffer(buf, dtype="<u8").reshape(len(masks), words).copy()
    )


def bit_rows(n_bits: int, words: int) -> np.ndarray:
    """One-hot matrix: row ``i`` is the bitset ``{i}`` (``(n_bits, words)``)."""
    out = np.zeros((n_bits, words), dtype=np.uint64)
    idx = np.arange(n_bits)
    out[idx, idx >> 6] = np.uint64(1) << (idx & 63).astype(np.uint64)
    return out


def low_mask_rows(thresholds, words: int) -> np.ndarray:
    """Rows with bits ``[0, t)`` set, one per threshold ``t``.

    Vectorized equivalent of packing ``(1 << t) - 1`` per row.
    """
    t = np.asarray(thresholds, dtype=np.int64)
    k = np.clip(t[:, None] - (np.arange(words, dtype=np.int64) << 6), 0, 64)
    shifted = np.uint64(1) << np.minimum(k, 63).astype(np.uint64)
    return np.where(
        k >= 64, np.uint64(0xFFFFFFFFFFFFFFFF), shifted - np.uint64(1)
    )


def row_to_int(row: np.ndarray) -> int:
    """One uint64 bitset row back to a Python int bitmask."""
    return int.from_bytes(np.ascontiguousarray(row).tobytes(), "little")


def unpack_bits(rows: np.ndarray, n_bits: int) -> np.ndarray:
    """Expand ``(B, words)`` uint64 bitsets to a ``(B, n_bits)`` uint8 matrix.

    Column ``n`` is node ``n``'s membership flag; column order matches bit
    order, so ``np.nonzero`` on the result yields ascending node ids per
    row (row-major).
    """
    rows = np.ascontiguousarray(rows)
    as_bytes = rows.view(np.uint8).reshape(rows.shape[0], -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :n_bits]


def popcount_rows(rows: np.ndarray) -> np.ndarray:
    """Per-row population count of a ``(B, words)`` uint64 matrix.

    Dispatches to :func:`numpy.bitwise_count` when available; otherwise an
    8-bit table lookup over the byte view (bit-identical results).
    """
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(rows).sum(axis=-1, dtype=np.int64)
    rows = np.ascontiguousarray(rows)
    as_bytes = rows.view(np.uint8).reshape(rows.shape[0], -1)
    return _POP8[as_bytes].sum(axis=-1, dtype=np.int64)


def nonzero_rows(rows: np.ndarray) -> np.ndarray:
    """Boolean per-row "any bit set" test of a ``(B, words)`` matrix."""
    if rows.shape[-1] == 1:
        return rows[:, 0] != 0
    return rows.any(axis=-1)


def popcount_u64(values: np.ndarray) -> np.ndarray:
    """Elementwise population count of a uint64 array (same shape)."""
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(values).astype(np.int64)
    flat = np.ascontiguousarray(values).reshape(-1)
    as_bytes = flat.view(np.uint8).reshape(flat.shape[0], 8)
    return _POP8[as_bytes].sum(axis=-1, dtype=np.int64).reshape(values.shape)


def set_bits_csr(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Set-bit ids of each row of a ``(B, words)`` matrix, in CSR form.

    Returns ``(flat_ids, ranks)``: the bit ids of every row concatenated
    (ascending per row) and each id's 0-based rank within its row.  Works
    on the packed words directly — ``np.nonzero`` touches only the
    ``(B, words)`` word matrix (not an unpacked ``(B, n)`` bit matrix),
    then the set bits of the surviving nonzero words are peeled lowest
    bit first in ``max-popcount-per-word`` vectorized passes.
    """
    if rows.size <= 512:
        # Tiny batch: one dense nonzero over the unpacked bit matrix beats
        # the peel loop's per-pass call overhead.
        _rw, ids = np.nonzero(unpack_bits(rows, rows.shape[1] << 6))
        ids = ids.astype(np.int64, copy=False)
        counts = popcount_rows(rows)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        ranks = np.arange(ids.shape[0], dtype=np.int64) - np.repeat(
            starts, counts
        )
        return ids, ranks
    rw, cw = np.nonzero(rows)
    words = rows[rw, cw]
    if words.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    base = cw.astype(np.int64) << 6
    # Counting placement: word order is row-major ascending and the peel
    # emits each word's bits low-to-high, so bit ``p`` of word ``t`` lands
    # at ``word_off[t] + p`` — a direct scatter, no sort needed.
    pc_word = popcount_u64(words)
    word_off = np.concatenate(([0], np.cumsum(pc_word)[:-1]))
    total = int(pc_word[-1] + word_off[-1])
    out_ids = np.empty(total, dtype=np.int64)
    alive = np.arange(words.shape[0], dtype=np.int64)
    one = np.uint64(1)
    p = 0
    while alive.size:
        low = words & (~words + one)
        out_ids[word_off[alive] + p] = base[alive] + popcount_u64(low - one)
        words ^= low
        keep = words != 0
        alive = alive[keep]
        words = words[keep]
        p += 1
    counts = popcount_rows(rows)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    ranks = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return out_ids, ranks
