"""Exact ILP for the Chapter 7 partitioning model (thesis Section 7.3.1).

Implements the three stated constraint families over binaries
``x_{i,j}`` (task *i* runs version *j*) and ``z`` (more than one
configuration in use):

* **uniqueness** — ``sum_j x_{i,j} = 1`` for every task;
* **resource** — with a single configuration (``z = 0``) all selected
  hardware versions must co-reside: ``sum_{i,j>0} area_{i,j} x_{i,j} <= A``;
  with multiple configurations the constraint is relaxed (every version
  individually fits ``A`` by construction) — modeled as
  ``sum area x <= A + M z``;
* **scheduling / objective** — effective utilization
  ``sum_{i,j} (cycles_{i,j} x_{i,j} + rho w_{i,j}) / P_i`` is minimized,
  where ``w_{i,j} >= x_{i,j} + z - 1`` linearizes the reconfiguration tax
  paid by hardware versions when ``z = 1``; optionally ``U <= 1`` is
  enforced as a hard deadline constraint.

Solved with ``scipy.optimize.milp`` (HiGHS).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro import obs
from repro.errors import SolverError
from repro.mtreconfig.dp import _pack_first_fit
from repro.mtreconfig.model import MTSolution, ReconfigTask, effective_utilization

__all__ = ["IlpReport", "ilp_solution"]


@dataclass(frozen=True)
class IlpReport:
    """ILP outcome plus timing for the thesis Table 7.2 comparison."""

    solution: MTSolution
    elapsed: float


def ilp_solution(
    tasks: Sequence[ReconfigTask],
    fabric_area: float,
    rho: float,
    enforce_deadline: bool = False,
    time_limit: float | None = None,
) -> IlpReport:
    """Optimal solution of the Chapter 7 model via MILP.

    Args:
        tasks: the periodic tasks with CIS versions.
        fabric_area: area of one fabric configuration.
        rho: reconfiguration cost.
        enforce_deadline: additionally require ``U <= 1``.
        time_limit: optional solver limit in seconds.

    Returns:
        An :class:`IlpReport`.

    Raises:
        SolverError: if the MILP backend fails (e.g. infeasible with
            ``enforce_deadline``).
    """
    start = time.perf_counter()
    with obs.span("mtreconfig.ilp", tasks=len(tasks)):
        return _ilp_solution(
            tasks, fabric_area, rho, enforce_deadline, time_limit, start
        )


def _ilp_solution(
    tasks: Sequence[ReconfigTask],
    fabric_area: float,
    rho: float,
    enforce_deadline: bool,
    time_limit: float | None,
    start: float,
) -> IlpReport:
    n = len(tasks)
    # Variable layout: x_{i,j} for usable versions, then w_{i,j} mirrors of
    # hardware x variables, then z last.
    x_index: dict[tuple[int, int], int] = {}
    cursor = 0
    for i, task in enumerate(tasks):
        for j, v in enumerate(task.versions):
            if j > 0 and v.area > fabric_area:
                continue  # can never fit any configuration
            x_index[(i, j)] = cursor
            cursor += 1
    w_index: dict[tuple[int, int], int] = {}
    for (i, j) in x_index:
        if j > 0:
            w_index[(i, j)] = cursor
            cursor += 1
    z_col = cursor
    n_vars = cursor + 1

    c = np.zeros(n_vars)
    for (i, j), col in x_index.items():
        c[col] = tasks[i].versions[j].cycles / tasks[i].period
    for (i, j), col in w_index.items():
        c[col] = rho / tasks[i].period

    constraints = []
    # Uniqueness.
    for i in range(n):
        row = np.zeros(n_vars)
        for (ti, j), col in x_index.items():
            if ti == i:
                row[col] = 1.0
        constraints.append(LinearConstraint(row, 1.0, 1.0))
    # Resource (relaxed when z = 1).
    big_m = sum(
        max(v.area for v in t.versions) for t in tasks
    )
    row = np.zeros(n_vars)
    for (i, j), col in x_index.items():
        if j > 0:
            row[col] = tasks[i].versions[j].area
    row[z_col] = -big_m
    constraints.append(LinearConstraint(row, -np.inf, fabric_area))
    # Linking w >= x + z - 1  <=>  x + z - w <= 1.
    for (i, j), wcol in w_index.items():
        row = np.zeros(n_vars)
        row[x_index[(i, j)]] = 1.0
        row[z_col] = 1.0
        row[wcol] = -1.0
        constraints.append(LinearConstraint(row, -np.inf, 1.0))
    # Optional hard deadline U <= 1.
    if enforce_deadline:
        constraints.append(LinearConstraint(c.copy(), -np.inf, 1.0))

    integrality = np.ones(n_vars)
    bounds = Bounds(np.zeros(n_vars), np.ones(n_vars))
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if not result.success:
        raise SolverError(f"Chapter 7 MILP failed: {result.message}")

    selection = [0] * n
    for (i, j), col in x_index.items():
        if result.x[col] > 0.5:
            selection[i] = j
    z = result.x[z_col] > 0.5
    if z:
        group_of = _pack_first_fit(tasks, selection, fabric_area)
    else:
        group_of = [0] * n
    util = effective_utilization(tasks, selection, group_of, rho)
    solution = MTSolution(
        selection=tuple(selection), group_of=tuple(group_of), utilization=util
    )
    return IlpReport(solution=solution, elapsed=time.perf_counter() - start)
