"""Model for runtime reconfiguration in multi-tasking systems (Ch. 7).

Periodic hard real-time tasks share a runtime-reconfigurable CFU fabric of
area ``A``.  Each task has CIS *versions* trading area for execution time
(version 0 = software).  Selected versions are grouped into
*configurations*; the fabric holds one configuration at a time, and loading
a configuration costs ``rho`` time units.

The Chapter 7 text in the source is partially truncated; the model below
follows its abstract, section structure and ILP constraint families
(uniqueness / resource / scheduling) — see DESIGN.md:

* **uniqueness** — every task runs exactly one version, and a hardware
  version lives in exactly one configuration;
* **resource** — the versions co-resident in a configuration fit ``A``;
* **scheduling (deadlines)** — with more than one configuration, in the
  worst case every job of a hardware task must (re)load its configuration,
  so its effective cost is ``cycles + rho``; the task set must satisfy the
  EDF bound with these effective costs.  With a single configuration (the
  static case) no reconfiguration ever happens.

Objective: minimize the *effective utilization*

    U = sum_i ( cycles_{i, j_i} + overhead_i ) / P_i ,
    overhead_i = rho if task i is in hardware and >= 2 configurations exist
                 else 0.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ReproError, ScheduleError

__all__ = ["TaskVersion", "ReconfigTask", "MTSolution", "effective_utilization"]


@dataclass(frozen=True)
class TaskVersion:
    """One CIS version of a task: hardware area vs. execution time."""

    area: float
    cycles: float

    def __post_init__(self) -> None:
        if self.area < 0 or self.cycles <= 0:
            raise ReproError("area must be >= 0 and cycles > 0")


@dataclass(frozen=True)
class ReconfigTask:
    """A periodic task with CIS versions on a reconfigurable fabric.

    Attributes:
        name: task label.
        period: period (= deadline).
        versions: version 0 must be software (area 0); versions should
            decrease in cycles as area grows.
    """

    name: str
    period: float
    versions: tuple[TaskVersion, ...]

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ScheduleError(f"task {self.name!r}: period must be positive")
        if not self.versions:
            raise ReproError(f"task {self.name!r} needs at least one version")
        if self.versions[0].area != 0:
            raise ReproError(
                f"task {self.name!r}: version 0 must be software (area 0)"
            )

    @property
    def software_utilization(self) -> float:
        return self.versions[0].cycles / self.period


@dataclass(frozen=True)
class MTSolution:
    """A complete spatial+temporal partitioning solution.

    Attributes:
        selection: version index per task.
        group_of: configuration id per task (ignored for software tasks).
        utilization: effective utilization including reconfiguration
            overhead.
    """

    selection: tuple[int, ...]
    group_of: tuple[int, ...]
    utilization: float

    @property
    def schedulable(self) -> bool:
        return self.utilization <= 1.0 + 1e-9

    def n_configurations(self, tasks: Sequence[ReconfigTask]) -> int:
        return len(
            {
                self.group_of[i]
                for i in range(len(self.selection))
                if self.selection[i] != 0
            }
        )


def effective_utilization(
    tasks: Sequence[ReconfigTask],
    selection: Sequence[int],
    group_of: Sequence[int],
    rho: float,
) -> float:
    """Effective utilization of a solution under the worst-case model.

    Hardware tasks pay ``rho`` per period whenever at least two
    configurations exist (each job may find the fabric holding another
    configuration); a single configuration never reconfigures.
    """
    if len(selection) != len(tasks) or len(group_of) != len(tasks):
        raise ReproError("selection/group_of length must match task count")
    hw = [i for i, j in enumerate(selection) if j != 0]
    groups = {group_of[i] for i in hw}
    multi = len(groups) >= 2
    total = 0.0
    for i, task in enumerate(tasks):
        cycles = task.versions[selection[i]].cycles
        if selection[i] != 0 and multi:
            cycles += rho
        total += cycles / task.period
    return total
