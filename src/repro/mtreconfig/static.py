"""Static (single-configuration) baseline for Chapter 7.

With exactly one configuration the fabric never reconfigures, but every
selected hardware version must fit the fabric *simultaneously* — this is
precisely the Chapter 3 selection problem: a multi-choice knapsack
minimizing utilization under the total area budget.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd

import numpy as np

from repro import obs
from repro.errors import ScheduleError
from repro.mtreconfig.model import MTSolution, ReconfigTask, effective_utilization

__all__ = ["static_solution"]


def _quantum(areas: list[float], budget: float, scale: int, max_steps: int) -> int:
    ints = [round(a * scale) for a in areas if a > 0]
    ints.append(max(1, round(budget * scale)))
    g = 0
    for v in ints:
        g = gcd(g, v)
    g = max(1, g)
    cap = int(round(budget * scale))
    if cap // g > max_steps:
        g = -(-cap // max_steps)
    return g


def static_solution(
    tasks: Sequence[ReconfigTask],
    fabric_area: float,
    rho: float = 0.0,
    scale: int = 100,
    max_steps: int = 20000,
) -> MTSolution:
    """Optimal single-configuration solution (no reconfiguration).

    Args:
        tasks: the periodic tasks with CIS versions.
        fabric_area: total fabric area (one configuration).
        rho: unused (kept for a uniform solver signature).
        scale / max_steps: area quantization controls.

    Returns:
        The utilization-minimal :class:`MTSolution` with all hardware tasks
        in configuration 0.
    """
    if fabric_area < 0:
        raise ScheduleError("fabric area must be non-negative")
    with obs.span("mtreconfig.static", tasks=len(tasks)):
        return _static_solution(tasks, fabric_area, rho, scale, max_steps)


def _static_solution(
    tasks: Sequence[ReconfigTask],
    fabric_area: float,
    rho: float,
    scale: int,
    max_steps: int,
) -> MTSolution:
    areas = [v.area for t in tasks for v in t.versions]
    q = _quantum(areas, max(fabric_area, 1e-9), scale, max_steps)
    cap = int(round(fabric_area * scale)) // q

    def steps(a: float) -> int:
        return -(-round(a * scale) // q)

    inf = float("inf")
    best = np.zeros(cap + 1)
    picks: list[np.ndarray] = []
    for task in tasks:
        new = np.full(cap + 1, inf)
        pick = np.zeros(cap + 1, dtype=np.int32)
        for j, v in enumerate(task.versions):
            w = steps(v.area)
            if w > cap:
                continue
            u = v.cycles / task.period
            cand = np.full(cap + 1, inf)
            cand[w:] = best[: cap + 1 - w] + u
            better = cand < new
            new[better] = cand[better]
            pick[better] = j
        best = new
        picks.append(pick)
    a = int(np.argmin(best))
    selection = [0] * len(tasks)
    for i in range(len(tasks) - 1, -1, -1):
        j = int(picks[i][a])
        selection[i] = j
        a -= steps(tasks[i].versions[j].area)
    group_of = [0] * len(tasks)
    util = effective_utilization(tasks, selection, group_of, rho)
    return MTSolution(
        selection=tuple(selection), group_of=tuple(group_of), utilization=util
    )
