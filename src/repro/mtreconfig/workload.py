"""Workload builders for the Chapter 7 experiments.

Two sources of :class:`~repro.mtreconfig.model.ReconfigTask` sets:

* :func:`tasks_from_benchmarks` — full-pipeline tasks whose CIS version
  curves come from candidate enumeration + selection on the synthetic
  benchmark programs (Table 7.1 analogue);
* :func:`synthetic_reconfig_tasks` — fast seeded task sets for scalability
  studies (Table 7.2 timing comparison).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.flow import build_task
from repro.mtreconfig.model import ReconfigTask, TaskVersion
from repro.workloads.tasksets import programs_for

__all__ = ["tasks_from_benchmarks", "synthetic_reconfig_tasks"]


def tasks_from_benchmarks(
    names: Sequence[str],
    target_utilization: float = 1.2,
    max_versions: int = 8,
) -> list[ReconfigTask]:
    """Build reconfigurable tasks from benchmark configuration curves.

    Periods are scaled uniformly so the software-only utilization equals
    *target_utilization*.
    """
    programs = programs_for(names)
    periodic = [build_task(p, max_configs=max_versions) for p in programs]
    alpha = len(periodic) / target_utilization
    tasks: list[ReconfigTask] = []
    for t in periodic:
        period = alpha * t.wcet
        versions = tuple(
            TaskVersion(area=c.area, cycles=c.cycles) for c in t.configurations
        )
        tasks.append(ReconfigTask(name=t.name, period=period, versions=versions))
    return tasks


def synthetic_reconfig_tasks(
    n_tasks: int,
    seed: int = 0,
    target_utilization: float = 1.2,
    n_versions: tuple[int, int] = (3, 8),
    base_cycles: tuple[int, int] = (50_000, 500_000),
    area_range: tuple[int, int] = (100, 2000),
    max_speedup: float = 2.0,
) -> list[ReconfigTask]:
    """Seeded synthetic reconfigurable task sets.

    Each task gets a monotone version curve: areas increase, cycles
    decrease towards ``base / max_speedup``.
    """
    rng = random.Random(seed)
    raw: list[tuple[str, float, list[TaskVersion]]] = []
    for i in range(n_tasks):
        base = float(rng.randint(*base_cycles))
        k = rng.randint(*n_versions)
        areas = sorted(rng.randint(*area_range) for _ in range(k))
        versions = [TaskVersion(area=0.0, cycles=base)]
        for rank, a in enumerate(areas, start=1):
            frac = rank / k
            speedup = 1.0 + (max_speedup - 1.0) * frac * rng.uniform(0.8, 1.0)
            versions.append(TaskVersion(area=float(a), cycles=base / speedup))
        raw.append((f"task{i}", base, versions))
    total_u_per_unit = sum(base for _, base, _ in raw)
    # Uniform alpha so software utilization hits the target.
    tasks: list[ReconfigTask] = []
    for name, base, versions in raw:
        period = base * n_tasks / target_utilization
        tasks.append(ReconfigTask(name=name, period=period, versions=tuple(versions)))
    return tasks
