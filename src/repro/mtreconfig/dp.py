"""Pseudo-polynomial DP for spatial/temporal partitioning (Chapter 7).

Solves the Chapter 7 model (see :mod:`repro.mtreconfig.model`): minimize
the effective utilization of a periodic task set sharing a reconfigurable
fabric, where hardware tasks pay a worst-case reconfiguration tax of
``rho`` per period whenever more than one configuration exists.

The search space splits cleanly by the number of configurations:

* ``k = 1`` (static) — all hardware versions must co-reside: the
  multi-choice knapsack DP of the static baseline (pseudo-polynomial in
  the quantized fabric area);
* ``k >= 2`` — the tax applies to every hardware task, and since tasks in
  different configurations do not constrain each other spatially, each
  task independently picks its best version among those fitting the
  fabric (``argmin_j (cycles_j + rho [j>0]) / P``), then tasks are packed
  into configurations first-fit-decreasing by area.

The DP returns whichever case yields the lower utilization; when both are
unschedulable (``U > 1``) the lower-utilization one is still returned so
callers can report infeasibility.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro import cache, obs
from repro.mtreconfig.model import MTSolution, ReconfigTask, effective_utilization
from repro.mtreconfig.static import static_solution

__all__ = ["DpReport", "dp_solution"]


@dataclass(frozen=True)
class DpReport:
    """DP outcome plus timing for the thesis Table 7.2 comparison."""

    solution: MTSolution
    elapsed: float


def _pack_first_fit(
    tasks: Sequence[ReconfigTask], selection: Sequence[int], fabric_area: float
) -> list[int]:
    """First-fit-decreasing packing of hardware versions into configurations."""
    hw = [
        (tasks[i].versions[selection[i]].area, i)
        for i in range(len(tasks))
        if selection[i] != 0
    ]
    hw.sort(reverse=True)
    bins: list[float] = []
    group_of = [0] * len(tasks)
    for area, i in hw:
        placed = False
        for b, used in enumerate(bins):
            if used + area <= fabric_area + 1e-9:
                bins[b] = used + area
                group_of[i] = b
                placed = True
                break
        if not placed:
            bins.append(area)
            group_of[i] = len(bins) - 1
    return group_of


def dp_solution(
    tasks: Sequence[ReconfigTask],
    fabric_area: float,
    rho: float,
    scale: int = 100,
    max_steps: int = 20000,
    use_cache: bool = True,
) -> DpReport:
    """Near-optimal spatial+temporal partitioning via the two-case DP.

    Args:
        tasks: the periodic tasks with CIS versions.
        fabric_area: area of one fabric configuration.
        rho: reconfiguration cost (time units).
        scale / max_steps: quantization controls of the static knapsack.
        use_cache: memoize the solution behind a content key (task digest
            + parameters) in :mod:`repro.cache`; a cached hit reports its
            own (near-zero) elapsed time.

    Returns:
        A :class:`DpReport` with the best solution found and the runtime.
    """
    start = time.perf_counter()

    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.reconfig_tasks_digest(tasks),
            kind="mtsolution",
            fabric_area=fabric_area,
            rho=rho,
            scale=scale,
            max_steps=max_steps,
        )
        cached = cache.fetch_mtsolution(key)
        if cached is not None:
            return DpReport(
                solution=MTSolution(
                    selection=tuple(cached["selection"]),
                    group_of=tuple(cached["group_of"]),
                    utilization=cached["utilization"],
                ),
                elapsed=time.perf_counter() - start,
            )

    with obs.span("mtreconfig.dp", tasks=len(tasks)):
        report = _dp_solution(tasks, fabric_area, rho, scale, max_steps, start)
    if key is not None:
        cache.store_mtsolution(
            key,
            {
                "selection": list(report.solution.selection),
                "group_of": list(report.solution.group_of),
                "utilization": report.solution.utilization,
            },
        )
    return report


def _dp_solution(
    tasks: Sequence[ReconfigTask],
    fabric_area: float,
    rho: float,
    scale: int,
    max_steps: int,
    start: float,
) -> DpReport:
    # Case 1: single configuration, no reconfiguration cost.
    static = static_solution(
        tasks, fabric_area, rho=rho, scale=scale, max_steps=max_steps
    )

    # Case 2: multiple configurations, per-period tax on hardware tasks.
    selection = [0] * len(tasks)
    for i, task in enumerate(tasks):
        best_j, best_cost = 0, task.versions[0].cycles
        for j, v in enumerate(task.versions):
            if j == 0 or v.area > fabric_area:
                continue
            cost = v.cycles + rho
            if cost < best_cost:
                best_j, best_cost = j, cost
        selection[i] = best_j
    group_of = _pack_first_fit(tasks, selection, fabric_area)
    multi_util = effective_utilization(tasks, selection, group_of, rho)
    multi = MTSolution(
        selection=tuple(selection),
        group_of=tuple(group_of),
        utilization=multi_util,
    )
    # If packing collapsed everything into one configuration, re-evaluate
    # without the tax (effective_utilization already handles this).

    best = min((static, multi), key=lambda s: s.utilization)
    return DpReport(solution=best, elapsed=time.perf_counter() - start)
