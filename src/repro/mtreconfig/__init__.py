"""Runtime reconfiguration for multi-tasking real-time systems (Ch. 7)."""

from repro.mtreconfig.dp import DpReport, dp_solution
from repro.mtreconfig.ilp import IlpReport, ilp_solution
from repro.mtreconfig.model import (
    MTSolution,
    ReconfigTask,
    TaskVersion,
    effective_utilization,
)
from repro.mtreconfig.static import static_solution
from repro.mtreconfig.workload import synthetic_reconfig_tasks, tasks_from_benchmarks

__all__ = [
    "DpReport",
    "dp_solution",
    "IlpReport",
    "ilp_solution",
    "MTSolution",
    "ReconfigTask",
    "TaskVersion",
    "effective_utilization",
    "static_solution",
    "synthetic_reconfig_tasks",
    "tasks_from_benchmarks",
]
