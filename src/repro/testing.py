"""Reusable randomized-workload builders for tests and experiments.

Deterministic (seeded) generators for the library's main input types, used
by the internal test suite and exported for downstream users who want to
property-test code built on top of repro.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import Opcode
from repro.reconfig.model import HotLoop
from repro.rtsched.task import PeriodicTask, TaskSet
from repro.selection.config_curve import TaskConfiguration

__all__ = [
    "random_dfg",
    "random_task_set",
    "random_hot_loops",
    "VALID_TEST_OPS",
]

#: Ops used by :func:`random_dfg` (all valid inside custom instructions).
VALID_TEST_OPS: tuple[Opcode, ...] = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.XOR,
    Opcode.AND,
    Opcode.OR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.CMP,
    Opcode.SELECT,
)


def random_dfg(
    seed: int,
    n_nodes: int = 10,
    ops: Sequence[Opcode] = VALID_TEST_OPS,
    max_preds: int = 2,
    include_invalid: bool = False,
) -> DataFlowGraph:
    """A random DAG of primitive operations.

    Args:
        seed: RNG seed (same seed -> identical graph).
        n_nodes: node count.
        ops: opcode pool.
        max_preds: maximum in-graph producers per node.
        include_invalid: sprinkle LOAD/STORE nodes (region separators).
    """
    rng = random.Random(seed)
    pool = list(ops)
    if include_invalid:
        pool = pool + [Opcode.LOAD, Opcode.STORE]
    dfg = DataFlowGraph(f"random{seed}")
    for i in range(n_nodes):
        op = rng.choice(pool)
        preds: list[int] = []
        if i > 0:
            count = rng.randint(0, min(max_preds, i))
            preds = rng.sample(range(i), count)
        dfg.add_op(op, preds=preds)
    return dfg


def random_task_set(
    seed: int,
    n_tasks: int = 4,
    max_configs: int = 5,
    utilization: float | None = None,
) -> TaskSet:
    """A random periodic task set with monotone configuration curves.

    Args:
        seed: RNG seed.
        n_tasks: task count.
        max_configs: maximum configurations per task (>= 1).
        utilization: optionally rescale periods so the software utilization
            equals this value.
    """
    rng = random.Random(seed)
    tasks: list[PeriodicTask] = []
    for i in range(n_tasks):
        wcet = float(rng.randint(10, 100))
        configs = [TaskConfiguration(0.0, wcet)]
        area, cycles = 0.0, wcet
        for _ in range(rng.randint(0, max_configs - 1)):
            area += rng.randint(1, 15)
            cycles = max(1.0, cycles - rng.randint(1, int(wcet // 4) + 1))
            configs.append(TaskConfiguration(area, cycles))
        tasks.append(
            PeriodicTask(
                name=f"task{i}",
                period=wcet * rng.uniform(1.2, 4.0),
                wcet=wcet,
                configurations=tuple(configs),
            )
        )
    ts = TaskSet(tasks, name=f"random{seed}")
    if utilization is not None:
        from repro.rtsched.task import scale_periods_for_utilization

        ts = scale_periods_for_utilization(tasks, utilization, name=ts.name)
    return ts


def random_hot_loops(
    seed: int,
    n_loops: int = 6,
    max_versions: int = 6,
) -> tuple[list[HotLoop], list[int]]:
    """Random (hot loops, trace) pair for reconfiguration experiments."""
    from repro.workloads.loops import synthetic_loops, synthetic_trace

    return (
        synthetic_loops(n_loops, seed=seed, max_versions=max_versions),
        synthetic_trace(n_loops, seed=seed),
    )
