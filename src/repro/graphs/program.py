"""Structured program models: basic blocks, syntax tree, WCET, profiles.

The thesis front-end (Trimaran) produces a control-flow graph plus a syntax
tree per task; WCET is computed with the *timing schema* approach [76] and
average-case profiles come from running representative inputs.  We model a
program as a tree of structured constructs over basic blocks:

* :class:`Block` — one basic block (a :class:`~repro.graphs.dfg.DataFlowGraph`)
* :class:`Seq` — sequential composition
* :class:`Loop` — a counted loop with a (worst-case) bound and an average
  trip count for profiling
* :class:`IfElse` — two-way branch with a taken probability for profiling

Timing schema rules: ``wcet(Seq) = Σ wcet(child)``, ``wcet(Loop) = bound ×
wcet(body)``, ``wcet(IfElse) = max(wcet(then), wcet(else))``.  Basic-block
execution frequencies for the average case multiply loop average trip counts
and branch probabilities down the tree.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graphs.dfg import DataFlowGraph

__all__ = ["Block", "Seq", "Loop", "IfElse", "Program", "BlockWeight"]


class _Construct:
    """Base class for syntax-tree constructs."""

    def blocks(self) -> Iterator["Block"]:
        raise NotImplementedError


@dataclass
class Block(_Construct):
    """A leaf construct wrapping one basic block."""

    dfg: DataFlowGraph

    def blocks(self) -> Iterator["Block"]:
        yield self


@dataclass
class Seq(_Construct):
    """Sequential composition of constructs."""

    children: list[_Construct]

    def blocks(self) -> Iterator[Block]:
        for c in self.children:
            yield from c.blocks()


@dataclass
class Loop(_Construct):
    """A counted loop.

    Attributes:
        body: the loop body construct.
        bound: worst-case iteration count (used by the timing schema).
        avg_trip: average iteration count (used for profiling); defaults to
            ``bound``.
    """

    body: _Construct
    bound: int
    avg_trip: float | None = None

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise GraphError("loop bound must be >= 1")
        if self.avg_trip is None:
            self.avg_trip = float(self.bound)

    def blocks(self) -> Iterator[Block]:
        yield from self.body.blocks()


@dataclass
class IfElse(_Construct):
    """Two-way conditional.

    Attributes:
        then_branch / else_branch: the two alternatives (``else_branch`` may
            be an empty :class:`Seq`).
        taken_prob: probability of the then-branch for profiling.
    """

    then_branch: _Construct
    else_branch: _Construct
    taken_prob: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.taken_prob <= 1.0:
            raise GraphError("taken_prob must be within [0, 1]")

    def blocks(self) -> Iterator[Block]:
        yield from self.then_branch.blocks()
        yield from self.else_branch.blocks()


@dataclass(frozen=True)
class BlockWeight:
    """Contribution of one basic block to a program path.

    Attributes:
        block: the basic block.
        count: execution count along the path / in the profile.
        cycles: ``count`` times the block's (possibly customized) latency.
    """

    block: Block
    count: float
    cycles: float


class Program:
    """A task's program: a syntax tree with cost and profile queries.

    Args:
        name: task/benchmark name.
        root: the syntax-tree root construct.
    """

    def __init__(self, name: str, root: _Construct) -> None:
        self.name = name
        self.root = root
        self._blocks = list(root.blocks())
        if not self._blocks:
            raise GraphError(f"program {name!r} has no basic blocks")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program({self.name!r}, blocks={len(self._blocks)})"

    @property
    def basic_blocks(self) -> list[Block]:
        """All basic blocks (source order)."""
        return list(self._blocks)

    def block_stats(self) -> tuple[int, float]:
        """(max, average) basic-block size in primitive instructions."""
        sizes = [len(b.dfg) for b in self._blocks]
        return max(sizes), sum(sizes) / len(sizes)

    # ------------------------------------------------------------------
    # Timing schema WCET
    # ------------------------------------------------------------------
    def wcet(self, block_cycles: Callable[[Block], float] | None = None) -> float:
        """Worst-case execution time by the timing schema.

        Args:
            block_cycles: latency of each block in cycles; defaults to the
                block's plain software latency.  Pass a custom function to
                evaluate WCET *after* custom-instruction substitution.
        """
        cost = block_cycles or (lambda b: float(b.dfg.sw_cycles()))
        return self._wcet(self.root, cost)

    def _wcet(self, node: _Construct, cost: Callable[[Block], float]) -> float:
        if isinstance(node, Block):
            return cost(node)
        if isinstance(node, Seq):
            return sum(self._wcet(c, cost) for c in node.children)
        if isinstance(node, Loop):
            return node.bound * self._wcet(node.body, cost)
        if isinstance(node, IfElse):
            return max(
                self._wcet(node.then_branch, cost),
                self._wcet(node.else_branch, cost),
            )
        raise GraphError(f"unknown construct {type(node).__name__}")

    def wcet_path(
        self, block_cycles: Callable[[Block], float] | None = None
    ) -> list[BlockWeight]:
        """Basic blocks on the WCET path with execution counts and weights.

        At each conditional the more expensive branch is taken; loop bodies
        multiply the enclosing count by the loop bound.  The result is sorted
        by descending cycle contribution, matching the thesis's ordering of
        critical basic blocks (Section 5.1, Algorithm 4 line 7).
        """
        cost = block_cycles or (lambda b: float(b.dfg.sw_cycles()))
        acc: list[BlockWeight] = []
        self._collect_wcet_path(self.root, 1.0, cost, acc)
        acc.sort(key=lambda w: -w.cycles)
        return acc

    def _collect_wcet_path(
        self,
        node: _Construct,
        count: float,
        cost: Callable[[Block], float],
        acc: list[BlockWeight],
    ) -> None:
        if isinstance(node, Block):
            acc.append(BlockWeight(block=node, count=count, cycles=count * cost(node)))
        elif isinstance(node, Seq):
            for c in node.children:
                self._collect_wcet_path(c, count, cost, acc)
        elif isinstance(node, Loop):
            self._collect_wcet_path(node.body, count * node.bound, cost, acc)
        elif isinstance(node, IfElse):
            then_w = self._wcet(node.then_branch, cost)
            else_w = self._wcet(node.else_branch, cost)
            chosen = node.then_branch if then_w >= else_w else node.else_branch
            self._collect_wcet_path(chosen, count, cost, acc)
        else:  # pragma: no cover - defensive
            raise GraphError(f"unknown construct {type(node).__name__}")

    # ------------------------------------------------------------------
    # Average-case profile
    # ------------------------------------------------------------------
    def profile(self) -> dict[int, float]:
        """Average execution frequency of each basic block.

        Returns:
            Mapping from block index (position in :attr:`basic_blocks`) to
            expected execution count per program run.
        """
        freq: dict[int, float] = {}
        index = {id(b): i for i, b in enumerate(self._blocks)}
        self._collect_profile(self.root, 1.0, index, freq)
        return freq

    def _collect_profile(
        self,
        node: _Construct,
        count: float,
        index: Mapping[int, int],
        freq: dict[int, float],
    ) -> None:
        if isinstance(node, Block):
            freq[index[id(node)]] = freq.get(index[id(node)], 0.0) + count
        elif isinstance(node, Seq):
            for c in node.children:
                self._collect_profile(c, count, index, freq)
        elif isinstance(node, Loop):
            self._collect_profile(node.body, count * float(node.avg_trip), index, freq)
        elif isinstance(node, IfElse):
            self._collect_profile(node.then_branch, count * node.taken_prob, index, freq)
            self._collect_profile(
                node.else_branch, count * (1.0 - node.taken_prob), index, freq
            )
        else:  # pragma: no cover - defensive
            raise GraphError(f"unknown construct {type(node).__name__}")

    def avg_cycles(self, block_cycles: Callable[[Block], float] | None = None) -> float:
        """Average-case execution cycles per run under the profile."""
        cost = block_cycles or (lambda b: float(b.dfg.sw_cycles()))
        freq = self.profile()
        return sum(freq[i] * cost(b) for i, b in enumerate(self._blocks))
