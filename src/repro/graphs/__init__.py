"""Dataflow/control-flow graph substrate."""

from repro.graphs.dfg import DataFlowGraph, IOCount
from repro.graphs.export import dfg_to_dot, rewritten_to_dot
from repro.graphs.program import Block, BlockWeight, IfElse, Loop, Program, Seq
from repro.graphs.rewrite import RewrittenBlock, acyclic_subset, rewrite_block
from repro.graphs.schedule import ScheduleResult, list_schedule, schedule_dfg

__all__ = [
    "dfg_to_dot",
    "rewritten_to_dot",
    "RewrittenBlock",
    "acyclic_subset",
    "rewrite_block",
    "ScheduleResult",
    "list_schedule",
    "schedule_dfg",
    "DataFlowGraph",
    "IOCount",
    "Block",
    "BlockWeight",
    "IfElse",
    "Loop",
    "Program",
    "Seq",
]
