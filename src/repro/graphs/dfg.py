"""Dataflow graphs (DFGs) of basic blocks.

A basic block is represented as a directed acyclic graph whose nodes are
primitive operations and whose edges are data dependencies (thesis
Section 2.2).  A *custom instruction* candidate is an induced subgraph that
satisfies three architectural constraints:

* **input constraint** — at most ``Nin`` distinct input operands (register
  file read ports);
* **output constraint** — at most ``Nout`` values consumed outside the
  subgraph (register file write ports);
* **convexity** — no dataflow path may leave the subgraph and re-enter it,
  otherwise the instruction cannot execute atomically.

Operations that access memory or transfer control are *invalid* and can never
be part of a custom instruction; they split the DFG into *regions* (thesis
Section 5.2.1).

Adjacency is kept in plain lists (node ids are dense ints in topological
order) because candidate enumeration performs millions of subgraph queries.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx

from repro.errors import GraphError
from repro.isa.opcodes import Opcode, is_valid_op, op_info

__all__ = ["DataFlowGraph", "DFGMasks", "IOCount"]


@dataclass(frozen=True)
class IOCount:
    """Input/output operand counts of a candidate subgraph."""

    inputs: int
    outputs: int


@dataclass(frozen=True)
class DFGMasks:
    """Per-node bitmask views of a DFG, for bit-parallel subgraph queries.

    Node ``n`` corresponds to bit ``1 << n``.  All masks are restricted to
    ``full`` (non-negative), so ``int.bit_count`` is always meaningful.

    Attributes:
        full: mask with one bit per node.
        valid: nodes whose opcode may appear in a custom instruction.
        live_out: nodes whose value escapes the basic block.
        pred / succ: direct predecessor / successor mask per node.
        anc / desc: strict transitive ancestor / descendant mask per node.
        adj_valid: undirected adjacency restricted to valid nodes.
        external_inputs: live-in operand count per node.
    """

    full: int
    valid: int
    live_out: int
    pred: tuple[int, ...]
    succ: tuple[int, ...]
    anc: tuple[int, ...]
    desc: tuple[int, ...]
    adj_valid: tuple[int, ...]
    external_inputs: tuple[int, ...]


@dataclass
class _Node:
    op: Opcode
    live_out: bool = False
    #: Number of operands fed from outside the block (register live-ins /
    #: immediates); derived from arity minus in-graph predecessors unless
    #: explicitly overridden at construction.
    external_inputs: int = 0


class DataFlowGraph:
    """A DAG of primitive operations with data-dependence edges.

    Nodes are dense integer ids assigned in insertion order, which is also a
    valid topological order (an edge may only point from an existing node to
    the new node).

    Args:
        name: optional label (used in reports and repr).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: list[_Node] = []
        self._preds: list[list[int]] = []
        self._succs: list[list[int]] = []
        self._masks: DFGMasks | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_op(
        self,
        op: Opcode,
        preds: Iterable[int] = (),
        live_out: bool = False,
        external_inputs: int | None = None,
    ) -> int:
        """Append an operation node.

        Args:
            op: the primitive opcode.
            preds: ids of producer nodes this operation consumes.
            live_out: True if the value escapes the basic block (is written
                to a register read by later blocks).
            external_inputs: number of operands sourced from outside the
                block.  Defaults to ``arity - len(preds)`` (never negative).

        Returns:
            The new node id.

        Raises:
            GraphError: if a predecessor id does not exist (which would break
                the topological-order invariant) or operand counts are
                inconsistent.
        """
        preds = list(dict.fromkeys(preds))
        node_id = len(self._nodes)
        for p in preds:
            if not 0 <= p < node_id:
                raise GraphError(
                    f"predecessor {p} of new node {node_id} does not exist"
                )
        arity = op_info(op).arity
        if external_inputs is None:
            external_inputs = max(0, arity - len(preds))
        if external_inputs < 0:
            raise GraphError("external_inputs must be non-negative")
        self._nodes.append(
            _Node(op=op, live_out=live_out, external_inputs=external_inputs)
        )
        self._preds.append(preds)
        self._succs.append([])
        for p in preds:
            self._succs[p].append(node_id)
        self._masks = None
        return node_id

    def set_live_out(self, node: int, live_out: bool = True) -> None:
        """Mark *node*'s value as escaping the basic block."""
        self._nodes[node].live_out = live_out
        self._masks = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataFlowGraph({self.name!r}, nodes={len(self)})"

    @property
    def nodes(self) -> range:
        """All node ids, in topological order."""
        return range(len(self._nodes))

    def op(self, node: int) -> Opcode:
        """Opcode of *node*."""
        return self._nodes[node].op

    def is_live_out(self, node: int) -> bool:
        """True if *node*'s value escapes the basic block."""
        return self._nodes[node].live_out

    def external_inputs(self, node: int) -> int:
        """Number of operands of *node* sourced from outside the block."""
        return self._nodes[node].external_inputs

    def preds(self, node: int) -> list[int]:
        """Producer nodes of *node*."""
        return list(self._preds[node])

    def succs(self, node: int) -> list[int]:
        """Consumer nodes of *node*."""
        return list(self._succs[node])

    def is_valid_node(self, node: int) -> bool:
        """True if *node* may be part of a custom instruction."""
        return is_valid_op(self._nodes[node].op)

    @property
    def valid_nodes(self) -> list[int]:
        """All nodes whose opcode may appear in a custom instruction."""
        return [n for n in self.nodes if self.is_valid_node(n)]

    def to_networkx(self) -> nx.DiGraph:
        """The dependence graph as a networkx DiGraph (node ids preserved)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes)
        for n in self.nodes:
            for p in self._preds[n]:
                g.add_edge(p, n)
        return g

    def sw_cycles(self) -> int:
        """Total software latency of the block on the base processor."""
        return sum(op_info(n.op).sw_cycles for n in self._nodes)

    def bitset_masks(self) -> DFGMasks:
        """Precomputed bitmask views of the graph (cached until mutation).

        Computed once per DFG in O(V·E) word operations and reused by the
        bitset enumeration engine, which replaces per-subgraph set algebra
        with O(1) big-int operations.
        """
        if self._masks is not None:
            return self._masks
        n = len(self._nodes)
        full = (1 << n) - 1
        pred = [0] * n
        succ = [0] * n
        anc = [0] * n
        desc = [0] * n
        valid = 0
        live_out = 0
        for i, node in enumerate(self._nodes):
            bit = 1 << i
            if is_valid_op(node.op):
                valid |= bit
            if node.live_out:
                live_out |= bit
            pm = 0
            am = 0
            for p in self._preds[i]:
                pm |= 1 << p
                am |= anc[p] | (1 << p)
            pred[i] = pm
            anc[i] = am  # ids are topological, so anc[p] is final
            for s in self._succs[i]:
                succ[i] |= 1 << s
        for i in range(n - 1, -1, -1):
            dm = 0
            for s in self._succs[i]:
                dm |= desc[s] | (1 << s)
            desc[i] = dm
        adj_valid = [
            (pred[i] | succ[i]) & valid if valid >> i & 1 else 0 for i in range(n)
        ]
        self._masks = DFGMasks(
            full=full,
            valid=valid,
            live_out=live_out,
            pred=tuple(pred),
            succ=tuple(succ),
            anc=tuple(anc),
            desc=tuple(desc),
            adj_valid=tuple(adj_valid),
            external_inputs=tuple(nd.external_inputs for nd in self._nodes),
        )
        return self._masks

    # ------------------------------------------------------------------
    # Subgraph queries
    # ------------------------------------------------------------------
    def io_count(self, subgraph: Iterable[int]) -> IOCount:
        """Input/output operand counts of an induced subgraph.

        Inputs are counted as: distinct producer nodes *outside* the subgraph
        feeding some node inside, plus every external (live-in) operand of a
        member node.  Outputs are the member nodes whose value is consumed by
        a node outside the subgraph or is live-out of the block.
        """
        sub = subgraph if isinstance(subgraph, (set, frozenset)) else set(subgraph)
        external_producers: set[int] = set()
        live_in_operands = 0
        outputs = 0
        for n in sub:
            node = self._nodes[n]
            live_in_operands += node.external_inputs
            for p in self._preds[n]:
                if p not in sub:
                    external_producers.add(p)
            if node.live_out:
                outputs += 1
            else:
                for s in self._succs[n]:
                    if s not in sub:
                        outputs += 1
                        break
        return IOCount(inputs=len(external_producers) + live_in_operands, outputs=outputs)

    def is_convex(self, subgraph: Iterable[int]) -> bool:
        """True if no path leaves *subgraph* and re-enters it.

        A subgraph ``S`` is convex iff no node outside ``S`` lies on a path
        between two members.  Checked by a forward BFS from edges escaping
        ``S``, bounded by the maximum member id (ids are topological, so a
        re-entrant path must pass below it).
        """
        sub = subgraph if isinstance(subgraph, (set, frozenset)) else set(subgraph)
        if len(sub) <= 1:
            return True
        hi = max(sub)
        frontier: list[int] = []
        seen: set[int] = set()
        for n in sub:
            for s in self._succs[n]:
                if s not in sub and s < hi and s not in seen:
                    seen.add(s)
                    frontier.append(s)
        while frontier:
            cur = frontier.pop()
            for s in self._succs[cur]:
                if s in sub:
                    return False
                if s < hi and s not in seen:
                    seen.add(s)
                    frontier.append(s)
        return True

    def is_feasible(
        self, subgraph: Iterable[int], max_inputs: int, max_outputs: int
    ) -> bool:
        """True if *subgraph* is a legal custom instruction.

        Checks node validity, the I/O constraints and convexity.
        """
        sub = subgraph if isinstance(subgraph, (set, frozenset)) else set(subgraph)
        if not sub:
            return False
        if any(not self.is_valid_node(n) for n in sub):
            return False
        io = self.io_count(sub)
        if io.inputs > max_inputs or io.outputs > max_outputs:
            return False
        return self.is_convex(sub)

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def regions(self) -> list[list[int]]:
        """Decompose the DFG into regions.

        A region is a maximal set of *valid* nodes connected by undirected
        paths that do not pass through invalid nodes (thesis Section 5.2.1).
        Returned as lists of node ids in topological order, sorted by
        descending size (the thesis's "weight" of a region is its operation
        count).
        """
        parent: dict[int, int] = {n: n for n in self.valid_nodes}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for n in parent:
            for p in self._preds[n]:
                if p in parent:
                    ra, rb = find(n), find(p)
                    if ra != rb:
                        parent[ra] = rb
        groups: dict[int, list[int]] = {}
        for n in parent:
            groups.setdefault(find(n), []).append(n)
        comps = [sorted(g) for g in groups.values()]
        comps.sort(key=lambda c: (-len(c), c))
        return comps

    # ------------------------------------------------------------------
    # Structural hashing (used for isomorphism-based area sharing)
    # ------------------------------------------------------------------
    def structural_key(self, subgraph: Iterable[int]) -> tuple:
        """A hashable key equal for structurally isomorphic subgraphs.

        Computed as the sorted multiset of per-node canonical labels, where a
        node's label is built bottom-up from its opcode and the labels of its
        in-subgraph predecessors.  Subgraphs with equal keys are structurally
        identical (same DAG shape and opcodes), so a single hardware datapath
        can serve both (thesis Section 5.2: "identify isomorphic custom
        instructions ... take advantage of hardware area sharing").
        """
        sub = sorted(set(subgraph))
        sub_set = set(sub)
        label: dict[int, tuple] = {}
        for n in sub:  # ids are topological
            pred_labels = tuple(
                sorted(label[p] for p in self._preds[n] if p in sub_set)
            )
            label[n] = (self._nodes[n].op.value, pred_labels)
        return tuple(sorted(label[n] for n in sub))
