"""Code generation: rewrite a DFG with selected custom instructions.

The last stage of the thesis design flow (Figure 1.2 / Section 2.2):
"subgraphs corresponding to selected custom instructions are identified in
the DFG of each basic block and replaced by custom instructions".  The
rewritten block is a DFG whose nodes are either original primitive
operations or *custom-instruction super-nodes*; scheduling it (see
:mod:`repro.graphs.schedule`) yields the block's customized cycle count
without the additive-gain approximation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel
from repro.isa.opcodes import op_info

__all__ = ["RewrittenBlock", "rewrite_block", "acyclic_subset"]


@dataclass(frozen=True)
class RewrittenBlock:
    """A basic block after custom-instruction substitution.

    Attributes:
        node_latency: latency per rewritten-graph node id.
        node_members: original node ids folded into each rewritten node.
        preds: predecessor lists of the rewritten graph.
        order: rewritten node ids in topological order.
        n_custom: number of custom-instruction super-nodes.
    """

    node_latency: dict[int, int]
    node_members: dict[int, tuple[int, ...]]
    preds: dict[int, tuple[int, ...]]
    order: tuple[int, ...]
    n_custom: int

    def sequential_cycles(self) -> int:
        """Single-issue additive cost of the rewritten block."""
        return sum(self.node_latency[n] for n in self.order)

    def scheduled_cycles(self, issue_width: int = 1) -> int:
        """List-scheduled cost of the rewritten block."""
        from repro.graphs.schedule import list_schedule

        result = list_schedule(
            self.order, self.preds, self.node_latency, issue_width=issue_width
        )
        return result.makespan


def rewrite_block(
    dfg: DataFlowGraph,
    instructions: Sequence[Iterable[int]],
    model: HardwareCostModel = DEFAULT_COST_MODEL,
) -> RewrittenBlock:
    """Replace each selected subgraph by one custom-instruction node.

    Args:
        dfg: the original basic block.
        instructions: disjoint feasible node sets (selected candidates).
        model: hardware model for custom-instruction latencies.

    Returns:
        The :class:`RewrittenBlock`.

    Raises:
        GraphError: if instruction node sets overlap or reference unknown
            nodes.
    """
    groups = [frozenset(g) for g in instructions]
    owner: dict[int, int] = {}
    for gi, g in enumerate(groups):
        if not g:
            raise GraphError("custom instruction with no nodes")
        for n in g:
            if not 0 <= n < len(dfg):
                raise GraphError(f"instruction references unknown node {n}")
            if n in owner:
                raise GraphError(f"node {n} covered by two custom instructions")
            owner[n] = gi

    # Rewritten node ids: one per uncovered original node (id reused) and
    # one per group (new ids appended after the original range).
    group_node = {gi: len(dfg) + gi for gi in range(len(groups))}

    def rep(n: int) -> int:
        gi = owner.get(n)
        return group_node[gi] if gi is not None else n

    latencies: dict[int, int] = {}
    members: dict[int, tuple[int, ...]] = {}
    preds: dict[int, set[int]] = {}
    for n in dfg.nodes:
        r = rep(n)
        preds.setdefault(r, set())
        for p in dfg.preds(n):
            rp = rep(p)
            if rp != r:
                preds[r].add(rp)
    for n in dfg.nodes:
        if n not in owner:
            latencies[n] = op_info(dfg.op(n)).sw_cycles
            members[n] = (n,)
    for gi, g in enumerate(groups):
        ordered = sorted(g)
        g_preds = {n: [p for p in dfg.preds(n) if p in g] for n in ordered}
        ops = {n: dfg.op(n) for n in ordered}
        cost = model.subgraph_cost(ordered, g_preds, ops)
        latencies[group_node[gi]] = cost.hw_cycles
        members[group_node[gi]] = tuple(ordered)

    # Topological order of the rewritten graph (Kahn).
    all_nodes = sorted(latencies)
    indeg = {n: len(preds.get(n, ())) for n in all_nodes}
    succs: dict[int, list[int]] = {n: [] for n in all_nodes}
    for n in all_nodes:
        for p in preds.get(n, ()):
            succs[p].append(n)
    queue = sorted(n for n in all_nodes if indeg[n] == 0)
    order: list[int] = []
    import heapq

    heapq.heapify(queue)
    while queue:
        n = heapq.heappop(queue)
        order.append(n)
        for s in succs[n]:
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(queue, s)
    if len(order) != len(all_nodes):
        raise GraphError(
            "rewritten graph is cyclic; a custom instruction must be convex"
        )
    return RewrittenBlock(
        node_latency=latencies,
        node_members=members,
        preds={n: tuple(sorted(p)) for n, p in preds.items()},
        order=tuple(order),
        n_custom=len(groups),
    )


def acyclic_subset(
    dfg: DataFlowGraph, groups: Sequence[Iterable[int]]
) -> list[frozenset[int]]:
    """Greedily keep the custom instructions that can be folded together.

    Two individually convex, disjoint candidates can still deadlock each
    other when both are folded: if some node of A feeds B and some node of
    B feeds A, the contracted graph is cyclic and neither super-node can
    issue atomically.  Selection only enforces pairwise disjointness
    (thesis Section 2.3.2), so code generation must resolve this; the
    greedy order-preserving filter below keeps each group only when the
    contracted graph stays acyclic.
    """
    kept: list[frozenset[int]] = []
    for g in groups:
        trial = [*kept, frozenset(g)]
        try:
            rewrite_block(dfg, trial)
        except GraphError:
            continue
        kept = trial
    return kept
