"""List scheduling of dataflow graphs on the base processor model.

The thesis's cost model treats a basic block's software cost as the sum of
its operations' latencies (single-issue in-order core).  This module adds a
proper list scheduler so blocks can also be costed on *multi-issue*
machines and so rewritten DFGs (with custom-instruction super-nodes, see
:mod:`repro.graphs.rewrite`) get a consistent cycle count:

* operations become ready when all producers have completed;
* up to ``issue_width`` operations issue per cycle, highest-priority
  (longest path to a sink) first;
* an operation started at cycle ``t`` completes at ``t + latency``.

For ``issue_width = 1`` and unit-latency chains the makespan equals the
thesis's additive cost.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graphs.dfg import DataFlowGraph
from repro.isa.opcodes import op_info

__all__ = ["ScheduleResult", "list_schedule", "schedule_dfg"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of list scheduling.

    Attributes:
        makespan: total cycles until the last operation completes.
        start_cycle: issue cycle per node.
        issue_width: machine width used.
    """

    makespan: int
    start_cycle: dict[int, int]
    issue_width: int


def list_schedule(
    nodes: Sequence[int],
    preds: Mapping[int, Sequence[int]],
    latency: Mapping[int, int],
    issue_width: int = 1,
) -> ScheduleResult:
    """Schedule a DAG with the given per-node latencies.

    Args:
        nodes: node ids in topological order.
        preds: predecessor map (restricted to *nodes*).
        latency: integer latency per node (>= 1 enforced).
        issue_width: operations issued per cycle.

    Returns:
        A :class:`ScheduleResult`.

    Raises:
        GraphError: on an empty node list or non-positive width.
    """
    if issue_width < 1:
        raise GraphError("issue width must be at least 1")
    node_list = list(nodes)
    if not node_list:
        return ScheduleResult(makespan=0, start_cycle={}, issue_width=issue_width)
    node_set = set(node_list)
    lat = {n: max(1, int(latency[n])) for n in node_list}

    # Priority: longest path to any sink (critical-path scheduling).
    succs: dict[int, list[int]] = {n: [] for n in node_list}
    for n in node_list:
        for p in preds.get(n, ()):  # type: ignore[call-overload]
            if p in node_set:
                succs[p].append(n)
    height: dict[int, int] = {}
    for n in reversed(node_list):
        height[n] = lat[n] + max((height[s] for s in succs[n]), default=0)

    indegree = {
        n: sum(1 for p in preds.get(n, ()) if p in node_set) for n in node_list
    }
    ready: list[tuple[int, int]] = []  # (-height, node)
    for n in node_list:
        if indegree[n] == 0:
            heapq.heappush(ready, (-height[n], n))
    pending: list[tuple[int, int]] = []  # (finish cycle, node)
    start: dict[int, int] = {}
    cycle = 0
    scheduled = 0
    while scheduled < len(node_list):
        # Retire finished ops, releasing their consumers.
        while pending and pending[0][0] <= cycle:
            _t, done = heapq.heappop(pending)
            for s in succs[done]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    heapq.heappush(ready, (-height[s], s))
        issued = 0
        while ready and issued < issue_width:
            _prio, n = heapq.heappop(ready)
            start[n] = cycle
            heapq.heappush(pending, (cycle + lat[n], n))
            issued += 1
            scheduled += 1
        if scheduled < len(node_list):
            if ready:
                cycle += 1  # width-limited: try again next cycle
            elif pending:
                cycle = max(cycle + 1, pending[0][0])
            else:  # pragma: no cover - defensive (graph disconnected?)
                raise GraphError("scheduler stalled with no pending work")
    makespan = max(start[n] + lat[n] for n in node_list)
    return ScheduleResult(
        makespan=makespan, start_cycle=start, issue_width=issue_width
    )


def schedule_dfg(
    dfg: DataFlowGraph,
    issue_width: int = 1,
    latency_of: Callable[[int], int] | None = None,
) -> ScheduleResult:
    """Schedule a whole basic block on the base processor model.

    Args:
        dfg: the block's dataflow graph.
        issue_width: machine issue width.
        latency_of: per-node latency override (defaults to the opcode's
            software cycles — e.g. rewritten DFGs supply custom-instruction
            hardware latencies).
    """
    nodes = list(dfg.nodes)
    preds = {n: dfg.preds(n) for n in nodes}
    if latency_of is None:
        latency = {n: op_info(dfg.op(n)).sw_cycles for n in nodes}
    else:
        latency = {n: latency_of(n) for n in nodes}
    return list_schedule(nodes, preds, latency, issue_width=issue_width)
