"""Graphviz DOT export for dataflow graphs and rewritten blocks.

Debugging/documentation aid: render a basic block's DFG — optionally with
selected custom instructions highlighted as clusters — with
``dot -Tpng block.dot -o block.png``.

The node lines carry ``xin`` (external live-in operand count) and
``liveout`` attributes, so :func:`repro.frontend.import_dot` can rebuild
the exact :class:`~repro.graphs.dfg.DataFlowGraph` from the rendered text.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.graphs.dfg import DataFlowGraph
from repro.graphs.rewrite import RewrittenBlock

__all__ = ["dfg_to_dot", "rewritten_to_dot"]


def _esc(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT literal.

    Backslashes must be doubled *before* quoting, otherwise a name ending
    in a backslash would swallow the closing quote.
    """
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_attrs(dfg: DataFlowGraph, n: int) -> str:
    """Roundtrip attributes for node *n* (consumed by ``import_dot``)."""
    attrs = f", xin={dfg.external_inputs(n)}"
    if dfg.is_live_out(n):
        attrs += ", liveout=true"
    return attrs


def dfg_to_dot(
    dfg: DataFlowGraph,
    instructions: Sequence[Iterable[int]] = (),
    name: str | None = None,
) -> str:
    """Render *dfg* as a DOT digraph.

    Args:
        dfg: the dataflow graph.
        instructions: optional node groups drawn as labelled clusters
            (e.g. selected custom instructions).
        name: graph name (defaults to the DFG's own name).

    Returns:
        DOT source text.  :func:`repro.frontend.import_dot` parses it back
        into an equal graph.
    """
    label = _esc(name or dfg.name or "dfg")
    lines = [f'digraph "{label}" {{', "  rankdir=TB;", '  node [shape=box, fontsize=10];']
    grouped: set[int] = set()
    for gi, group in enumerate(instructions):
        members = sorted(set(group))
        grouped.update(members)
        lines.append(f"  subgraph cluster_ci{gi} {{")
        lines.append(f'    label="CI{gi}"; style=filled; fillcolor=lightgrey;')
        for n in members:
            shape = "box" if dfg.is_valid_node(n) else "ellipse"
            lines.append(
                f'    n{n} [label="{n}: {_esc(str(dfg.op(n)))}", '
                f"shape={shape}{_node_attrs(dfg, n)}];"
            )
        lines.append("  }")
    for n in dfg.nodes:
        if n in grouped:
            continue
        shape = "box" if dfg.is_valid_node(n) else "ellipse"
        style = "" if dfg.is_valid_node(n) else ", style=dashed"
        lines.append(
            f'  n{n} [label="{n}: {_esc(str(dfg.op(n)))}", '
            f"shape={shape}{_node_attrs(dfg, n)}{style}];"
        )
    for n in dfg.nodes:
        for p in dfg.preds(n):
            lines.append(f"  n{p} -> n{n};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def rewritten_to_dot(block: RewrittenBlock, name: str = "rewritten") -> str:
    """Render a rewritten block (custom-instruction super-nodes doubled)."""
    lines = [f'digraph "{_esc(name)}" {{', "  rankdir=TB;"]
    for n in block.order:
        members = block.node_members[n]
        if len(members) > 1:
            label = _esc(f"CI({len(members)} ops, {block.node_latency[n]}cy)")
            lines.append(
                f'  n{n} [label="{label}", shape=box, peripheries=2];'
            )
        else:
            label = _esc(f"{members[0]} ({block.node_latency[n]}cy)")
            lines.append(f'  n{n} [label="{label}", shape=box];')
    for n in block.order:
        for p in block.preds.get(n, ()):
            lines.append(f"  n{p} -> n{n};")
    lines.append("}")
    return "\n".join(lines) + "\n"
