"""Python AST front-end: compile a plain Python function into a program model.

The thesis front-end consumed Trimaran CFGs plus syntax trees; here the same
role is played by Python's own ``ast`` module.  A kernel written as an
ordinary Python function is lowered into a
:class:`~repro.graphs.program.Program` — a tree of ``Seq``/``Loop``/``IfElse``
constructs over basic-block :class:`~repro.graphs.dfg.DataFlowGraph`\\ s — by
def-use dataflow construction in the style of polyphony's
``DFNode``/``DataFlowGraph`` builder: each statement's expression tree becomes
primitive-operation nodes, names connect producers to consumers inside a
block, and values crossing block boundaries become live-outs / live-in
operands.

Expression mapping onto :mod:`repro.isa.opcodes`:

========================  ==========================================
Python construct           primitive opcode(s)
========================  ==========================================
``+ - * // / %``           ``ADD SUB MUL DIV DIV DIV``
``a + b * c``              fused ``MAC`` (multiply-accumulate)
``<< >> & | ^ ~``          ``SHL SHR AND OR XOR NOT``
``- x`` / ``not x``        ``NEG`` / ``NOT``
comparisons                ``CMP`` (chains AND their ``CMP`` s)
``and`` / ``or``           ``AND`` / ``OR``
``a if c else b``          ``SELECT`` (operands ``c, a, b``)
``min max abs``            ``MIN MAX ABS``
``rotl rotr sext zext``    intrinsic calls -> the matching opcode
``mac(a, x, y)``           explicit ``MAC``
literals                   ``CONST`` (deduplicated per block)
``x[i]`` load / store      ``LOAD`` / ``STORE`` (invalid: region split)
``obj.attr`` load          ``LOAD`` (invalid: region split)
other calls                ``CALL`` (invalid: region split)
========================  ==========================================

Subscript accesses and calls are *invalid* operations per thesis
Section 5.2.1 — they can never join a custom instruction and split the
block into regions.  Anything without a sensible opcode mapping
(``while``-less constructs such as ``try``, ``with``, ``yield``,
comprehensions, starred args...) raises
:class:`~repro.errors.FrontendError` naming the source file and line.

Loop bounds and branch probabilities come from :func:`kernel` decorator
hints, falling back to documented defaults (:data:`DEFAULT_LOOP_BOUND`
worst-case iterations, 50/50 branches, average trip = bound):

* ``bounds={"i": 32}`` — worst-case trip count per loop variable
  (``"while#0"``, ``"while#1"``... key the whiles in source order);
* ``bound=64`` — fallback for loops the keys above don't name
  (``for`` loops over constant ``range()`` derive their bound exactly
  and ignore the fallback);
* ``avg_trips={"i": 28.5}`` / ``avg_trip_ratio=0.8`` — average-case trip
  counts for profiling;
* ``taken_probs={0: 0.9}`` — then-branch probability per ``if``, keyed by
  source order; ``taken_prob=0.5`` is the fallback.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import FrontendError
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, IfElse, Loop, Program, Seq
from repro.isa.opcodes import Opcode

__all__ = [
    "DEFAULT_LOOP_BOUND",
    "KernelHints",
    "ingest_function",
    "ingest_path",
    "ingest_source",
    "kernel",
]

#: Worst-case trip count assumed for loops with no static bound and no hint.
DEFAULT_LOOP_BOUND = 64

_HINTS_ATTR = "__repro_hints__"


@dataclass(frozen=True)
class KernelHints:
    """Front-end hints attached to a kernel (see the :func:`kernel` table).

    All fields are optional; absent hints fall back to the documented
    defaults.  ``name`` overrides the workload name (default: the
    function's own name).
    """

    name: str | None = None
    bound: int = DEFAULT_LOOP_BOUND
    bounds: Mapping[str, int] = field(default_factory=dict)
    avg_trip_ratio: float = 1.0
    avg_trips: Mapping[str, float] = field(default_factory=dict)
    taken_prob: float = 0.5
    taken_probs: Mapping[int, float] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, data: Mapping | None) -> "KernelHints":
        """Build hints from a plain dict (e.g. ``repro ingest --hints``)."""
        if not data:
            return cls()
        unknown = set(data) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise FrontendError(
                f"unknown kernel hint(s): {', '.join(sorted(unknown))}"
            )
        return cls(**dict(data))

    def loop_bound(self, key: str, static: int | None) -> int:
        explicit = _mapping_get(self.bounds, key)
        if explicit is not None:
            return int(explicit)
        if static is not None:
            return static
        return int(self.bound)

    def loop_avg(self, key: str, bound: int) -> float:
        explicit = _mapping_get(self.avg_trips, key)
        if explicit is not None:
            return float(explicit)
        return float(bound) * float(self.avg_trip_ratio)

    def branch_prob(self, index: int) -> float:
        explicit = _mapping_get(self.taken_probs, index)
        if explicit is not None:
            return float(explicit)
        return float(self.taken_prob)


def _mapping_get(mapping: Mapping, key):
    """Tolerant lookup: JSON hints arrive with string keys."""
    if key in mapping:
        return mapping[key]
    return mapping.get(str(key))


def kernel(fn: Callable | None = None, /, **hints):
    """Decorator attaching :class:`KernelHints` to a kernel function.

    Usable bare (``@kernel``) or parameterized (``@kernel(bound=32,
    taken_probs={0: 0.9})``).  The function itself is returned unchanged —
    it stays callable, and the hints ride along on a
    ``__repro_hints__`` attribute read by :func:`ingest_function`
    (and statically by :func:`ingest_source` for ``.py`` files).
    """
    parsed = KernelHints.from_mapping(hints)

    def attach(f: Callable) -> Callable:
        setattr(f, _HINTS_ATTR, parsed)
        return f

    if fn is not None:
        return attach(fn)
    return attach


# ----------------------------------------------------------------------
# Expression -> opcode tables
# ----------------------------------------------------------------------
_BINOPS: dict[type, Opcode] = {
    ast.Add: Opcode.ADD,
    ast.Sub: Opcode.SUB,
    ast.Mult: Opcode.MUL,
    ast.Div: Opcode.DIV,
    ast.FloorDiv: Opcode.DIV,
    ast.Mod: Opcode.DIV,  # a hardware modulo shares the divider
    ast.LShift: Opcode.SHL,
    ast.RShift: Opcode.SHR,
    ast.BitAnd: Opcode.AND,
    ast.BitOr: Opcode.OR,
    ast.BitXor: Opcode.XOR,
}

_UNARYOPS: dict[type, Opcode] = {
    ast.USub: Opcode.NEG,
    ast.Invert: Opcode.NOT,
    ast.Not: Opcode.NOT,
}

#: Calls by these names map onto primitive opcodes instead of ``CALL``.
_INTRINSICS: dict[str, tuple[Opcode, int]] = {
    "abs": (Opcode.ABS, 1),
    "min": (Opcode.MIN, 2),
    "max": (Opcode.MAX, 2),
    "rotl": (Opcode.ROTL, 2),
    "rotr": (Opcode.ROTR, 2),
    "sext": (Opcode.SEXT, 1),
    "zext": (Opcode.ZEXT, 1),
    "mac": (Opcode.MAC, 3),
    "select": (Opcode.SELECT, 3),
}


class _Lowering:
    """One function's lowering state (open block, def-use maps, counters)."""

    def __init__(self, name: str, filename: str, hints: KernelHints) -> None:
        self.name = name
        self.filename = filename
        self.hints = hints
        #: Reaching definitions per name in *closed* blocks.  Multiple
        #: entries arise from if/else merges, where either branch's
        #: definition may reach a later use.
        self.prior_defs: dict[str, tuple[tuple[DataFlowGraph, int], ...]] = {}
        self.block_count = 0
        self.if_count = 0
        self.while_count = 0
        self.loop_depth = 0
        self._open_dfg: DataFlowGraph | None = None
        self._defs: dict[str, int] = {}
        self._consts: dict[tuple, int] = {}
        self._external_uses: set[str] = set()

    # ------------------------------------------------------------------
    def err(self, node: ast.AST | None, message: str) -> FrontendError:
        where = self.filename
        if node is not None and hasattr(node, "lineno"):
            where = f"{where}:{node.lineno}"
        return FrontendError(f"{where}: {message}")

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def open_dfg(self) -> DataFlowGraph:
        if self._open_dfg is None:
            self._open_dfg = DataFlowGraph(
                name=f"{self.name}.bb{self.block_count}"
            )
            self.block_count += 1
            self._defs = {}
            self._consts = {}
            self._external_uses = set()
        return self._open_dfg

    def flush(self, out: list) -> None:
        """Close the open block (if any) into *out* and publish its defs."""
        dfg = self._open_dfg
        if dfg is None:
            return
        self._open_dfg = None
        if len(dfg):
            for var, node in self._defs.items():
                self.prior_defs[var] = ((dfg, node),)
            out.append(Block(dfg))
        self._defs = {}
        self._consts = {}
        self._external_uses = set()

    # ------------------------------------------------------------------
    # Operand resolution
    # ------------------------------------------------------------------
    def add_node(
        self,
        op: Opcode,
        operands: list[int | None],
        live_out: bool = False,
    ) -> int:
        dfg = self.open_dfg()
        preds = [o for o in operands if o is not None]
        external = sum(1 for o in operands if o is None)
        return dfg.add_op(op, preds, live_out=live_out, external_inputs=external)

    def const(self, value) -> int:
        dfg = self.open_dfg()
        key = (type(value).__name__, value)
        node = self._consts.get(key)
        if node is None:
            node = dfg.add_op(Opcode.CONST)
            self._consts[key] = node
        return node

    def use_name(self, name: str) -> int | None:
        """Resolve a name use: in-block producer id, or None (live-in).

        A use satisfied by an *earlier block's* definition marks that
        definition live-out — the def-use chain crosses the block
        boundary through a register.
        """
        if self._open_dfg is not None and name in self._defs:
            return self._defs[name]
        self._external_uses.add(name)
        for src_dfg, src_node in self.prior_defs.get(name, ()):
            src_dfg.set_live_out(src_node)
        return None

    def define(self, name: str, node: int | None, stmt: ast.AST) -> None:
        """Bind *name* to *node* in the open block.

        An external (non-node) value is materialized as a ``MOV`` so the
        binding has a producer.  Inside a loop, redefining a name the
        block already consumed from outside makes the new definition
        live-out: the value is carried into the next iteration.
        """
        if node is None:
            node = self.add_node(Opcode.MOV, [None])
        self._defs[name] = node
        if self.loop_depth > 0 and name in self._external_uses:
            self.open_dfg().set_live_out(node)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expr(self, node: ast.expr) -> int | None:
        """Lower an expression; return its producer node (None = live-in)."""
        if isinstance(node, ast.Name):
            return self.use_name(node.id)
        if isinstance(node, ast.Constant):
            if node.value is None or isinstance(node.value, (bool, int, float)):
                return self.const(node.value)
            raise self.err(
                node, f"unsupported literal {type(node.value).__name__!r}"
            )
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            op = _UNARYOPS.get(type(node.op))
            if op is None:  # UAdd is a no-op
                return self.expr(node.operand)
            return self.add_node(op, [self.expr(node.operand)])
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.BoolOp):
            op = Opcode.AND if isinstance(node.op, ast.And) else Opcode.OR
            acc = self.expr(node.values[0])
            for value in node.values[1:]:
                acc = self.add_node(op, [acc, self.expr(value)])
            return acc
        if isinstance(node, ast.IfExp):
            cond = self.expr(node.test)
            then = self.expr(node.body)
            other = self.expr(node.orelse)
            return self.add_node(Opcode.SELECT, [cond, then, other])
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._load(node)
        if isinstance(node, ast.Attribute):
            # A field read is a memory access: LOAD of an external address.
            return self.add_node(Opcode.LOAD, [None])
        if isinstance(node, (ast.Tuple, ast.List)):
            raise self.err(
                node,
                "tuple/list expressions are only supported as assignment "
                "targets and return values",
            )
        raise self.err(
            node, f"unsupported expression {type(node).__name__!r}"
        )

    def _binop(self, node: ast.BinOp) -> int:
        kind = type(node.op)
        if kind not in _BINOPS:
            raise self.err(
                node, f"unsupported operator {type(node.op).__name__!r}"
            )
        if kind is ast.Add:
            # MAC fusion: a + b*c (either side) has single-consumer MUL
            # operands by construction, so fold them into one 3-input MAC.
            for mul, acc in ((node.left, node.right), (node.right, node.left)):
                if isinstance(mul, ast.BinOp) and isinstance(mul.op, ast.Mult):
                    acc_v = self.expr(acc)
                    x = self.expr(mul.left)
                    y = self.expr(mul.right)
                    return self.add_node(Opcode.MAC, [acc_v, x, y])
        return self.add_node(
            _BINOPS[kind], [self.expr(node.left), self.expr(node.right)]
        )

    def _compare(self, node: ast.Compare) -> int:
        left = self.expr(node.left)
        cmps: list[int] = []
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                raise self.err(
                    node, f"unsupported comparison {type(op).__name__!r}"
                )
            right = self.expr(comparator)
            cmps.append(self.add_node(Opcode.CMP, [left, right]))
            left = right
        acc = cmps[0]
        for extra in cmps[1:]:
            acc = self.add_node(Opcode.AND, [acc, extra])
        return acc

    def _call(self, node: ast.Call) -> int:
        if node.keywords:
            raise self.err(node, "calls with keyword arguments are unsupported")
        callee = node.func.id if isinstance(node.func, ast.Name) else None
        args = [self.expr(a) for a in node.args]
        intrinsic = _INTRINSICS.get(callee) if callee else None
        if intrinsic is not None:
            op, arity = intrinsic
            if op in (Opcode.MIN, Opcode.MAX) and len(args) > arity:
                acc = args[0]
                for extra in args[1:]:
                    acc = self.add_node(op, [acc, extra])
                return acc
            if len(args) != arity:
                raise self.err(
                    node, f"{callee}() takes {arity} argument(s), got {len(args)}"
                )
            return self.add_node(op, args)
        # Opaque call: an invalid region-splitting operation.
        return self.add_node(Opcode.CALL, args)

    def _load(self, node: ast.Subscript) -> int:
        address = self._address(node)
        return self.add_node(Opcode.LOAD, [address])

    def _address(self, node: ast.Subscript) -> int | None:
        """Address operand of a subscript: the index expression's value.

        The base is an external pointer when it is a plain name; a
        computed base (e.g. ``a[i][j]``) contributes its own node.
        """
        if isinstance(node.slice, ast.Slice):
            raise self.err(node, "slice subscripts are unsupported")
        index = self.expr(node.slice)
        if isinstance(node.value, ast.Name):
            return index
        base = self.expr(node.value)
        return self.add_node(Opcode.ADD, [base, index])

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_stmts(self, stmts: list[ast.stmt]) -> list:
        out: list = []
        for stmt in stmts:
            self.stmt(stmt, out)
        self.flush(out)
        return out

    def stmt(self, stmt: ast.stmt, out: list) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt, stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt, [stmt.target], stmt.value)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, str
            ):
                return  # docstring
            self.expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._if(stmt, out)
        elif isinstance(stmt, ast.For):
            self._for(stmt, out)
        elif isinstance(stmt, ast.While):
            self._while(stmt, out)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            # Early exit only shortens the trip count; the worst-case
            # bound stands.  The jump itself is a branch operation.
            self.add_node(Opcode.BRANCH, [None])
        elif isinstance(stmt, ast.Pass):
            return
        else:
            raise self.err(
                stmt, f"unsupported construct {type(stmt).__name__!r}"
            )

    def _assign(
        self, stmt: ast.stmt, targets: list[ast.expr], value: ast.expr
    ) -> None:
        if len(targets) != 1:
            raise self.err(stmt, "chained assignment is unsupported")
        target = targets[0]
        if isinstance(target, ast.Tuple):
            if not isinstance(value, ast.Tuple) or len(value.elts) != len(
                target.elts
            ):
                raise self.err(
                    stmt, "tuple assignment needs a matching tuple of values"
                )
            values = [self.expr(v) for v in value.elts]
            for t, v in zip(target.elts, values):
                if not isinstance(t, ast.Name):
                    raise self.err(stmt, "tuple targets must be plain names")
                self.define(t.id, v, stmt)
            return
        if isinstance(target, ast.Name):
            self.define(target.id, self.expr(value), stmt)
            return
        if isinstance(target, ast.Subscript):
            value_node = self.expr(value)
            address = self._address(target)
            self.add_node(Opcode.STORE, [value_node, address])
            return
        raise self.err(
            stmt, f"unsupported assignment target {type(target).__name__!r}"
        )

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        desugared = ast.BinOp(
            left=_target_as_load(stmt.target), op=stmt.op, right=stmt.value
        )
        ast.copy_location(desugared, stmt)
        ast.fix_missing_locations(desugared)
        self._assign(stmt, [stmt.target], desugared)

    def _return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        values = (
            stmt.value.elts
            if isinstance(stmt.value, ast.Tuple)
            else [stmt.value]
        )
        for value in values:
            node = self.expr(value)
            if node is not None:
                self.open_dfg().set_live_out(node)

    def _if(self, stmt: ast.If, out: list) -> None:
        index = self.if_count
        self.if_count += 1
        cond = self.expr(stmt.test)
        self.add_node(Opcode.BRANCH, [cond])
        self.flush(out)
        # Each branch lowers against the pre-branch def map; afterwards
        # both branches' definitions are visible (an approximation of the
        # phi-merge: later uses mark whichever branch defined last).
        snapshot = dict(self.prior_defs)
        then_branch = Seq(self.lower_stmts(stmt.body))
        then_defs = self.prior_defs
        self.prior_defs = dict(snapshot)
        else_branch = Seq(self.lower_stmts(stmt.orelse))
        else_defs = self.prior_defs
        merged = dict(snapshot)
        for name in set(then_defs) | set(else_defs):
            reaching: dict[tuple[int, int], tuple[DataFlowGraph, int]] = {}
            for defs in (then_defs.get(name, ()), else_defs.get(name, ())):
                for src_dfg, src_node in defs:
                    reaching[(id(src_dfg), src_node)] = (src_dfg, src_node)
            merged[name] = tuple(reaching.values())
        self.prior_defs = merged
        out.append(
            IfElse(
                then_branch=then_branch,
                else_branch=else_branch,
                taken_prob=self.hints.branch_prob(index),
            )
        )

    def _for(self, stmt: ast.For, out: list) -> None:
        if stmt.orelse:
            raise self.err(stmt, "for/else is unsupported")
        if not isinstance(stmt.target, ast.Name):
            raise self.err(stmt, "loop target must be a plain name")
        call = stmt.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
            and 1 <= len(call.args) <= 3
            and not call.keywords
        ):
            raise self.err(
                stmt,
                "only 'for <name> in range(...)' loops are supported "
                "(use a @kernel bound hint for anything else)",
            )
        var = stmt.target.id
        static = _static_range_trips(call.args)
        dynamic = static is None
        bound_node: int | None = None
        if dynamic:
            # Dynamic bound: its expression is computed in the preheader
            # (a plain name stays a live-in and produces no node).
            for arg in call.args:
                bound_node = self.expr(arg)
        bound = self.hints.loop_bound(var, static)
        if bound <= 0:
            return  # statically empty loop: dead code
        if bound_node is not None:
            # The latch compares against the bound across the block edge.
            self.open_dfg().set_live_out(bound_node)
        self.flush(out)
        self.loop_depth += 1
        body: list = []
        # Induction step: i' = i + 1, carried into the next iteration.
        step = self.add_node(Opcode.ADD, [None, self.const(1)], live_out=True)
        self._defs[var] = step
        for inner in stmt.body:
            self.stmt(inner, body)
        # Loop latch: compare the induction value against the bound and
        # branch back (the bound is a live-in when dynamic, a constant
        # otherwise).
        limit = None if dynamic else self.const(bound)
        cmp = self.add_node(Opcode.CMP, [self.use_name(var), limit])
        self.add_node(Opcode.BRANCH, [cmp])
        self.flush(body)
        self.loop_depth -= 1
        out.append(
            Loop(
                body=Seq(body),
                bound=bound,
                avg_trip=min(self.hints.loop_avg(var, bound), float(bound)),
            )
        )

    def _while(self, stmt: ast.While, out: list) -> None:
        if stmt.orelse:
            raise self.err(stmt, "while/else is unsupported")
        key = f"while#{self.while_count}"
        self.while_count += 1
        self.flush(out)
        self.loop_depth += 1
        body: list = []
        # The condition re-evaluates every iteration: it heads the body.
        cond = self.expr(stmt.test)
        self.add_node(Opcode.BRANCH, [cond])
        for inner in stmt.body:
            self.stmt(inner, body)
        self.flush(body)
        self.loop_depth -= 1
        bound = self.hints.loop_bound(key, None)
        out.append(
            Loop(
                body=Seq(body),
                bound=bound,
                avg_trip=min(self.hints.loop_avg(key, bound), float(bound)),
            )
        )


def _target_as_load(target: ast.expr) -> ast.expr:
    """The load-context twin of an assignment target (for ``x += ...``)."""
    dup = ast.parse(ast.unparse(target), mode="eval").body
    ast.copy_location(dup, target)
    ast.fix_missing_locations(dup)
    return dup


def _static_range_trips(args: list[ast.expr]) -> int | None:
    """Trip count of ``range(...)`` when every argument is a literal."""
    values = []
    for arg in args:
        try:
            values.append(ast.literal_eval(arg))
        except (ValueError, SyntaxError):
            return None
    if not all(isinstance(v, int) for v in values):
        return None
    try:
        return len(range(*values))
    except (TypeError, ValueError):
        return None


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _lower_function(
    fndef: ast.FunctionDef,
    filename: str,
    hints: KernelHints,
    name: str | None,
) -> Program:
    program_name = name or hints.name or fndef.name
    lowering = _Lowering(program_name, filename, hints)
    constructs = lowering.lower_stmts(fndef.body)
    if not any(True for c in Seq(constructs).blocks()):
        raise lowering.err(
            fndef, f"function {fndef.name!r} has no operations to ingest"
        )
    return Program(program_name, Seq(constructs))


def ingest_function(
    fn: Callable,
    hints: KernelHints | Mapping | None = None,
    name: str | None = None,
) -> Program:
    """Compile a live Python function into a :class:`Program`.

    Hints are taken from the :func:`kernel` decorator when present;
    explicitly passed *hints* override them wholesale.
    """
    if hints is None:
        hints = getattr(fn, _HINTS_ATTR, None)
    if not isinstance(hints, KernelHints):
        hints = KernelHints.from_mapping(hints)
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        filename = inspect.getsourcefile(fn) or "<function>"
    except (OSError, TypeError) as exc:
        raise FrontendError(
            f"cannot read the source of {getattr(fn, '__name__', fn)!r}: {exc}"
        ) from exc
    return ingest_source(
        source,
        filename=filename,
        function=getattr(fn, "__name__", None),
        hints=hints,
        name=name,
    )


def ingest_source(
    source: str,
    filename: str = "<string>",
    function: str | None = None,
    hints: KernelHints | Mapping | None = None,
    name: str | None = None,
) -> Program:
    """Compile Python source text into a :class:`Program`.

    *function* selects a top-level ``def`` by name.  Without it, a module
    with a single function ingests that one; with several, exactly one
    must carry a :func:`kernel` decorator.  Decorator hints are read
    statically (literal keyword values) so a ``.py`` file ingests without
    being imported; explicitly passed *hints* override them.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise FrontendError(
            f"{filename}:{exc.lineno or 0}: not valid Python ({exc.msg})"
        ) from exc
    fndefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if not fndefs:
        raise FrontendError(f"{filename}: no function definition found")
    chosen = _choose_function(fndefs, function, filename)
    if hints is None:
        hints = _static_hints(chosen, filename)
    if not isinstance(hints, KernelHints):
        hints = KernelHints.from_mapping(hints)
    return _lower_function(chosen, filename, hints, name)


def ingest_path(
    path: str | Path,
    function: str | None = None,
    hints: KernelHints | Mapping | None = None,
    name: str | None = None,
) -> Program:
    """Compile a ``.py`` file into a :class:`Program` (see
    :func:`ingest_source`)."""
    path = Path(path)
    try:
        source = path.read_text()
    except OSError as exc:
        raise FrontendError(f"{path}: cannot read ({exc})") from exc
    return ingest_source(
        source, filename=str(path), function=function, hints=hints, name=name
    )


def _choose_function(
    fndefs: list[ast.FunctionDef], function: str | None, filename: str
) -> ast.FunctionDef:
    if function is not None:
        for fndef in fndefs:
            if fndef.name == function:
                return fndef
        raise FrontendError(
            f"{filename}: no function named {function!r} "
            f"(found: {', '.join(f.name for f in fndefs)})"
        )
    if len(fndefs) == 1:
        return fndefs[0]
    decorated = [f for f in fndefs if _kernel_decorator(f) is not None]
    if len(decorated) == 1:
        return decorated[0]
    raise FrontendError(
        f"{filename}: {len(fndefs)} functions found; pick one with "
        "--function or decorate exactly one with @kernel"
    )


def _kernel_decorator(fndef: ast.FunctionDef) -> ast.expr | None:
    for deco in fndef.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "kernel":
            return deco
        if isinstance(target, ast.Attribute) and target.attr == "kernel":
            return deco
    return None


def _static_hints(fndef: ast.FunctionDef, filename: str) -> KernelHints:
    """Read ``@kernel(...)`` hints statically from the decorator AST."""
    deco = _kernel_decorator(fndef)
    if deco is None or not isinstance(deco, ast.Call):
        return KernelHints()
    values: dict = {}
    for kw in deco.keywords:
        if kw.arg is None:
            raise FrontendError(
                f"{filename}:{deco.lineno}: @kernel(**...) is unsupported"
            )
        try:
            values[kw.arg] = ast.literal_eval(kw.value)
        except (ValueError, SyntaxError) as exc:
            raise FrontendError(
                f"{filename}:{deco.lineno}: @kernel hint {kw.arg!r} must be "
                f"a literal value"
            ) from exc
    return KernelHints.from_mapping(values)
