"""Real-code front-end: ingest Python kernels and DFG files as workloads.

Three entry points feed the pipelines:

* :func:`ingest_function` / :func:`ingest_source` / :func:`ingest_path` —
  compile a plain Python function (optionally decorated with
  :func:`kernel` hints) into a :class:`~repro.graphs.program.Program`;
* :func:`dfg_from_dict` / :func:`import_dot` — load a single
  :class:`~repro.graphs.dfg.DataFlowGraph` from the JSON artifact form or
  from :func:`~repro.graphs.export.dfg_to_dot` output (exact inverse);
* :func:`program_to_dict` / :func:`program_from_dict` — the ``repro/v1``
  program artifact schema written by ``repro ingest`` and resolved by the
  workload registry (:mod:`repro.workloads.registry`).

Ingested programs are first-class workloads: registering one (or pointing
a benchmark name at an artifact path) makes it consumable by every chapter
pipeline and all service job kinds, content-keyed through the existing
``cache.program_fingerprint``/``dfg_digest``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.frontend.graphio import (
    dfg_from_dict,
    dfg_to_dict,
    import_dot,
    program_from_dict,
    program_to_dict,
)
from repro.frontend.pyast import (
    DEFAULT_LOOP_BOUND,
    KernelHints,
    ingest_function,
    ingest_path,
    ingest_source,
    kernel,
)

__all__ = [
    "DEFAULT_LOOP_BOUND",
    "KernelHints",
    "dfg_from_dict",
    "dfg_to_dict",
    "import_dot",
    "ingest_function",
    "ingest_path",
    "ingest_source",
    "kernel",
    "loops_from_programs",
    "program_from_dict",
    "program_to_dict",
]


def loops_from_programs(
    programs: Sequence,
    max_versions: int = 4,
    max_inputs: int = 4,
    max_outputs: int = 2,
    engine: str = "bitset",
    use_cache: bool = True,
):
    """Derive Chapter 6 hot loops from programs' configuration curves.

    Each program becomes one :class:`~repro.reconfig.model.HotLoop`: the
    area/cycles configuration curve of its customized task is re-expressed
    as CIS versions, with ``gain = software cycles - configured cycles``
    (version 0 stays the mandatory software version).  At most
    *max_versions* versions are kept per loop (evenly thinned from the
    curve, always keeping the highest-gain point).

    Returns:
        ``(loops, trace)`` where the trace visits the loops round-robin —
        a neutral default when no measured loop trace exists.
    """
    from repro.core.flow import build_task  # lazy: core pulls heavy deps
    from repro.reconfig.model import CISVersion, HotLoop

    loops: list[HotLoop] = []
    for program in programs:
        task = build_task(
            program,
            curve_steps=max(max_versions, 2),
            max_inputs=max_inputs,
            max_outputs=max_outputs,
            engine=engine,
            use_cache=use_cache,
        )
        curve = list(task.configurations)
        base_cycles = curve[0].cycles
        versions = [CISVersion(area=0.0, gain=0.0)]
        for cfg in curve[1:]:
            gain = base_cycles - cfg.cycles
            if gain > 0 and cfg.area > 0:
                versions.append(CISVersion(area=cfg.area, gain=gain))
        if len(versions) > max_versions:
            # Thin evenly but always keep the last (highest-gain) point.
            keep = {0, len(versions) - 1}
            step = (len(versions) - 1) / (max_versions - 1)
            keep.update(round(i * step) for i in range(max_versions))
            versions = [v for i, v in enumerate(versions) if i in keep][
                :max_versions
            ]
        loops.append(HotLoop(name=program.name, versions=tuple(versions)))
    reps = 3
    trace = [i for _ in range(reps) for i in range(len(loops))]
    return loops, trace
