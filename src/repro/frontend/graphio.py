"""DFG / program import-export: JSON dicts and DOT text.

The JSON form is the artifact written by ``repro ingest`` (schema
``repro/v1``); the DOT importer is the exact inverse of
:func:`repro.graphs.export.dfg_to_dot` — ``import_dot(dfg_to_dot(g))``
rebuilds a graph with the same name, opcodes, edges, live-outs and
external-input counts.

Both importers validate the graph shape and raise
:class:`~repro.errors.FrontendError` (a :class:`~repro.errors.ReproError`)
with one-line messages for: duplicate node ids, non-dense ids, unknown
opcodes, edges to missing nodes, and cycles.  Node ids must be dense
``0..n-1`` in topological order (the :class:`DataFlowGraph` invariant);
graphs numbered another way import with ``relabel=True``, which renumbers
them stably (smallest original id first among ready nodes).
"""

from __future__ import annotations

import heapq
import re
from typing import Any

from repro.errors import FrontendError
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, IfElse, Loop, Program, Seq
from repro.isa.opcodes import Opcode

__all__ = [
    "dfg_from_dict",
    "dfg_to_dict",
    "import_dot",
    "program_from_dict",
    "program_to_dict",
]

_SCHEMA = "repro/v1"  # matches repro.io._SCHEMA


# ----------------------------------------------------------------------
# JSON (dict) form
# ----------------------------------------------------------------------
def _nodes_to_list(dfg: DataFlowGraph) -> list[dict[str, Any]]:
    return [
        {
            "id": n,
            "op": str(dfg.op(n)),
            "preds": dfg.preds(n),
            "live_out": dfg.is_live_out(n),
            "external_inputs": dfg.external_inputs(n),
        }
        for n in dfg.nodes
    ]


def dfg_to_dict(dfg: DataFlowGraph) -> dict[str, Any]:
    """Serialize one :class:`DataFlowGraph` as a ``repro/v1`` artifact."""
    return {
        "schema": _SCHEMA,
        "kind": "dfg",
        "name": dfg.name,
        "nodes": _nodes_to_list(dfg),
    }


def dfg_from_dict(data: dict[str, Any], relabel: bool = False) -> DataFlowGraph:
    """Inverse of :func:`dfg_to_dict` (schema/kind markers optional).

    Args:
        data: a dict with ``name`` and ``nodes`` keys (a full artifact or
            an embedded block record).
        relabel: accept non-topological ids and renumber them stably.
    """
    if not isinstance(data, dict):
        raise FrontendError("DFG record must be a JSON object")
    if "kind" in data and data["kind"] != "dfg":
        raise FrontendError(f"expected kind 'dfg', got {data['kind']!r}")
    nodes = data.get("nodes")
    if not isinstance(nodes, list):
        raise FrontendError("DFG record has no 'nodes' list")
    records = []
    for i, node in enumerate(nodes):
        if not isinstance(node, dict) or "id" not in node or "op" not in node:
            raise FrontendError(f"node #{i}: needs 'id' and 'op' fields")
        records.append(
            _NodeRecord(
                id=node["id"],
                op=node["op"],
                preds=list(node.get("preds", ())),
                live_out=bool(node.get("live_out", False)),
                external_inputs=node.get("external_inputs"),
            )
        )
    return _build_dfg(str(data.get("name", "")), records, relabel=relabel)


# ----------------------------------------------------------------------
# DOT form
# ----------------------------------------------------------------------
_DOT_HEADER = re.compile(r'^digraph\s+"((?:[^"\\]|\\.)*)"\s*\{$')
_DOT_NODE = re.compile(
    r'^n(\d+)\s+\[label="((?:[^"\\]|\\.)*)"'
    r"(?:,\s*shape=\w+)?"
    r"(?:,\s*xin=(\d+))?"
    r"(?P<liveout>,\s*liveout=true)?"
    r"(?:,\s*style=\w+)?"
    r"\];$"
)
_DOT_EDGE = re.compile(r"^n(\d+)\s*->\s*n(\d+);$")
#: Presentation-only lines the importer skips.
_DOT_SKIP = re.compile(
    r"^(rankdir=|node\s*\[|subgraph\s|label=|\}$|\{$)"
)


def _unesc(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def import_dot(text: str, relabel: bool = False) -> DataFlowGraph:
    """Parse :func:`~repro.graphs.export.dfg_to_dot` output back to a DFG.

    Presentation attributes (shapes, styles, clusters) are ignored; the
    label's ``id: op`` pair, the ``xin``/``liveout`` marks and the edge
    list fully determine the graph.  Hand-written DOT in the same shape
    imports too — ``xin`` defaults to the opcode arity left unfed and
    ``liveout`` to false.
    """
    name = ""
    seen_header = False
    records: dict[int, _NodeRecord] = {}
    edges: list[tuple[int, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if not seen_header:
            m = _DOT_HEADER.match(line)
            if not m:
                raise FrontendError(
                    f"DOT line {lineno}: expected 'digraph \"name\" {{'"
                )
            name = _unesc(m.group(1))
            seen_header = True
            continue
        m = _DOT_EDGE.match(line)
        if m:
            edges.append((int(m.group(1)), int(m.group(2))))
            continue
        m = _DOT_NODE.match(line)
        if m:
            node_id = int(m.group(1))
            label = _unesc(m.group(2))
            label_id, sep, op_name = label.partition(": ")
            if not sep or label_id != str(node_id):
                raise FrontendError(
                    f"DOT line {lineno}: node n{node_id} label must be "
                    f"'{node_id}: <opcode>', got {label!r}"
                )
            if node_id in records:
                raise FrontendError(
                    f"DOT line {lineno}: duplicate node id {node_id}"
                )
            records[node_id] = _NodeRecord(
                id=node_id,
                op=op_name,
                preds=[],
                live_out=m.group("liveout") is not None,
                external_inputs=int(m.group(3)) if m.group(3) else None,
            )
            continue
        if _DOT_SKIP.match(line):
            continue
        raise FrontendError(f"DOT line {lineno}: unrecognized line {line!r}")
    if not seen_header:
        raise FrontendError("DOT text has no 'digraph' header")
    for src, dst in edges:
        for end in (src, dst):
            if end not in records:
                raise FrontendError(
                    f"DOT edge n{src} -> n{dst} references undeclared node n{end}"
                )
        records[dst].preds.append(src)
    ordered = [records[k] for k in sorted(records)]
    return _build_dfg(name, ordered, relabel=relabel)


# ----------------------------------------------------------------------
# Shared validation / construction
# ----------------------------------------------------------------------
class _NodeRecord:
    __slots__ = ("id", "op", "preds", "live_out", "external_inputs")

    def __init__(self, id, op, preds, live_out, external_inputs) -> None:
        self.id = id
        self.op = op
        self.preds = preds
        self.live_out = live_out
        self.external_inputs = external_inputs


def _build_dfg(
    name: str, records: list[_NodeRecord], relabel: bool
) -> DataFlowGraph:
    ids = [r.id for r in records]
    seen: set[int] = set()
    for i in ids:
        if not isinstance(i, int) or isinstance(i, bool):
            raise FrontendError(f"node id {i!r} is not an integer")
        if i in seen:
            raise FrontendError(f"duplicate node id {i}")
        seen.add(i)
    n = len(records)
    if seen != set(range(n)):
        missing = sorted(set(range(n)) - seen)[:3]
        raise FrontendError(
            f"node ids must be dense 0..{n - 1}; missing {missing} "
            f"(got {sorted(seen)[:5]}...)"
            if missing
            else f"node ids must be dense 0..{n - 1}"
        )
    by_id = {r.id: r for r in records}
    ops: dict[int, Opcode] = {}
    for r in records:
        try:
            ops[r.id] = Opcode(r.op)
        except ValueError:
            raise FrontendError(
                f"node {r.id}: unknown opcode {r.op!r}"
            ) from None
        for p in r.preds:
            if p not in by_id:
                raise FrontendError(
                    f"node {r.id}: predecessor {p} does not exist"
                )
            if p == r.id:
                raise FrontendError(f"node {r.id}: self-edge (cycle)")
    order = _topo_order(records)  # raises on cycles
    if not relabel:
        bad = next(
            (
                (p, r.id)
                for r in records
                for p in r.preds
                if p > r.id
            ),
            None,
        )
        if bad is not None:
            raise FrontendError(
                f"node ids are not in topological order (edge {bad[0]} -> "
                f"{bad[1]}); pass relabel=True (--relabel) to renumber"
            )
        order = sorted(by_id)
    renum = {old: new for new, old in enumerate(order)}
    dfg = DataFlowGraph(name=name)
    for old in order:
        r = by_id[old]
        dfg.add_op(
            ops[old],
            [renum[p] for p in r.preds],
            live_out=r.live_out,
            external_inputs=(
                None if r.external_inputs is None else int(r.external_inputs)
            ),
        )
    return dfg


def _topo_order(records: list[_NodeRecord]) -> list[int]:
    """Kahn's algorithm, smallest-id-first; raises FrontendError on cycles."""
    indeg = {r.id: 0 for r in records}
    succs: dict[int, list[int]] = {r.id: [] for r in records}
    for r in records:
        for p in set(r.preds):
            succs[p].append(r.id)
            indeg[r.id] += 1
    ready = [i for i, d in sorted(indeg.items()) if d == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        cur = heapq.heappop(ready)
        order.append(cur)
        for s in succs[cur]:
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(ready, s)
    if len(order) != len(records):
        stuck = sorted(i for i, d in indeg.items() if d > 0)[:5]
        raise FrontendError(f"graph has a cycle involving node(s) {stuck}")
    return order


# ----------------------------------------------------------------------
# Program (construct tree) form
# ----------------------------------------------------------------------
def program_to_dict(program: Program) -> dict[str, Any]:
    """Serialize a :class:`Program` as a ``repro/v1`` artifact."""
    return {
        "schema": _SCHEMA,
        "kind": "program",
        "name": program.name,
        "root": _construct_to_dict(program.root),
    }


def _construct_to_dict(node) -> dict[str, Any]:
    if isinstance(node, Block):
        return {
            "type": "block",
            "name": node.dfg.name,
            "nodes": _nodes_to_list(node.dfg),
        }
    if isinstance(node, Seq):
        return {
            "type": "seq",
            "children": [_construct_to_dict(c) for c in node.children],
        }
    if isinstance(node, Loop):
        return {
            "type": "loop",
            "bound": node.bound,
            "avg_trip": node.avg_trip,
            "body": _construct_to_dict(node.body),
        }
    if isinstance(node, IfElse):
        return {
            "type": "ifelse",
            "taken_prob": node.taken_prob,
            "then": _construct_to_dict(node.then_branch),
            "else": _construct_to_dict(node.else_branch),
        }
    raise FrontendError(f"cannot serialize construct {type(node).__name__!r}")


def program_from_dict(data: dict[str, Any], relabel: bool = False) -> Program:
    """Inverse of :func:`program_to_dict`."""
    if data.get("schema") != _SCHEMA:
        raise FrontendError(
            f"expected schema {_SCHEMA}, got {data.get('schema')!r}"
        )
    if data.get("kind") != "program":
        raise FrontendError(
            f"expected kind 'program', got {data.get('kind')!r}"
        )
    name = data.get("name")
    if not name or not isinstance(name, str):
        raise FrontendError("program artifact needs a non-empty 'name'")
    root = data.get("root")
    if not isinstance(root, dict):
        raise FrontendError("program artifact needs a 'root' construct")
    return Program(name, _construct_from_dict(root, relabel))


def _construct_from_dict(data: dict[str, Any], relabel: bool):
    kind = data.get("type")
    if kind == "block":
        return Block(dfg_from_dict({**data, "kind": "dfg"}, relabel=relabel))
    if kind == "seq":
        children = data.get("children", [])
        if not isinstance(children, list):
            raise FrontendError("seq construct needs a 'children' list")
        return Seq([_construct_from_dict(c, relabel) for c in children])
    if kind == "loop":
        if "bound" not in data or "body" not in data:
            raise FrontendError("loop construct needs 'bound' and 'body'")
        return Loop(
            body=_construct_from_dict(data["body"], relabel),
            bound=int(data["bound"]),
            avg_trip=(
                None if data.get("avg_trip") is None else float(data["avg_trip"])
            ),
        )
    if kind == "ifelse":
        if "then" not in data or "else" not in data:
            raise FrontendError("ifelse construct needs 'then' and 'else'")
        return IfElse(
            then_branch=_construct_from_dict(data["then"], relabel),
            else_branch=_construct_from_dict(data["else"], relabel),
            taken_prob=float(data.get("taken_prob", 0.5)),
        )
    raise FrontendError(f"unknown construct type {kind!r}")
