"""Response-time analysis (RTA) for fixed-priority scheduling.

An alternative exact schedulability test for RMS (Joseph & Pandya / Audsley
et al.): the worst-case response time of task ``T_i`` under preemptive
fixed priorities is the least fixed point of::

    R = C_i + sum_{j in hp(i)} ceil(R / P_j) C_j

iterated from ``R = C_i``; the task is schedulable iff ``R <= D_i``.
Equivalent to the schedulability-point test of Theorem 1 (used in
:mod:`repro.rtsched.rms`) for deadline = period; both are exposed so they
can cross-validate each other, and RTA additionally supports constrained
deadlines ``D_i <= P_i``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ScheduleError

__all__ = ["response_time", "rta_schedulable"]

EPS = 1e-9


def response_time(
    periods: Sequence[float],
    costs: Sequence[float],
    i: int,
    max_iterations: int = 10_000,
    engine: str = "vector",
) -> float | None:
    """Worst-case response time of task *i* (0-based, arrays period-sorted).

    Args:
        periods: task periods sorted increasingly (higher priority first).
        costs: execution times aligned with *periods*.
        i: index of the analyzed task.
        max_iterations: divergence guard.
        engine: ``"vector"`` (default) evaluates the interference sum with
            numpy — identical floats to the scalar loop for fewer than 128
            interfering tasks (numpy sums short axes sequentially);
            ``"reference"`` keeps the original scalar iteration.

    Returns:
        The response time, or None if the iteration exceeds the period
        (the task is then unschedulable with deadline = period; callers
        with shorter deadlines should compare against their own bound).
    """
    if not 0 <= i < len(periods):
        raise ScheduleError(f"task index {i} out of range")
    if engine not in ("vector", "reference"):
        raise ScheduleError(f"unknown engine {engine!r}; use 'vector' or 'reference'")
    c_i = costs[i]
    r = c_i
    if engine == "vector" and i > 0:
        hp_p = np.asarray(periods[:i], dtype=float)
        hp_c = np.asarray(costs[:i], dtype=float)
        limit = periods[i] * 2 + EPS
        for _ in range(max_iterations):
            nxt = c_i + float((np.ceil(r / hp_p - EPS) * hp_c).sum())
            if nxt <= r + EPS:
                return nxt
            r = nxt
            if r > limit:
                # Far past any sensible deadline; treat as divergent.
                return None
        return None
    for _ in range(max_iterations):
        interference = sum(
            math.ceil(r / periods[j] - EPS) * costs[j] for j in range(i)
        )
        nxt = c_i + interference
        if nxt <= r + EPS:
            return nxt
        r = nxt
        if r > periods[i] * 2 + EPS:
            # Far past any sensible deadline; treat as divergent.
            return None
    return None


def rta_schedulable(
    periods: Sequence[float],
    costs: Sequence[float],
    deadlines: Sequence[float] | None = None,
    engine: str = "vector",
) -> bool:
    """Exact fixed-priority schedulability via response-time analysis.

    Priorities are rate-monotonic (shorter period = higher priority) when
    *deadlines* is None, deadline-monotonic otherwise.

    Args:
        periods: task periods (any order).
        costs: execution times aligned with *periods*.
        deadlines: optional constrained deadlines (``D_i <= P_i``);
            defaults to the periods.
        engine: forwarded to :func:`response_time`.
    """
    n = len(periods)
    if len(costs) != n:
        raise ScheduleError("periods and costs must be aligned")
    if deadlines is None:
        deadlines = list(periods)
    elif len(deadlines) != n:
        raise ScheduleError("deadlines must align with periods")
    for d, p in zip(deadlines, periods):
        if d > p + EPS:
            raise ScheduleError("RTA here supports constrained deadlines only")
    # Deadline-monotonic priority order (equals RM when D = P).
    order = sorted(range(n), key=lambda k: (deadlines[k], periods[k]))
    p = [periods[k] for k in order]
    c = [costs[k] for k in order]
    d = [deadlines[k] for k in order]
    for i in range(n):
        r = response_time(p, c, i, engine=engine)
        if r is None or r > d[i] + EPS:
            return False
    return True
