"""Earliest-deadline-first (EDF) schedulability analysis.

For independent preemptable periodic tasks with deadlines equal to periods,
EDF is optimal and the exact schedulability condition is the utilization
bound ``U <= 1`` (Liu & Layland [70]; thesis Equation 3.1).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.rtsched.task import TaskSet

__all__ = ["edf_schedulable", "edf_schedulable_assignment", "edf_schedulable_costs"]

#: Numerical slack for utilization comparisons.
EPS = 1e-9


def edf_schedulable(task_set: TaskSet) -> bool:
    """True if the software-only task set is schedulable under EDF."""
    return task_set.utilization <= 1.0 + EPS


def edf_schedulable_costs(
    periods: Sequence[float], costs: Sequence[float]
) -> bool:
    """Exact EDF schedulability for raw (period, cost) arrays.

    The raw-array counterpart of :func:`edf_schedulable_assignment`, used
    by the degraded-mode analysis (:mod:`repro.faults.degraded`) where the
    faulted cost vector no longer corresponds to any configuration index.
    """
    return sum(c / p for c, p in zip(costs, periods)) <= 1.0 + EPS


def edf_schedulable_assignment(task_set: TaskSet, assignment: Sequence[int]) -> bool:
    """True if the task set with a configuration assignment is EDF-schedulable."""
    return task_set.utilization_for(assignment) <= 1.0 + EPS
