"""Real-time scheduling substrate (tasks, EDF/RMS analysis, simulation, energy)."""

from repro.rtsched.dbf import (
    deadline_points,
    demand_bound,
    edf_constrained_schedulable,
)
from repro.rtsched.edf import edf_schedulable, edf_schedulable_assignment
from repro.rtsched.response_time import response_time, rta_schedulable
from repro.rtsched.energy import (
    TM5400_POINTS,
    OperatingPoint,
    energy_improvement,
    energy_rate,
    hyperperiod_energy,
    lowest_feasible_point,
)
from repro.rtsched.rms import (
    rms_points,
    rms_schedulable,
    rms_schedulable_costs,
    rms_task_load,
)
from repro.rtsched.simulator import SimulationResult, simulate, simulate_taskset
from repro.rtsched.task import PeriodicTask, TaskSet, scale_periods_for_utilization

__all__ = [
    "deadline_points",
    "demand_bound",
    "edf_constrained_schedulable",
    "response_time",
    "rta_schedulable",
    "edf_schedulable",
    "edf_schedulable_assignment",
    "TM5400_POINTS",
    "OperatingPoint",
    "energy_improvement",
    "energy_rate",
    "hyperperiod_energy",
    "lowest_feasible_point",
    "rms_points",
    "rms_schedulable",
    "rms_schedulable_costs",
    "rms_task_load",
    "SimulationResult",
    "simulate",
    "simulate_taskset",
    "PeriodicTask",
    "TaskSet",
    "scale_periods_for_utilization",
]
