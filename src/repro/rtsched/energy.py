"""Static voltage scaling and energy estimation (thesis Section 3.2.2).

A lower processor utilization lets static voltage scaling (Pillai & Shin
[79]) pick a lower operating frequency/voltage pair while preserving
schedulability.  The thesis evaluates on the Transmeta TM5400 whose LongRun
operating points span 300 MHz @ 1.2 V to 633 MHz @ 1.6 V; task cycle counts
are fixed, so at frequency ``f`` the *time* utilization of a task set scales
by ``f_max / f``.

Schedulability conditions used by the static scaling algorithm, per [79]:

* EDF: ``U x f_max / f <= 1`` (exact);
* RMS: ``U x f_max / f <= n (2^{1/n} - 1)`` (Liu-Layland, sufficient but not
  necessary — the thesis notes this conservatism explains EDF's larger
  energy savings in Figure 3.4).

Energy over a hyperperiod ``H`` (in cycles at ``f_max``):
``E = V^2 x (executed cycles) + beta x V x H x (f / f_max)`` — a dynamic
``C V^2`` term per executed cycle plus a small leakage term over time.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.rtsched.task import TaskSet

__all__ = [
    "OperatingPoint",
    "TM5400_POINTS",
    "lowest_feasible_point",
    "hyperperiod_energy",
    "energy_rate",
    "energy_improvement",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One frequency/voltage operating point."""

    mhz: float
    volt: float


#: Transmeta TM5400-style LongRun table, 300 MHz @ 1.2 V .. 633 MHz @ 1.6 V
#: (thesis Section 3.2.2).
TM5400_POINTS: tuple[OperatingPoint, ...] = (
    OperatingPoint(300.0, 1.20),
    OperatingPoint(366.0, 1.30),
    OperatingPoint(433.0, 1.35),
    OperatingPoint(500.0, 1.40),
    OperatingPoint(566.0, 1.50),
    OperatingPoint(633.0, 1.60),
)


def _rms_llbound(n: int) -> float:
    return n * (2.0 ** (1.0 / n) - 1.0)


def lowest_feasible_point(
    utilization: float,
    n_tasks: int,
    policy: str = "edf",
    points: Sequence[OperatingPoint] = TM5400_POINTS,
) -> OperatingPoint | None:
    """Lowest operating point keeping the task set schedulable.

    Args:
        utilization: cycle utilization at maximum frequency.
        n_tasks: number of tasks (for the RMS Liu-Layland bound).
        policy: ``"edf"`` or ``"rms"``.
        points: available operating points (any order).

    Returns:
        The slowest feasible :class:`OperatingPoint`, or None if even the
        fastest point cannot schedule the set.
    """
    if policy == "edf":
        bound = 1.0
    elif policy == "rms":
        bound = _rms_llbound(n_tasks)
    else:
        raise ScheduleError(f"unknown policy {policy!r}; use 'edf' or 'rms'")
    f_max = max(p.mhz for p in points)
    for p in sorted(points, key=lambda p: p.mhz):
        if utilization * f_max / p.mhz <= bound + 1e-9:
            return p
    return None


def hyperperiod_energy(
    task_set: TaskSet,
    assignment: Sequence[int] | None,
    point: OperatingPoint,
    points: Sequence[OperatingPoint] = TM5400_POINTS,
    leakage_beta: float = 0.05,
) -> float:
    """Energy consumed over one hyperperiod at an operating point.

    Args:
        task_set: the tasks (integral periods required).
        assignment: configuration choice per task (None = software).
        point: the operating point in use.
        points: the platform table (to find ``f_max``).
        leakage_beta: weight of the leakage (static) term.

    Returns:
        Energy in arbitrary (consistent) units.
    """
    tasks = task_set.tasks
    if assignment is None:
        costs = [t.wcet for t in tasks]
    else:
        costs = [t.configurations[j].cycles for t, j in zip(tasks, assignment)]
    hyper = task_set.hyperperiod()
    executed = sum(c * (hyper / t.period) for c, t in zip(costs, tasks))
    f_max = max(p.mhz for p in points)
    dynamic = point.volt**2 * executed
    # Wall-clock length of the hyperperiod grows as the frequency drops.
    leakage = leakage_beta * point.volt * hyper * (f_max / point.mhz)
    return dynamic + leakage


def energy_rate(
    task_set: TaskSet,
    assignment: Sequence[int] | None,
    point: OperatingPoint,
    points: Sequence[OperatingPoint] = TM5400_POINTS,
    leakage_beta: float = 0.05,
) -> float:
    """Average power (energy per unit time) at an operating point.

    The dynamic term is ``V^2 x (cycles executed per unit time)``; the
    leakage term grows as the clock slows (relative wall time per cycle).
    Unlike :func:`hyperperiod_energy` this does not require integral
    periods — comparisons over a common horizon use the same rate.
    """
    tasks = task_set.tasks
    if assignment is None:
        costs = [t.wcet for t in tasks]
    else:
        costs = [t.configurations[j].cycles for t, j in zip(tasks, assignment)]
    cycles_per_time = sum(c / t.period for c, t in zip(costs, tasks))
    f_max = max(p.mhz for p in points)
    dynamic = point.volt**2 * cycles_per_time
    leakage = leakage_beta * point.volt * (f_max / point.mhz)
    return dynamic + leakage


def energy_improvement(
    task_set: TaskSet,
    baseline_assignment: Sequence[int] | None,
    custom_assignment: Sequence[int],
    policy: str = "edf",
    points: Sequence[OperatingPoint] = TM5400_POINTS,
    leakage_beta: float = 0.05,
) -> float | None:
    """Percent energy reduction of a customization, with voltage scaling.

    Both the baseline and the customized system independently pick their
    lowest feasible operating point; energies are compared over the
    hyperperiod.  If the baseline is unschedulable even at full speed, the
    comparison baseline is the *first schedulable* configuration per the
    thesis ("we perform the comparison w.r.t. the first schedulable
    solution") — here: the customized assignment at maximum frequency.

    Returns:
        Percent improvement in [0, 100), or None if the customized set is
        unschedulable at every operating point.
    """
    n = len(task_set)
    u_custom = task_set.utilization_for(custom_assignment)
    p_custom = lowest_feasible_point(u_custom, n, policy, points)
    if p_custom is None:
        return None
    e_custom = energy_rate(
        task_set, custom_assignment, p_custom, points, leakage_beta
    )

    if baseline_assignment is None:
        u_base = task_set.utilization
    else:
        u_base = task_set.utilization_for(baseline_assignment)
    p_base = lowest_feasible_point(u_base, n, policy, points)
    if p_base is None:
        # Baseline unschedulable: compare against the customized system
        # running at the fastest operating point (no scaling benefit).
        fastest = max(points, key=lambda p: p.mhz)
        e_base = energy_rate(
            task_set, custom_assignment, fastest, points, leakage_beta
        )
    else:
        e_base = energy_rate(
            task_set, baseline_assignment, p_base, points, leakage_beta
        )
    if e_base <= 0:
        return 0.0
    return max(0.0, 100.0 * (1.0 - e_custom / e_base))
