"""Exact rate-monotonic (RMS) schedulability analysis.

Implements Theorem 1 of thesis Section 3.1.4 (the Bini-Buttazzo exact test
[12]).  Tasks are sorted by increasing period.  Task ``T_i`` is schedulable
under RMS iff::

    L_i = min_{t in S_{i-1}(P_i)}  ( sum_{j<=i} ceil(t / P_j) C_j ) / t  <= 1

where the schedulability-point sets are defined by the double recurrence::

    S_0(t) = {t}
    S_i(t) = S_{i-1}( floor(t / P_i) P_i )  union  S_{i-1}(t)

The entire task set is schedulable iff ``max_i L_i <= 1``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.rtsched.task import TaskSet

__all__ = [
    "rms_points",
    "rms_task_load",
    "rms_task_loads",
    "rms_schedulable",
    "rms_schedulable_costs",
]

EPS = 1e-9


def rms_points(periods: Sequence[float], i: int, t: float) -> set[float]:
    """The schedulability-point set ``S_i(t)`` for the given periods.

    Args:
        periods: task periods, sorted by increasing value.
        i: recursion depth (uses periods ``P_1 .. P_i``, 1-based).
        t: the time point.

    Returns:
        The (deduplicated) set of points.  Worst-case cardinality is ``2^i``
        but overlaps collapse it in practice (thesis remark after Theorem 1).
    """
    if i == 0:
        return {t}
    p = periods[i - 1]
    floored = math.floor(t / p + EPS) * p
    points = rms_points(periods, i - 1, t)
    if floored > EPS:
        points = points | rms_points(periods, i - 1, floored)
    return points


def rms_task_load(
    periods: Sequence[float], costs: Sequence[float], i: int
) -> float:
    """The minimum load factor ``L_i`` of task ``T_i`` (0-based index).

    Args:
        periods: periods sorted increasingly (highest priority first).
        costs: execution times aligned with *periods*.
        i: task index, 0-based.

    Returns:
        ``L_i``; the task is RMS-schedulable iff the value is <= 1.
    """
    target = periods[i]
    candidates = rms_points(periods, i, target)
    best = math.inf
    for t in candidates:
        if t <= EPS:
            continue
        demand = 0.0
        for j in range(i + 1):
            demand += math.ceil(t / periods[j] - EPS) * costs[j]
        best = min(best, demand / t)
    return best


def rms_task_loads(
    periods: Sequence[float], costs: Sequence[float]
) -> list[float]:
    """All per-task load factors ``L_i`` for raw (period, cost) arrays.

    Arrays need not be pre-sorted; loads come back in the *original* task
    order so callers (the degraded-mode report) can attribute the binding
    load to the task that carries it.  The set is RMS-schedulable iff every
    returned value is <= 1.
    """
    order = sorted(range(len(periods)), key=lambda k: periods[k])
    p = [periods[k] for k in order]
    c = [costs[k] for k in order]
    loads = [0.0] * len(periods)
    for rank, original in enumerate(order):
        loads[original] = rms_task_load(p, c, rank)
    return loads


def rms_schedulable_costs(
    periods: Sequence[float], costs: Sequence[float]
) -> bool:
    """Exact RMS schedulability for raw (period, cost) arrays.

    Arrays need not be pre-sorted; they are sorted by period here.
    """
    order = sorted(range(len(periods)), key=lambda k: periods[k])
    p = [periods[k] for k in order]
    c = [costs[k] for k in order]
    for i in range(len(p)):
        if rms_task_load(p, c, i) > 1.0 + EPS:
            return False
    return True


def rms_schedulable(task_set: TaskSet, assignment: Sequence[int] | None = None) -> bool:
    """Exact RMS schedulability of a task set.

    Args:
        task_set: the task set.
        assignment: optional per-task configuration choice; defaults to the
            software configuration for every task.
    """
    tasks = task_set.tasks
    if assignment is None:
        costs = [t.wcet for t in tasks]
    else:
        costs = [t.configurations[j].cycles for t, j in zip(tasks, assignment)]
    periods = [t.period for t in tasks]
    return rms_schedulable_costs(periods, costs)
