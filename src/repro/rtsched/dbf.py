"""Processor-demand analysis for EDF with constrained deadlines.

For deadline = period the EDF test is the utilization bound; for
*constrained* deadlines ``D_i <= P_i`` (Baruah, Rosier & Howell) the exact
condition is that the demand bound function never exceeds the elapsed
time::

    dbf(t) = sum_i max(0, floor((t - D_i) / P_i) + 1) C_i  <=  t

checked at every absolute deadline up to a bounded horizon (the smaller of
the hyperperiod + max deadline and the busy-period style bound
``U / (1 - U) * max_i (P_i - D_i)``).

This extends the Chapter 3 selection machinery to constrained-deadline
workloads: :func:`edf_constrained_schedulable` plugs into the same
configuration-assignment interface as the plain utilization test.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ScheduleError

__all__ = ["demand_bound", "deadline_points", "edf_constrained_schedulable"]

EPS = 1e-9


def demand_bound(
    periods: Sequence[float],
    costs: Sequence[float],
    deadlines: Sequence[float],
    t: float,
) -> float:
    """The EDF demand bound function ``dbf(t)``."""
    total = 0.0
    for p, c, d in zip(periods, costs, deadlines):
        if t + EPS >= d:
            total += (math.floor((t - d) / p + EPS) + 1) * c
    return total


def deadline_points(
    periods: Sequence[float],
    deadlines: Sequence[float],
    horizon: float,
) -> list[float]:
    """All absolute deadlines ``d_i + k p_i`` up to *horizon*, sorted."""
    points: set[float] = set()
    for p, d in zip(periods, deadlines):
        t = d
        while t <= horizon + EPS:
            points.add(t)
            t += p
    return sorted(points)


def edf_constrained_schedulable(
    periods: Sequence[float],
    costs: Sequence[float],
    deadlines: Sequence[float] | None = None,
    max_points: int = 200_000,
    engine: str = "vector",
) -> bool:
    """Exact EDF schedulability with constrained deadlines.

    Args:
        periods: task periods.
        costs: execution times.
        deadlines: relative deadlines (defaults to the periods, where the
            test reduces to ``U <= 1``).
        max_points: guard on the number of checked deadline points.
        engine: ``"vector"`` (default) evaluates the whole demand matrix
            with numpy; ``"reference"`` walks the scalar point loop (the
            differential oracle).

    Returns:
        True iff every job meets its deadline under preemptive EDF.

    Raises:
        ScheduleError: malformed input or an unbounded test horizon that
            would exceed *max_points* (callers should fall back to the
            utilization bound or tighten deadlines).
    """
    n = len(periods)
    if len(costs) != n:
        raise ScheduleError("periods and costs must be aligned")
    if deadlines is None:
        deadlines = list(periods)
    if len(deadlines) != n:
        raise ScheduleError("deadlines must align with periods")
    if engine not in ("vector", "reference"):
        raise ScheduleError(f"unknown engine {engine!r}; use 'vector' or 'reference'")
    for d, p in zip(deadlines, periods):
        if d > p + EPS:
            raise ScheduleError("constrained deadlines require D <= P")
        if d <= 0:
            raise ScheduleError("deadlines must be positive")

    utilization = sum(c / p for c, p in zip(costs, periods))
    if utilization > 1.0 + EPS:
        return False
    if all(abs(d - p) < EPS for d, p in zip(deadlines, periods)):
        return True  # implicit deadlines: the utilization bound is exact

    # Busy-period style horizon (finite because U <= 1 was checked; for
    # U == 1 fall back to hyperperiod-bounded horizon when periods are
    # integral, else a generous multiple of the largest period).
    slack = max(p - d for p, d in zip(periods, deadlines))
    if utilization < 1.0 - 1e-12:
        horizon = utilization / (1.0 - utilization) * slack
    else:
        horizon = 0.0
    if horizon <= 0:
        horizon = max(periods) + max(deadlines)
    horizon = min(horizon, _lcm_or_large(periods) + max(deadlines))

    if engine == "reference":
        points = deadline_points(periods, deadlines, horizon)
        if len(points) > max_points:
            raise ScheduleError(
                f"demand test horizon needs {len(points)} points (> {max_points})"
            )
        for t in points:
            if demand_bound(periods, costs, deadlines, t) > t + EPS:
                return False
        return True

    # Vectorized: generate every absolute deadline d_i + k p_i with arange
    # (same floats as the scalar accumulation for the integral periods used
    # throughout; a sub-EPS ulp drift cannot flip the EPS-guarded compares),
    # then evaluate the whole (points x tasks) demand matrix at once.
    p_arr = np.asarray(periods, dtype=float)
    c_arr = np.asarray(costs, dtype=float)
    d_arr = np.asarray(deadlines, dtype=float)
    counts = np.floor((horizon + EPS - d_arr) / p_arr).astype(int) + 1
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    if total > max_points:
        raise ScheduleError(
            f"demand test horizon needs {total} points (> {max_points})"
        )
    if total == 0:
        return True
    points_arr = np.unique(
        np.concatenate(
            [d + p * np.arange(k) for d, p, k in zip(d_arr, p_arr, counts)]
        )
    )
    # dbf(t) = sum over released tasks of (floor((t - d)/p + EPS) + 1) c.
    t_col = points_arr[:, None]
    released = t_col + EPS >= d_arr[None, :]
    jobs = np.floor((t_col - d_arr[None, :]) / p_arr[None, :] + EPS) + 1.0
    demand = np.where(released, jobs * c_arr[None, :], 0.0).sum(axis=1)
    return bool(np.all(demand <= points_arr + EPS))


def _lcm_or_large(periods: Sequence[float]) -> float:
    result = 1
    for p in periods:
        r = round(p)
        if abs(p - r) > EPS:
            return 50.0 * max(periods)
        result = math.lcm(result, max(1, r))
    return float(result)
