"""Discrete-event preemptive uniprocessor scheduler simulator.

Independent validation substrate for the analytic schedulability tests: jobs
of periodic tasks are released every period, run under preemptive EDF or
fixed-priority rate-monotonic scheduling, and deadline misses are recorded.
Simulating one hyperperiod starting from the synchronous release (the
critical instant) is exact for both policies with deadline = period.

Two engines share the semantics:

* ``engine="event"`` (default) — event-compressed: idle spans jump straight
  to the next release, simultaneous releases are batched, and the running
  job executes in a single span up to its completion or the first
  *preempting* release (computed analytically from the period structure)
  instead of being re-queued at every release.  ``stop_on_first_miss=True``
  additionally abandons the horizon at the first recorded deadline miss.
* ``engine="reference"`` — the original release-by-release simulator, kept
  as a differential oracle (see ``tests/test_simulator_properties.py``).

Fault injection (``faults=``, a :class:`repro.faults.model.FaultModel`)
perturbs per-job demands — CFU-unavailable fallback to the base-ISA cost,
WCET overruns, reconfiguration jitter — identically in both engines.  The
``containment`` policy decides what the scheduler does with a job whose
demand exceeds its analyzed budget:

* ``"run-to-completion"`` (default) — the job runs its full demand; the
  overrun propagates as interference and shows up as deadline misses.
* ``"abort-job"`` — the job is killed once it has consumed its budget; it
  never completes (recorded in ``SimulationResult.aborted``, plus a miss
  if even the truncated job finishes past its deadline).
* ``"fallback-to-base"`` — demand is capped at the task's base-ISA cost:
  the runtime abandons the custom-instruction path rather than running
  arbitrarily long.

Injecting an **empty** fault model takes the exact same code path as no
injection at all, so the results are bit-identical (property-tested in
``tests/test_faults.py``).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import ScheduleError
from repro.rtsched.task import TaskSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> here)
    from repro.faults.model import FaultModel

__all__ = ["FaultStats", "SimulationResult", "simulate", "simulate_taskset"]

EPS = 1e-9
_INF = float("inf")

#: Containment policies for jobs whose injected demand exceeds the budget
#: (kept in sync with :data:`repro.faults.model.CONTAINMENT_POLICIES`).
_CONTAINMENTS = ("run-to-completion", "abort-job", "fallback-to-base")


@dataclass
class FaultStats:
    """Per-run accounting of injected faults and containment actions.

    Attributes:
        jobs: jobs resolved through the fault model.
        faulted: jobs with at least one fault effect applied.
        overruns: jobs that drew a WCET overrun.
        cfu_fallbacks: jobs that ran at base-ISA cost (CFU unavailable).
        jittered: jobs delayed by reconfiguration jitter.
        contained: jobs capped or aborted by the containment policy.
        excess_demand: total injected demand beyond the analyzed budgets
            (after containment).
    """

    jobs: int = 0
    faulted: int = 0
    overruns: int = 0
    cfu_fallbacks: int = 0
    jittered: int = 0
    contained: int = 0
    excess_demand: float = 0.0


@dataclass
class SimulationResult:
    """Outcome of a scheduling simulation.

    Attributes:
        schedulable: True if no job missed its deadline.
        missed: (task_index, release_time) of each deadline miss.
        busy_time: total processor busy time in the horizon.
        horizon: simulated time span.
        max_response: worst observed response time per task (completed
            jobs only; 0.0 for tasks whose jobs never completed).
        aborted: (task_index, release_time) of each job killed by the
            ``abort-job`` containment policy (empty without injection).
        fault_stats: injection/containment accounting, or None when the
            run injected nothing.
    """

    schedulable: bool
    missed: list[tuple[int, float]] = field(default_factory=list)
    busy_time: float = 0.0
    horizon: float = 0.0
    max_response: list[float] = field(default_factory=list)
    aborted: list[tuple[int, float]] = field(default_factory=list)
    fault_stats: FaultStats | None = None

    @property
    def observed_utilization(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0


@dataclass(order=True)
class _Job:
    key: tuple
    task: int = field(compare=False)
    release: float = field(compare=False)
    deadline: float = field(compare=False)
    remaining: float = field(compare=False)


def _default_horizon(periods: Sequence[float]) -> float:
    if all(abs(p - round(p)) < EPS for p in periods):
        h = 1
        for p in periods:
            h = math.lcm(h, max(1, round(p)))
        return float(h)
    return 20.0 * max(periods)


def simulate(
    periods: Sequence[float],
    costs: Sequence[float],
    policy: str = "edf",
    horizon: float | None = None,
    engine: str = "event",
    stop_on_first_miss: bool = False,
    faults: "FaultModel | None" = None,
    containment: str = "run-to-completion",
    base_costs: Sequence[float] | None = None,
) -> SimulationResult:
    """Simulate periodic tasks under EDF or RM.

    Args:
        periods: task periods (deadline = period); all released at time 0.
        costs: execution requirements aligned with *periods*.
        policy: ``"edf"`` (dynamic deadline priority) or ``"rm"`` (static
            shortest-period priority).
        horizon: simulated span; defaults to the hyperperiod for integral
            periods, otherwise ``20 x max period``.
        engine: ``"event"`` (compressed; default) or ``"reference"`` (the
            original release-by-release oracle).
        stop_on_first_miss: abandon the horizon at the first recorded miss
            (the result then carries that single miss and ``horizon`` is
            the simulated span up to it).
        faults: optional :class:`repro.faults.model.FaultModel` perturbing
            per-job demands; an empty model is bit-identical to None.
        containment: policy for jobs whose demand exceeds the budget —
            ``"run-to-completion"``, ``"abort-job"`` or
            ``"fallback-to-base"`` (see the module docstring).
        base_costs: base-ISA (software) execution times aligned with
            *periods*, used by CFU-unavailable faults and the
            fallback-to-base cap; defaults to *costs* (no distinct
            software path, so CFU faults are no-ops).

    Returns:
        A :class:`SimulationResult`.
    """
    n = len(periods)
    if n == 0 or len(costs) != n:
        raise ScheduleError("periods and costs must be non-empty and aligned")
    if policy not in ("edf", "rm"):
        raise ScheduleError(f"unknown policy {policy!r}; use 'edf' or 'rm'")
    if engine not in ("event", "reference"):
        raise ScheduleError(f"unknown engine {engine!r}; use 'event' or 'reference'")
    if containment not in _CONTAINMENTS:
        raise ScheduleError(
            f"unknown containment {containment!r}; use one of {_CONTAINMENTS}"
        )
    if faults is not None and faults.empty:
        faults = None  # inert by construction; take the untouched path
    if faults is not None:
        if any(t >= n for t in faults.cfu_failed):
            raise ScheduleError("fault model names a task index out of range")
        if base_costs is None:
            base_costs = costs
        elif len(base_costs) != n:
            raise ScheduleError("base_costs must align with periods")
    if horizon is None:
        horizon = _default_horizon(periods)
    with obs.span("validate.simulate", policy=policy, engine=engine, tasks=n):
        if engine == "reference":
            return _simulate_reference(
                periods, costs, policy, horizon, stop_on_first_miss,
                faults, containment, base_costs,
            )
        return _simulate_event(
            periods, costs, policy, horizon, stop_on_first_miss,
            faults, containment, base_costs,
        )


def _flush_sim_counters(
    events: int,
    preemptions: int,
    stats: FaultStats | None,
    missed: list[tuple[int, float]],
) -> None:
    """Fold one run's locally-accumulated counters into the obs registry.

    The engines keep plain ints in their hot loops and flush once per run,
    so the per-event cost of instrumentation is zero.
    """
    obs.inc("sim.runs")
    obs.inc("sim.events", events)
    obs.inc("sim.preemptions", preemptions)
    obs.inc("sim.misses", len(missed))
    if stats is not None:
        obs.inc("faults.jobs", stats.jobs)
        obs.inc("faults.faulted", stats.faulted)
        obs.inc("faults.overruns", stats.overruns)
        obs.inc("faults.cfu_fallbacks", stats.cfu_fallbacks)
        obs.inc("faults.jittered", stats.jittered)
        obs.inc("faults.contained", stats.contained)


def _inject_job(
    faults: "FaultModel",
    containment: str,
    task: int,
    job: int,
    nominal: float,
    base: float,
    release: float,
    abort_keys: set[tuple[int, float]],
    stats: FaultStats,
) -> float:
    """Resolve one job through the fault model + containment policy.

    Returns the demand the simulator should charge; under ``abort-job`` a
    demand above budget is truncated to the budget and the job is marked
    in *abort_keys* so its completion is recorded as an abort.
    """
    jf = faults.job_fault(task, job, nominal, base)
    stats.jobs += 1
    if jf.cfu_failed:
        stats.cfu_fallbacks += 1
    if jf.overrun:
        stats.overruns += 1
    if jf.jitter > 0.0:
        stats.jittered += 1
    if jf.faulted:
        stats.faulted += 1
    demand = jf.demand
    if containment == "fallback-to-base":
        cap = base if base > jf.budget else jf.budget
        if demand > cap:
            demand = cap
            stats.contained += 1
    elif containment == "abort-job" and demand > jf.budget + EPS:
        demand = jf.budget
        abort_keys.add((task, release))
        stats.contained += 1
    stats.excess_demand += demand - jf.budget
    return demand


def _simulate_event(
    periods: Sequence[float],
    costs: Sequence[float],
    policy: str,
    horizon: float,
    stop_on_first_miss: bool,
    faults: "FaultModel | None" = None,
    containment: str = "run-to-completion",
    base_costs: Sequence[float] | None = None,
) -> SimulationResult:
    """Event-compressed engine: the running job advances in one span to its
    completion or the first preempting release; idle gaps jump to the next
    release; simultaneous releases enter the queue in one batch."""
    n = len(periods)
    edf = policy == "edf"
    rm_rank = [0] * n
    by_rank: list[int] = sorted(range(n), key=lambda i: periods[i])
    if not edf:
        for r, task in enumerate(by_rank):
            rm_rank[task] = r

    push = heapq.heappush
    pop = heapq.heappop
    # Heap entries are plain tuples (key..., release, remaining); the key
    # prefix reproduces the reference priority order exactly.
    ready: list[tuple] = []
    # Pending-release min-heap (release, task): O(1) next-release queries
    # so completion events that coincide with no release skip the task scan.
    next_release = [0.0] * n
    release_cap = horizon - EPS
    rel_heap: list[tuple[float, int]] = (
        [(0.0, i) for i in range(n)] if release_cap > 0 else []
    )
    time = 0.0
    busy = 0.0
    events = 0
    preemptions = 0
    missed: list[tuple[int, float]] = []
    max_response = [0.0] * n
    # Fault-injection state (inert when faults is None: job demands are the
    # untouched cost floats, abort_keys stays empty, stats stays None).
    stats = FaultStats() if faults is not None else None
    aborted: list[tuple[int, float]] = []
    abort_keys: set[tuple[int, float]] = set()
    release_idx = [0] * n

    def push_due(now: float) -> None:
        bound = now + EPS
        while rel_heap and rel_heap[0][0] <= bound:
            r, i = pop(rel_heap)
            p = periods[i]
            if faults is not None:
                k = release_idx[i]
                release_idx[i] = k + 1
                demand = _inject_job(
                    faults, containment, i, k, costs[i], base_costs[i],
                    r, abort_keys, stats,
                )
            else:
                demand = costs[i]
            if edf:
                push(ready, (r + p, i, r, demand))
            else:
                push(ready, (rm_rank[i], r + p, i, r, demand))
            r += p
            next_release[i] = r
            if r < release_cap:
                push(rel_heap, (r, i))

    push_due(0.0)
    while time < horizon - EPS:
        if not ready:
            # Idle: skip straight to the next release (or the horizon).
            if not rel_heap:
                time = horizon
                break
            time = min(rel_heap[0][0], horizon)
            push_due(time)
            continue
        job = pop(ready)
        events += 1
        if edf:
            deadline, task, release, remaining = job
        else:
            _rank, deadline, task, release, remaining = job
        finish = time + remaining
        # Earliest release that preempts this job.  Under RM only a
        # higher-rank task preempts; under EDF a release at r preempts iff
        # its deadline tuple (r + P_i, i) precedes the running job's.
        t_pre = _INF
        if rel_heap and rel_heap[0][0] < finish:
            if edf:
                for i in range(n):
                    r = next_release[i]
                    if r >= finish or r >= release_cap or r >= t_pre:
                        continue
                    d_new = r + periods[i]
                    if d_new < deadline or (d_new == deadline and i < task):
                        t_pre = r
            else:
                # Only strictly higher-rank tasks preempt; scan rank order.
                for rank in range(_rank):
                    r = next_release[by_rank[rank]]
                    if r < t_pre and r < release_cap:
                        t_pre = r
        if t_pre < finish:
            # Preempted: bank the span, requeue the remainder, take the batch.
            preemptions += 1
            run = t_pre - time
            busy += run
            time = t_pre
            if edf:
                push(ready, (deadline, task, release, remaining - run))
            else:
                push(ready, (_rank, deadline, task, release, remaining - run))
            push_due(time)
            continue
        if finish > horizon:
            # The horizon cuts the span; the job stays pending for the
            # end-of-horizon miss accounting below.
            run = horizon - time
            busy += run
            time = horizon
            if edf:
                push(ready, (deadline, task, release, remaining - run))
            else:
                push(ready, (_rank, deadline, task, release, remaining - run))
            break
        busy += remaining
        time = finish
        if abort_keys and (task, release) in abort_keys:
            # The containment policy killed this job at budget exhaustion:
            # it consumed its budget but never completed (no response).
            abort_keys.discard((task, release))
            aborted.append((task, release))
        else:
            response = time - release
            if response > max_response[task]:
                max_response[task] = response
        if time > deadline + EPS:
            missed.append((task, release))
            if stop_on_first_miss:
                missed.sort()
                aborted.sort()
                _flush_sim_counters(events, preemptions, stats, missed)
                return SimulationResult(
                    schedulable=False,
                    missed=missed,
                    busy_time=busy,
                    horizon=time,
                    max_response=max_response,
                    aborted=aborted,
                    fault_stats=stats,
                )
        if rel_heap and rel_heap[0][0] <= time + EPS:
            push_due(time)

    # Jobs released during the final running span were never queued; flush
    # them so the end-of-horizon accounting sees every released job.
    push_due(horizon)
    # Unfinished jobs whose deadline lies within the horizon are misses.
    for job in ready:
        remaining = job[-1]
        deadline = job[0] if edf else job[1]
        task = job[1] if edf else job[2]
        release = job[-2]
        if remaining > EPS and deadline <= horizon + EPS:
            missed.append((task, release))
    missed.sort()
    aborted.sort()
    _flush_sim_counters(events, preemptions, stats, missed)
    return SimulationResult(
        schedulable=not missed,
        missed=missed,
        busy_time=busy,
        horizon=horizon,
        max_response=max_response,
        aborted=aborted,
        fault_stats=stats,
    )


def _simulate_reference(
    periods: Sequence[float],
    costs: Sequence[float],
    policy: str,
    horizon: float,
    stop_on_first_miss: bool = False,
    faults: "FaultModel | None" = None,
    containment: str = "run-to-completion",
    base_costs: Sequence[float] | None = None,
) -> SimulationResult:
    """The original release-by-release simulator (differential oracle)."""
    n = len(periods)

    # Static RM priorities: shorter period = higher priority (lower number).
    rm_priority = sorted(range(n), key=lambda i: periods[i])
    rm_rank = {task: r for r, task in enumerate(rm_priority)}

    def job_key(task: int, deadline: float) -> tuple:
        if policy == "edf":
            return (deadline, task)
        return (rm_rank[task], deadline, task)

    ready: list[_Job] = []
    next_release = [0.0] * n
    time = 0.0
    busy = 0.0
    events = 0
    preemptions = 0
    missed: list[tuple[int, float]] = []
    max_response = [0.0] * n
    stats = FaultStats() if faults is not None else None
    aborted: list[tuple[int, float]] = []
    abort_keys: set[tuple[int, float]] = set()
    release_idx = [0] * n

    def release_due(now: float) -> None:
        for i in range(n):
            while next_release[i] <= now + EPS and next_release[i] < horizon - EPS:
                r = next_release[i]
                if faults is not None:
                    k = release_idx[i]
                    release_idx[i] = k + 1
                    demand = _inject_job(
                        faults, containment, i, k, costs[i], base_costs[i],
                        r, abort_keys, stats,
                    )
                else:
                    demand = costs[i]
                heapq.heappush(
                    ready,
                    _Job(
                        key=job_key(i, r + periods[i]),
                        task=i,
                        release=r,
                        deadline=r + periods[i],
                        remaining=demand,
                    ),
                )
                next_release[i] = r + periods[i]

    release_due(0.0)
    while time < horizon - EPS:
        upcoming = min(
            (next_release[i] for i in range(n) if next_release[i] < horizon - EPS),
            default=horizon,
        )
        if not ready:
            # Idle until the next release.
            time = min(upcoming, horizon)
            release_due(time)
            continue
        job = heapq.heappop(ready)
        # Run the job until it finishes or the next release preempts it.
        run = min(job.remaining, max(0.0, upcoming - time))
        if run <= EPS and job.remaining > EPS:
            # A release occurs right now; take it into the queue first.
            heapq.heappush(ready, job)
            release_due(upcoming)
            time = upcoming
            continue
        time += run
        busy += run
        job.remaining -= run
        events += 1
        if job.remaining <= EPS:
            if abort_keys and (job.task, job.release) in abort_keys:
                abort_keys.discard((job.task, job.release))
                aborted.append((job.task, job.release))
            else:
                max_response[job.task] = max(
                    max_response[job.task], time - job.release
                )
            if time > job.deadline + EPS:
                missed.append((job.task, job.release))
                if stop_on_first_miss:
                    missed.sort()
                    aborted.sort()
                    _flush_sim_counters(events, preemptions, stats, missed)
                    return SimulationResult(
                        schedulable=False,
                        missed=missed,
                        busy_time=busy,
                        horizon=time,
                        max_response=max_response,
                        aborted=aborted,
                        fault_stats=stats,
                    )
        else:
            preemptions += 1
            heapq.heappush(ready, job)
        release_due(time)

    # Unfinished jobs whose deadline lies within the horizon are misses.
    for job in ready:
        if job.remaining > EPS and job.deadline <= horizon + EPS:
            missed.append((job.task, job.release))
    missed.sort()
    aborted.sort()
    _flush_sim_counters(events, preemptions, stats, missed)
    return SimulationResult(
        schedulable=not missed,
        missed=missed,
        busy_time=busy,
        horizon=horizon,
        max_response=max_response,
        aborted=aborted,
        fault_stats=stats,
    )


def simulate_taskset(
    task_set: TaskSet,
    assignment: Sequence[int] | None = None,
    policy: str = "edf",
    horizon: float | None = None,
    engine: str = "event",
    stop_on_first_miss: bool = False,
    faults: "FaultModel | None" = None,
    containment: str = "run-to-completion",
) -> SimulationResult:
    """Simulate a :class:`TaskSet` under a configuration assignment.

    When *faults* is given, CFU-unavailable faults fall each affected
    task's jobs back to its configuration-0 (software) cost.
    """
    tasks = task_set.tasks
    if assignment is None:
        costs = [t.wcet for t in tasks]
    else:
        costs = [t.configurations[j].cycles for t, j in zip(tasks, assignment)]
    return simulate(
        [t.period for t in tasks],
        costs,
        policy=policy,
        horizon=horizon,
        engine=engine,
        stop_on_first_miss=stop_on_first_miss,
        faults=faults,
        containment=containment,
        base_costs=[t.configurations[0].cycles for t in tasks],
    )
