"""Discrete-event preemptive uniprocessor scheduler simulator.

Independent validation substrate for the analytic schedulability tests: jobs
of periodic tasks are released every period, run under preemptive EDF or
fixed-priority rate-monotonic scheduling, and deadline misses are recorded.
Simulating one hyperperiod starting from the synchronous release (the
critical instant) is exact for both policies with deadline = period.

Two engines share the semantics:

* ``engine="event"`` (default) — event-compressed: idle spans jump straight
  to the next release, simultaneous releases are batched, and the running
  job executes in a single span up to its completion or the first
  *preempting* release (computed analytically from the period structure)
  instead of being re-queued at every release.  ``stop_on_first_miss=True``
  additionally abandons the horizon at the first recorded deadline miss.
* ``engine="reference"`` — the original release-by-release simulator, kept
  as a differential oracle (see ``tests/test_simulator_properties.py``).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.rtsched.task import TaskSet

__all__ = ["SimulationResult", "simulate", "simulate_taskset"]

EPS = 1e-9
_INF = float("inf")


@dataclass
class SimulationResult:
    """Outcome of a scheduling simulation.

    Attributes:
        schedulable: True if no job missed its deadline.
        missed: (task_index, release_time) of each deadline miss.
        busy_time: total processor busy time in the horizon.
        horizon: simulated time span.
        max_response: worst observed response time per task (completed
            jobs only; 0.0 for tasks whose jobs never completed).
    """

    schedulable: bool
    missed: list[tuple[int, float]] = field(default_factory=list)
    busy_time: float = 0.0
    horizon: float = 0.0
    max_response: list[float] = field(default_factory=list)

    @property
    def observed_utilization(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0


@dataclass(order=True)
class _Job:
    key: tuple
    task: int = field(compare=False)
    release: float = field(compare=False)
    deadline: float = field(compare=False)
    remaining: float = field(compare=False)


def _default_horizon(periods: Sequence[float]) -> float:
    if all(abs(p - round(p)) < EPS for p in periods):
        h = 1
        for p in periods:
            h = math.lcm(h, max(1, round(p)))
        return float(h)
    return 20.0 * max(periods)


def simulate(
    periods: Sequence[float],
    costs: Sequence[float],
    policy: str = "edf",
    horizon: float | None = None,
    engine: str = "event",
    stop_on_first_miss: bool = False,
) -> SimulationResult:
    """Simulate periodic tasks under EDF or RM.

    Args:
        periods: task periods (deadline = period); all released at time 0.
        costs: execution requirements aligned with *periods*.
        policy: ``"edf"`` (dynamic deadline priority) or ``"rm"`` (static
            shortest-period priority).
        horizon: simulated span; defaults to the hyperperiod for integral
            periods, otherwise ``20 x max period``.
        engine: ``"event"`` (compressed; default) or ``"reference"`` (the
            original release-by-release oracle).
        stop_on_first_miss: abandon the horizon at the first recorded miss
            (the result then carries that single miss and ``horizon`` is
            the simulated span up to it).

    Returns:
        A :class:`SimulationResult`.
    """
    n = len(periods)
    if n == 0 or len(costs) != n:
        raise ScheduleError("periods and costs must be non-empty and aligned")
    if policy not in ("edf", "rm"):
        raise ScheduleError(f"unknown policy {policy!r}; use 'edf' or 'rm'")
    if engine not in ("event", "reference"):
        raise ScheduleError(f"unknown engine {engine!r}; use 'event' or 'reference'")
    if horizon is None:
        horizon = _default_horizon(periods)
    if engine == "reference":
        return _simulate_reference(periods, costs, policy, horizon, stop_on_first_miss)
    return _simulate_event(periods, costs, policy, horizon, stop_on_first_miss)


def _simulate_event(
    periods: Sequence[float],
    costs: Sequence[float],
    policy: str,
    horizon: float,
    stop_on_first_miss: bool,
) -> SimulationResult:
    """Event-compressed engine: the running job advances in one span to its
    completion or the first preempting release; idle gaps jump to the next
    release; simultaneous releases enter the queue in one batch."""
    n = len(periods)
    edf = policy == "edf"
    rm_rank = [0] * n
    by_rank: list[int] = sorted(range(n), key=lambda i: periods[i])
    if not edf:
        for r, task in enumerate(by_rank):
            rm_rank[task] = r

    push = heapq.heappush
    pop = heapq.heappop
    # Heap entries are plain tuples (key..., release, remaining); the key
    # prefix reproduces the reference priority order exactly.
    ready: list[tuple] = []
    # Pending-release min-heap (release, task): O(1) next-release queries
    # so completion events that coincide with no release skip the task scan.
    next_release = [0.0] * n
    release_cap = horizon - EPS
    rel_heap: list[tuple[float, int]] = (
        [(0.0, i) for i in range(n)] if release_cap > 0 else []
    )
    time = 0.0
    busy = 0.0
    missed: list[tuple[int, float]] = []
    max_response = [0.0] * n

    def push_due(now: float) -> None:
        bound = now + EPS
        while rel_heap and rel_heap[0][0] <= bound:
            r, i = pop(rel_heap)
            p = periods[i]
            if edf:
                push(ready, (r + p, i, r, costs[i]))
            else:
                push(ready, (rm_rank[i], r + p, i, r, costs[i]))
            r += p
            next_release[i] = r
            if r < release_cap:
                push(rel_heap, (r, i))

    push_due(0.0)
    while time < horizon - EPS:
        if not ready:
            # Idle: skip straight to the next release (or the horizon).
            if not rel_heap:
                time = horizon
                break
            time = min(rel_heap[0][0], horizon)
            push_due(time)
            continue
        job = pop(ready)
        if edf:
            deadline, task, release, remaining = job
        else:
            _rank, deadline, task, release, remaining = job
        finish = time + remaining
        # Earliest release that preempts this job.  Under RM only a
        # higher-rank task preempts; under EDF a release at r preempts iff
        # its deadline tuple (r + P_i, i) precedes the running job's.
        t_pre = _INF
        if rel_heap and rel_heap[0][0] < finish:
            if edf:
                for i in range(n):
                    r = next_release[i]
                    if r >= finish or r >= release_cap or r >= t_pre:
                        continue
                    d_new = r + periods[i]
                    if d_new < deadline or (d_new == deadline and i < task):
                        t_pre = r
            else:
                # Only strictly higher-rank tasks preempt; scan rank order.
                for rank in range(_rank):
                    r = next_release[by_rank[rank]]
                    if r < t_pre and r < release_cap:
                        t_pre = r
        if t_pre < finish:
            # Preempted: bank the span, requeue the remainder, take the batch.
            run = t_pre - time
            busy += run
            time = t_pre
            if edf:
                push(ready, (deadline, task, release, remaining - run))
            else:
                push(ready, (_rank, deadline, task, release, remaining - run))
            push_due(time)
            continue
        if finish > horizon:
            # The horizon cuts the span; the job stays pending for the
            # end-of-horizon miss accounting below.
            run = horizon - time
            busy += run
            time = horizon
            if edf:
                push(ready, (deadline, task, release, remaining - run))
            else:
                push(ready, (_rank, deadline, task, release, remaining - run))
            break
        busy += remaining
        time = finish
        response = time - release
        if response > max_response[task]:
            max_response[task] = response
        if time > deadline + EPS:
            missed.append((task, release))
            if stop_on_first_miss:
                missed.sort()
                return SimulationResult(
                    schedulable=False,
                    missed=missed,
                    busy_time=busy,
                    horizon=time,
                    max_response=max_response,
                )
        if rel_heap and rel_heap[0][0] <= time + EPS:
            push_due(time)

    # Jobs released during the final running span were never queued; flush
    # them so the end-of-horizon accounting sees every released job.
    push_due(horizon)
    # Unfinished jobs whose deadline lies within the horizon are misses.
    for job in ready:
        remaining = job[-1]
        deadline = job[0] if edf else job[1]
        task = job[1] if edf else job[2]
        release = job[-2]
        if remaining > EPS and deadline <= horizon + EPS:
            missed.append((task, release))
    missed.sort()
    return SimulationResult(
        schedulable=not missed,
        missed=missed,
        busy_time=busy,
        horizon=horizon,
        max_response=max_response,
    )


def _simulate_reference(
    periods: Sequence[float],
    costs: Sequence[float],
    policy: str,
    horizon: float,
    stop_on_first_miss: bool = False,
) -> SimulationResult:
    """The original release-by-release simulator (differential oracle)."""
    n = len(periods)

    # Static RM priorities: shorter period = higher priority (lower number).
    rm_priority = sorted(range(n), key=lambda i: periods[i])
    rm_rank = {task: r for r, task in enumerate(rm_priority)}

    def job_key(task: int, deadline: float) -> tuple:
        if policy == "edf":
            return (deadline, task)
        return (rm_rank[task], deadline, task)

    ready: list[_Job] = []
    next_release = [0.0] * n
    time = 0.0
    busy = 0.0
    missed: list[tuple[int, float]] = []
    max_response = [0.0] * n

    def release_due(now: float) -> None:
        for i in range(n):
            while next_release[i] <= now + EPS and next_release[i] < horizon - EPS:
                r = next_release[i]
                heapq.heappush(
                    ready,
                    _Job(
                        key=job_key(i, r + periods[i]),
                        task=i,
                        release=r,
                        deadline=r + periods[i],
                        remaining=costs[i],
                    ),
                )
                next_release[i] = r + periods[i]

    release_due(0.0)
    while time < horizon - EPS:
        upcoming = min(
            (next_release[i] for i in range(n) if next_release[i] < horizon - EPS),
            default=horizon,
        )
        if not ready:
            # Idle until the next release.
            time = min(upcoming, horizon)
            release_due(time)
            continue
        job = heapq.heappop(ready)
        # Run the job until it finishes or the next release preempts it.
        run = min(job.remaining, max(0.0, upcoming - time))
        if run <= EPS and job.remaining > EPS:
            # A release occurs right now; take it into the queue first.
            heapq.heappush(ready, job)
            release_due(upcoming)
            time = upcoming
            continue
        time += run
        busy += run
        job.remaining -= run
        if job.remaining <= EPS:
            max_response[job.task] = max(
                max_response[job.task], time - job.release
            )
            if time > job.deadline + EPS:
                missed.append((job.task, job.release))
                if stop_on_first_miss:
                    missed.sort()
                    return SimulationResult(
                        schedulable=False,
                        missed=missed,
                        busy_time=busy,
                        horizon=time,
                        max_response=max_response,
                    )
        else:
            heapq.heappush(ready, job)
        release_due(time)

    # Unfinished jobs whose deadline lies within the horizon are misses.
    for job in ready:
        if job.remaining > EPS and job.deadline <= horizon + EPS:
            missed.append((job.task, job.release))
    missed.sort()
    return SimulationResult(
        schedulable=not missed,
        missed=missed,
        busy_time=busy,
        horizon=horizon,
        max_response=max_response,
    )


def simulate_taskset(
    task_set: TaskSet,
    assignment: Sequence[int] | None = None,
    policy: str = "edf",
    horizon: float | None = None,
    engine: str = "event",
    stop_on_first_miss: bool = False,
) -> SimulationResult:
    """Simulate a :class:`TaskSet` under a configuration assignment."""
    tasks = task_set.tasks
    if assignment is None:
        costs = [t.wcet for t in tasks]
    else:
        costs = [t.configurations[j].cycles for t, j in zip(tasks, assignment)]
    return simulate(
        [t.period for t in tasks],
        costs,
        policy=policy,
        horizon=horizon,
        engine=engine,
        stop_on_first_miss=stop_on_first_miss,
    )
