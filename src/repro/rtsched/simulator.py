"""Discrete-event preemptive uniprocessor scheduler simulator.

Independent validation substrate for the analytic schedulability tests: jobs
of periodic tasks are released every period, run under preemptive EDF or
fixed-priority rate-monotonic scheduling, and deadline misses are recorded.
Simulating one hyperperiod starting from the synchronous release (the
critical instant) is exact for both policies with deadline = period.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.rtsched.task import TaskSet

__all__ = ["SimulationResult", "simulate", "simulate_taskset"]

EPS = 1e-9


@dataclass
class SimulationResult:
    """Outcome of a scheduling simulation.

    Attributes:
        schedulable: True if no job missed its deadline.
        missed: (task_index, release_time) of each deadline miss.
        busy_time: total processor busy time in the horizon.
        horizon: simulated time span.
        max_response: worst observed response time per task (completed
            jobs only; 0.0 for tasks whose jobs never completed).
    """

    schedulable: bool
    missed: list[tuple[int, float]] = field(default_factory=list)
    busy_time: float = 0.0
    horizon: float = 0.0
    max_response: list[float] = field(default_factory=list)

    @property
    def observed_utilization(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0


@dataclass(order=True)
class _Job:
    key: tuple
    task: int = field(compare=False)
    release: float = field(compare=False)
    deadline: float = field(compare=False)
    remaining: float = field(compare=False)


def simulate(
    periods: Sequence[float],
    costs: Sequence[float],
    policy: str = "edf",
    horizon: float | None = None,
) -> SimulationResult:
    """Simulate periodic tasks under EDF or RM.

    Args:
        periods: task periods (deadline = period); all released at time 0.
        costs: execution requirements aligned with *periods*.
        policy: ``"edf"`` (dynamic deadline priority) or ``"rm"`` (static
            shortest-period priority).
        horizon: simulated span; defaults to the hyperperiod for integral
            periods, otherwise ``20 x max period``.

    Returns:
        A :class:`SimulationResult`.
    """
    n = len(periods)
    if n == 0 or len(costs) != n:
        raise ScheduleError("periods and costs must be non-empty and aligned")
    if policy not in ("edf", "rm"):
        raise ScheduleError(f"unknown policy {policy!r}; use 'edf' or 'rm'")
    if horizon is None:
        if all(abs(p - round(p)) < EPS for p in periods):
            h = 1
            for p in periods:
                h = math.lcm(h, max(1, round(p)))
            horizon = float(h)
        else:
            horizon = 20.0 * max(periods)

    # Static RM priorities: shorter period = higher priority (lower number).
    rm_priority = sorted(range(n), key=lambda i: periods[i])
    rm_rank = {task: r for r, task in enumerate(rm_priority)}

    def job_key(task: int, deadline: float) -> tuple:
        if policy == "edf":
            return (deadline, task)
        return (rm_rank[task], deadline, task)

    ready: list[_Job] = []
    next_release = [0.0] * n
    time = 0.0
    busy = 0.0
    missed: list[tuple[int, float]] = []
    max_response = [0.0] * n

    def release_due(now: float) -> None:
        for i in range(n):
            while next_release[i] <= now + EPS and next_release[i] < horizon - EPS:
                r = next_release[i]
                heapq.heappush(
                    ready,
                    _Job(
                        key=job_key(i, r + periods[i]),
                        task=i,
                        release=r,
                        deadline=r + periods[i],
                        remaining=costs[i],
                    ),
                )
                next_release[i] = r + periods[i]

    release_due(0.0)
    while time < horizon - EPS:
        upcoming = min(
            (next_release[i] for i in range(n) if next_release[i] < horizon - EPS),
            default=horizon,
        )
        if not ready:
            # Idle until the next release.
            time = min(upcoming, horizon)
            release_due(time)
            continue
        job = heapq.heappop(ready)
        # Run the job until it finishes or the next release preempts it.
        run = min(job.remaining, max(0.0, upcoming - time))
        if run <= EPS and job.remaining > EPS:
            # A release occurs right now; take it into the queue first.
            heapq.heappush(ready, job)
            release_due(upcoming)
            time = upcoming
            continue
        time += run
        busy += run
        job.remaining -= run
        if job.remaining <= EPS:
            max_response[job.task] = max(
                max_response[job.task], time - job.release
            )
            if time > job.deadline + EPS:
                missed.append((job.task, job.release))
        else:
            heapq.heappush(ready, job)
        release_due(time)

    # Unfinished jobs whose deadline lies within the horizon are misses.
    for job in ready:
        if job.remaining > EPS and job.deadline <= horizon + EPS:
            missed.append((job.task, job.release))
    missed.sort()
    return SimulationResult(
        schedulable=not missed,
        missed=missed,
        busy_time=busy,
        horizon=horizon,
        max_response=max_response,
    )


def simulate_taskset(
    task_set: TaskSet,
    assignment: Sequence[int] | None = None,
    policy: str = "edf",
    horizon: float | None = None,
) -> SimulationResult:
    """Simulate a :class:`TaskSet` under a configuration assignment."""
    tasks = task_set.tasks
    if assignment is None:
        costs = [t.wcet for t in tasks]
    else:
        costs = [t.configurations[j].cycles for t, j in zip(tasks, assignment)]
    return simulate([t.period for t in tasks], costs, policy=policy, horizon=horizon)
