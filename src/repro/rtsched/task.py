"""Periodic task model for multi-tasking real-time systems.

Thesis Section 3.1.1: a task set of N independent, preemptable, periodic
tasks on a uniprocessor.  Task ``T_i`` has period ``P_i`` (deadline equals
the period) and worst-case execution time ``C_i``.  Each task additionally
carries a list of custom-instruction-enhanced *configurations*
``config_{i,j} = (area_{i,j}, cycle_{i,j})``; configuration 0 is always the
pure-software version with ``area = 0`` and ``cycles = C_i``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.selection.config_curve import TaskConfiguration

__all__ = ["PeriodicTask", "TaskSet", "scale_periods_for_utilization"]


@dataclass(frozen=True)
class PeriodicTask:
    """One periodic hard real-time task.

    Attributes:
        name: task label (benchmark name).
        period: inter-release time; the deadline equals the period.
        wcet: worst-case execution time without custom instructions.
        configurations: the (area, cycles) trade-off curve; element 0 must be
            the software configuration (area 0, cycles == wcet).
    """

    name: str
    period: float
    wcet: float
    configurations: tuple[TaskConfiguration, ...] = ()

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ScheduleError(f"task {self.name!r}: period must be positive")
        if self.wcet <= 0:
            raise ScheduleError(f"task {self.name!r}: wcet must be positive")
        if self.configurations:
            first = self.configurations[0]
            if first.area != 0:
                raise ScheduleError(
                    f"task {self.name!r}: configuration 0 must have zero area"
                )
            if abs(first.cycles - self.wcet) > 1e-6 * max(1.0, self.wcet):
                raise ScheduleError(
                    f"task {self.name!r}: configuration 0 cycles must equal wcet"
                )
        else:
            object.__setattr__(
                self,
                "configurations",
                (TaskConfiguration(area=0.0, cycles=float(self.wcet)),),
            )

    @property
    def utilization(self) -> float:
        """Utilization without custom instructions (``C_i / P_i``)."""
        return self.wcet / self.period

    def config_utilization(self, j: int) -> float:
        """Utilization when running configuration *j*."""
        return self.configurations[j].cycles / self.period

    @property
    def n_configurations(self) -> int:
        return len(self.configurations)

    def with_period(self, period: float) -> "PeriodicTask":
        """A copy of this task with a different period."""
        return PeriodicTask(
            name=self.name,
            period=period,
            wcet=self.wcet,
            configurations=self.configurations,
        )


class TaskSet:
    """An ordered collection of periodic tasks."""

    def __init__(self, tasks: Iterable[PeriodicTask], name: str = "") -> None:
        self.name = name
        self._tasks = list(tasks)
        if not self._tasks:
            raise ScheduleError("a task set needs at least one task")

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    def __getitem__(self, i: int) -> PeriodicTask:
        return self._tasks[i]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(t.name for t in self._tasks)
        return f"TaskSet({self.name!r}: {names})"

    @property
    def tasks(self) -> list[PeriodicTask]:
        return list(self._tasks)

    @property
    def utilization(self) -> float:
        """Total utilization without custom instructions."""
        return sum(t.utilization for t in self._tasks)

    def utilization_for(self, assignment: Sequence[int]) -> float:
        """Total utilization for a per-task configuration assignment."""
        if len(assignment) != len(self._tasks):
            raise ScheduleError("assignment length must match task count")
        return sum(
            t.config_utilization(j) for t, j in zip(self._tasks, assignment)
        )

    def area_for(self, assignment: Sequence[int]) -> float:
        """Total CFU area for a per-task configuration assignment."""
        if len(assignment) != len(self._tasks):
            raise ScheduleError("assignment length must match task count")
        return sum(
            t.configurations[j].area for t, j in zip(self._tasks, assignment)
        )

    @property
    def max_area(self) -> float:
        """Sum of the largest configuration area of each task.

        The thesis's ``Max_Area``: "the summation of the maximum area
        requirements of the constituent tasks" (Section 3.2).
        """
        return sum(max(c.area for c in t.configurations) for t in self._tasks)

    def by_priority_rms(self) -> "TaskSet":
        """Tasks sorted by increasing period (RMS priority order)."""
        return TaskSet(
            sorted(self._tasks, key=lambda t: t.period), name=self.name
        )

    def hyperperiod(self) -> float:
        """Least common multiple of the periods (requires integral periods)."""
        result = 1
        for t in self._tasks:
            p = round(t.period)
            if abs(t.period - p) > 1e-9:
                raise ScheduleError(
                    "hyperperiod requires integral periods; "
                    f"task {t.name!r} has period {t.period}"
                )
            result = math.lcm(result, max(1, p))
        return float(result)


def scale_periods_for_utilization(
    tasks: Sequence[PeriodicTask], target_utilization: float, name: str = ""
) -> TaskSet:
    """Assign periods so the software-only utilization equals a target.

    The thesis sets ``P_i = alpha_i x C_i`` such that ``sum C_i / P_i = U``
    (Section 3.2).  We use a uniform alpha: every task gets
    ``P_i = (n / U) x C_i`` so each contributes ``U / n``.

    Args:
        tasks: tasks whose ``wcet`` values are kept.
        target_utilization: the desired total software utilization ``U``.
        name: name for the resulting task set.

    Returns:
        A :class:`TaskSet` with periods scaled accordingly.
    """
    if target_utilization <= 0:
        raise ScheduleError("target utilization must be positive")
    n = len(tasks)
    if n == 0:
        raise ScheduleError("need at least one task")
    alpha = n / target_utilization
    return TaskSet(
        [t.with_period(alpha * t.wcet) for t in tasks],
        name=name,
    )
