"""Plain-text reporting helpers for customization results.

Produces the aligned tables and ASCII sparklines used by the CLI and the
examples — no plotting dependency required.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "format_table",
    "sparkline",
    "format_curve",
    "format_fault_report",
    "format_health",
    "format_metrics",
    "format_trace_summary",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as a monospace table with right-aligned numeric cells."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(c))
            else:
                widths.append(len(c))

    def align(value: str, i: int, raw: object) -> str:
        if isinstance(raw, (int, float)):
            return value.rjust(widths[i])
        return value.ljust(widths[i])

    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths[: len(headers)]),
    ]
    for raw_row, row in zip(rows, cells):
        lines.append(
            "  ".join(align(c, i, raw_row[i]) for i, c in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a Unicode sparkline."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1) + 0.5)
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def format_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A two-column table plus a sparkline of the y series."""
    table = format_table([x_label, y_label], list(zip(xs, ys)))
    return f"{table}\n{y_label}: {sparkline(list(ys))}"


def format_fault_report(report: dict) -> str:
    """Render a :func:`repro.faults.sweep.sweep_faults` report as text.

    Three sections per policy: the nominal selection, the
    single-CFU-failure degraded modes (with the simulator cross-check),
    and the injection scenarios with their containment accounting.
    """
    lines = [
        f"robustness report — task set {report['task_set']} "
        f"({report['n_tasks']} tasks, area budget {report['area_budget']:.1f}, "
        f"seed {report['seed']})"
    ]
    for entry in report["policies"]:
        lines.append("")
        lines.append(
            f"[{entry['policy']}] nominal: schedulable={entry['schedulable']} "
            f"U {entry['utilization_before']:.4f} -> "
            f"{entry['utilization_after']:.4f}"
        )
        degraded = entry.get("single_cfu_failure")
        if degraded is None:
            lines.append("  nominal selection unschedulable; no degraded modes")
            continue
        lines.append(
            f"  single CFU failure: robust={degraded['robust']} "
            f"(simulator agrees on all modes: {degraded['sim_agrees_all']})"
        )
        lines.append(format_table(
            ["failed task", "schedulable", "utilization", "worst load", "sim agrees"],
            [
                (
                    m["task"],
                    str(m["schedulable"]),
                    m["utilization"],
                    m["worst_load"],
                    str(m["sim_agrees"]),
                )
                for m in degraded["modes"]
            ],
        ))
        if entry["scenarios"]:
            lines.append("  injection scenarios:")
            lines.append(format_table(
                ["scenario", "containment", "ok", "missed", "aborted",
                 "faulted", "contained", "excess"],
                [
                    (
                        s["name"],
                        s["containment"],
                        str(s["schedulable"]),
                        s["n_missed"],
                        s["n_aborted"],
                        s["faulted_jobs"],
                        s["contained"],
                        s["excess_demand"],
                    )
                    for s in entry["scenarios"]
                ],
            ))
    return "\n".join(lines)


def _cache_ratio_rows(counters: dict) -> list[tuple[str, int, int, int, str]]:
    """Per-kind (hits, misses, disk hits, ratio) rows derived from the
    ``cache.<kind>.hits`` / ``.misses`` / ``.disk_hits`` counters."""
    kinds = sorted(
        {
            k.split(".")[1]
            for k in counters
            if k.startswith("cache.")
            and k.count(".") == 2
            and k.rsplit(".", 1)[1] in ("hits", "misses", "disk_hits")
        }
    )
    rows = []
    for kind in kinds:
        hits = counters.get(f"cache.{kind}.hits", 0)
        misses = counters.get(f"cache.{kind}.misses", 0)
        disk = counters.get(f"cache.{kind}.disk_hits", 0)
        total = hits + misses
        ratio = f"{hits / total:.1%}" if total else "-"
        rows.append((kind, hits, misses, disk, ratio))
    return rows


def _disk_tier_rows(
    counters: dict, gauges: dict
) -> list[tuple[str, object]]:
    """Occupancy/eviction/contention rows from the ``cache.disk.*``
    metrics published by the persistent cache backends."""
    named = [
        ("bytes", gauges.get("cache.disk.bytes")),
        ("entries", gauges.get("cache.disk.entries")),
        ("sweeps", counters.get("cache.disk.sweeps")),
        ("evictions", counters.get("cache.disk.evictions")),
        ("evicted bytes", counters.get("cache.disk.evicted_bytes")),
        ("lock contention", counters.get("cache.disk.lock_contention")),
    ]
    return [(k, v) for k, v in named if v is not None]


def format_health(health: dict) -> str:
    """Render the service ``health`` op snapshot (``repro submit --health``)."""
    state = (
        "draining" if health.get("draining")
        else "accepting" if health.get("accepting")
        else "stopped"
    )
    lines = [
        f"state: {state}  uptime: {health.get('uptime_s', 0.0):.1f}s",
        f"queue: {health.get('queue_depth', 0)}/{health.get('queue_size', 0)}"
        f"  inflight: {health.get('inflight', 0)}"
        f"  running: {health.get('running', 0)}"
        f"  workers: {health.get('workers', 0)}"
        f"  pool: {health.get('pool', False)}",
    ]
    journal = health.get("journal")
    if journal:
        lines.append(
            f"journal: {journal.get('path', '?')}  "
            f"lag: {journal.get('lag', 0)}  live: {journal.get('live', 0)}  "
            f"appends: {journal.get('appends', 0)}  "
            f"compactions: {journal.get('compactions', 0)}"
        )
    counters = health.get("counters")
    if counters:
        lines.append(format_table(
            ["counter", "value"], sorted(counters.items())
        ))
    return "\n".join(lines)


def format_metrics(snapshot: dict) -> str:
    """Render an :func:`repro.obs.metrics_snapshot` as aligned tables.

    Sections: counters, gauges, histograms (count/total/min/max), cache
    hit ratios derived from the ``cache.<kind>.*`` counters, and the
    persistent disk tier's occupancy/eviction/contention when the run
    touched one (``cache.disk.*``).
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    lines = ["metrics"]
    if counters:
        lines.append(format_table(
            ["counter", "value"], sorted(counters.items())
        ))
    if gauges:
        lines.append("")
        lines.append(format_table(["gauge", "value"], sorted(gauges.items())))
    if histograms:
        lines.append("")
        lines.append(format_table(
            ["histogram", "count", "total", "min", "max"],
            [
                (name, h["count"], h["total"], h["min"], h["max"])
                for name, h in sorted(histograms.items())
            ],
        ))
    cache_rows = _cache_ratio_rows(counters)
    if cache_rows:
        lines.append("")
        lines.append("cache hit ratios:")
        lines.append(format_table(
            ["kind", "hits", "misses", "disk hits", "hit ratio"], cache_rows
        ))
    disk_rows = _disk_tier_rows(counters, gauges)
    if disk_rows:
        lines.append("")
        lines.append("disk tier:")
        lines.append(format_table(["metric", "value"], disk_rows))
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


def format_trace_summary(
    spans: Sequence[dict], metrics: dict | None = None, top: int = 10
) -> str:
    """Render a trace (from :func:`repro.obs.load_trace`) as a text report.

    Three sections: the per-stage wall-time tree (spans aggregated by their
    name path root→leaf, with total seconds and call counts), the *top*
    individual spans by duration, and the metrics block when the trace
    carried one.
    """
    if not spans:
        return "trace is empty"
    by_id = {s["id"]: s for s in spans}

    def path_of(s: dict) -> tuple[str, ...]:
        names: list[str] = []
        cur: dict | None = s
        hops = 0
        while cur is not None and hops < 64:
            names.append(cur["name"])
            parent = cur.get("parent")
            cur = by_id.get(parent) if parent else None
            hops += 1
        return tuple(reversed(names))

    agg: dict[tuple[str, ...], list[float]] = {}
    first_seen: dict[tuple[str, ...], int] = {}
    for idx, s in enumerate(spans):
        p = path_of(s)
        if p not in agg:
            agg[p] = [0.0, 0]
            first_seen[p] = idx
        agg[p][0] += s["dur"]
        agg[p][1] += 1
    # Stable tree order: parents before children, siblings by first record.
    ordered = sorted(agg, key=lambda p: (first_seen[p],))
    lines = ["per-stage wall time:"]
    lines.append(format_table(
        ["stage", "total s", "calls"],
        [
            ("  " * (len(p) - 1) + p[-1], round(agg[p][0], 6), agg[p][1])
            for p in ordered
        ],
    ))
    slowest = sorted(spans, key=lambda s: -s["dur"])[: max(0, top)]
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} spans:")
        lines.append(format_table(
            ["span", "dur s", "attrs"],
            [
                (
                    s["name"],
                    round(s["dur"], 6),
                    " ".join(
                        f"{k}={v}" for k, v in sorted(s.get("attrs", {}).items())
                    ),
                )
                for s in slowest
            ],
        ))
    if metrics:
        lines.append("")
        lines.append(format_metrics(metrics))
    return "\n".join(lines)
