"""Plain-text reporting helpers for customization results.

Produces the aligned tables and ASCII sparklines used by the CLI and the
examples — no plotting dependency required.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "sparkline", "format_curve"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as a monospace table with right-aligned numeric cells."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(c))
            else:
                widths.append(len(c))

    def align(value: str, i: int, raw: object) -> str:
        if isinstance(raw, (int, float)):
            return value.rjust(widths[i])
        return value.ljust(widths[i])

    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths[: len(headers)]),
    ]
    for raw_row, row in zip(rows, cells):
        lines.append(
            "  ".join(align(c, i, raw_row[i]) for i, c in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a Unicode sparkline."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1) + 0.5)
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def format_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A two-column table plus a sparkline of the y series."""
    table = format_table([x_label, y_label], list(zip(xs, ys)))
    return f"{table}\n{y_label}: {sparkline(list(ys))}"
