"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConstraintError(ReproError):
    """An architectural constraint (I/O ports, convexity, area) is violated."""


class GraphError(ReproError):
    """A dataflow or control-flow graph is malformed for the requested use."""


class FrontendError(ReproError):
    """Real-code ingestion failed (unsupported construct, malformed graph).

    Messages name the offending source file and line where one exists, so
    a user can fix their kernel without reading the importer.
    """


class ScheduleError(ReproError):
    """A task set or schedule parameterization is invalid."""


class FaultError(ReproError):
    """A fault-injection model or containment policy is malformed."""


class SolverError(ReproError):
    """An optimization backend failed to produce a solution."""


class WorkloadError(ReproError):
    """A workload/benchmark specification is unknown or inconsistent."""
