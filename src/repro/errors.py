"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConstraintError(ReproError):
    """An architectural constraint (I/O ports, convexity, area) is violated."""


class GraphError(ReproError):
    """A dataflow or control-flow graph is malformed for the requested use."""


class ScheduleError(ReproError):
    """A task set or schedule parameterization is invalid."""


class FaultError(ReproError):
    """A fault-injection model or containment policy is malformed."""


class SolverError(ReproError):
    """An optimization backend failed to produce a solution."""


class WorkloadError(ReproError):
    """A workload/benchmark specification is unknown or inconsistent."""
