"""Pareto-front primitives for two-objective minimization.

A design point is a ``(value, cost)`` pair where both coordinates are to be
minimized (workload/utilization vs. hardware area).  Point *a* dominates *b*
iff ``a.value <= b.value`` and ``a.cost <= b.cost`` with at least one strict.
An ε-approximate Pareto curve ``P_eps`` of a curve ``P`` contains, for every
``p in P``, a point ``q`` with ``q.value <= (1+eps) p.value`` and
``q.cost <= (1+eps) p.cost`` (thesis Section 4.2.1, after Papadimitriou &
Yannakakis [75]).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["ParetoPoint", "dominates", "pareto_filter", "is_eps_cover"]

EPS = 1e-12


@dataclass(frozen=True)
class ParetoPoint:
    """One design point: (objective value, hardware cost, optional payload)."""

    value: float
    cost: float
    choice: tuple = ()


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True if *a* dominates *b* (minimization in both coordinates)."""
    return (
        a.value <= b.value + EPS
        and a.cost <= b.cost + EPS
        and (a.value < b.value - EPS or a.cost < b.cost - EPS)
    )


def pareto_filter(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """The undominated subset of *points*, sorted by increasing cost.

    Duplicate coordinates collapse to a single representative.
    """
    pts = sorted(points, key=lambda p: (p.cost, p.value))
    frontier: list[ParetoPoint] = []
    for p in pts:
        if not frontier:
            frontier.append(p)
            continue
        last = frontier[-1]
        if p.value < last.value - EPS:
            if abs(p.cost - last.cost) <= EPS:
                frontier[-1] = p
            else:
                frontier.append(p)
    return frontier


def is_eps_cover(
    approx: Sequence[ParetoPoint], exact: Sequence[ParetoPoint], eps: float
) -> bool:
    """Check the ε-approximation property of *approx* w.r.t. *exact*.

    For every exact point there must be an approximate point within a
    ``(1 + eps)`` factor in both coordinates.
    """
    for p in exact:
        covered = any(
            q.value <= (1.0 + eps) * p.value + EPS
            and q.cost <= (1.0 + eps) * p.cost + EPS
            for q in approx
        )
        if not covered:
            return False
    return True
