"""Intra-task workload-area Pareto curves (thesis Section 4.2.1).

Per task ``T_i`` the custom-instruction library gives choices
``S_i = {(delta_{i,j}, a_{i,j})}``: selecting instruction *j* lowers the
workload ``E_i`` by ``delta_{i,j}`` at hardware cost ``a_{i,j}`` (integer
adders).  The *exact* workload-area Pareto curve comes from the
pseudo-polynomial DP of recursion (4.1)::

    w_{k,j} = min( w_{k-1,j},  w_{k-1, j - a_k} - delta_k )

over an exact-cost axis up to ``n_i x C`` (``C`` = max single cost).  The
*approximate* curve follows Algorithm 3: partition the cost range
geometrically with ratio ``(1+eps')``, ``eps' = sqrt(1+eps) - 1``, solve the
GAP problem at each coordinate via cost scaling (``r = ceil(n_i / eps')``,
``a'_j = ceil(a_j r / b)``), and keep the undominated answers.  Properties
(a)/(b) of Section 4.2.1.1 guarantee an ε-approximate Pareto curve.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.pareto.front import ParetoPoint, pareto_filter

__all__ = ["CIOption", "exact_workload_curve", "approx_workload_curve", "gap_solve"]


@dataclass(frozen=True)
class CIOption:
    """One custom-instruction choice: workload reduction at a hardware cost."""

    delta: float
    area: int

    def __post_init__(self) -> None:
        if self.area < 0:
            raise ReproError("area must be non-negative")
        if self.delta < 0:
            raise ReproError("delta must be non-negative")


def _best_reduction_by_cost(
    deltas: Sequence[float], areas: Sequence[int], cap: int
) -> np.ndarray:
    """DP: max total workload reduction achievable with cost <= j, j=0..cap."""
    best = np.zeros(cap + 1)
    for delta, area in zip(deltas, areas):
        if area > cap:
            continue
        if area == 0:
            best += delta
            continue
        shifted = best[: cap + 1 - area] + delta
        np.maximum(best[area:], shifted, out=best[area:])
    return best


def exact_workload_curve(
    base_workload: float, options: Sequence[CIOption], engine: str = "vector"
) -> list[ParetoPoint]:
    """The exact workload-area Pareto curve of one task.

    Args:
        base_workload: software workload ``E_i``.
        options: the task's custom-instruction choices.
        engine: ``"vector"`` (default) extracts the curve's staircase with
            numpy before materializing points; ``"reference"`` builds one
            point per cost index (the original path).  Identical output.

    Returns:
        Undominated ``(workload, area)`` points, area increasing, starting
        from the pure-software point ``(E_i, 0)``.
    """
    if engine not in ("vector", "reference"):
        raise ReproError(f"unknown engine {engine!r}; use 'vector' or 'reference'")
    cap = sum(o.area for o in options)
    if cap == 0 or not options:
        # Zero-cost options are always worth taking.
        free = sum(o.delta for o in options if o.area == 0)
        return [ParetoPoint(value=base_workload - free, cost=0.0)]
    best = _best_reduction_by_cost(
        [o.delta for o in options], [o.area for o in options], cap
    )
    if engine == "vector":
        # Strict staircase over the (monotone) reduction array: keep the
        # first cost index of every new maximum.  Strict pruning keeps a
        # superset of what the EPS-tolerant filter keeps, so the final
        # pareto_filter pass yields the reference output exactly.
        values = base_workload - best
        prev_max = np.concatenate(([-np.inf], np.maximum.accumulate(best)[:-1]))
        idx = np.flatnonzero(best > prev_max)  # index 0 always survives
        points = [ParetoPoint(value=float(values[j]), cost=float(j)) for j in idx]
        return pareto_filter(points)
    points = [
        ParetoPoint(value=base_workload - best[j], cost=float(j))
        for j in range(cap + 1)
    ]
    return pareto_filter(points)


def gap_solve(
    base_workload: float,
    options: Sequence[CIOption],
    cost_bound: float,
    workload_bound: float,
    eps: float,
) -> ParetoPoint | None:
    """Solve the GAP problem at one ``(cost, workload)`` corner.

    Either returns a solution with ``cost <= cost_bound`` and
    ``workload <= workload_bound``, or returns None — in which case no
    solution exists with both coordinates better by a factor ``(1+eps)``
    (thesis Section 4.2.1.1: properties (a) and (b) of the transformed
    costs ``a' = ceil(a r / cost_bound)``, ``r = ceil(n/eps)``).

    The reported cost of a returned solution is *cost_bound* (property (a)
    guarantees the true cost does not exceed it).
    """
    n = len(options)
    if n == 0:
        if base_workload <= workload_bound:
            return ParetoPoint(value=base_workload, cost=0.0)
        return None
    r = math.ceil(n / eps)
    scaled = [
        math.ceil(o.area * r / cost_bound) if cost_bound > 0 else (0 if o.area == 0 else r + 1)
        for o in options
    ]
    best = _best_reduction_by_cost([o.delta for o in options], scaled, r)
    achieved = base_workload - float(best[r])
    if achieved <= workload_bound:
        return ParetoPoint(value=achieved, cost=float(cost_bound))
    return None


def approx_workload_curve(
    base_workload: float, options: Sequence[CIOption], eps: float
) -> list[ParetoPoint]:
    """ε-approximate workload-area Pareto curve (Algorithm 3).

    Args:
        base_workload: software workload ``E_i``.
        options: the task's custom-instruction choices.
        eps: approximation parameter (> 0; need not be <= 1).

    Returns:
        A polynomial-size undominated point set ``P_eps`` such that every
        exact Pareto point is within ``(1+eps)`` in both coordinates.
    """
    if eps <= 0:
        raise ReproError("eps must be positive")
    if not options:
        return [ParetoPoint(value=base_workload, cost=0.0)]
    eps_prime = math.sqrt(1.0 + eps) - 1.0
    total_cost = sum(o.area for o in options)
    points: list[ParetoPoint] = [ParetoPoint(value=base_workload, cost=0.0)]
    if total_cost == 0:
        return pareto_filter(points)
    # Geometric partition of the cost axis from 1 to total_cost.
    b = 1.0
    coords: list[float] = []
    while b <= total_cost:
        coords.append(b)
        b *= 1.0 + eps_prime
    for coord in coords:
        sol = gap_solve(
            base_workload,
            options,
            cost_bound=coord,
            workload_bound=float("inf"),
            eps=eps_prime,
        )
        if sol is not None:
            points.append(sol)
    # The all-selected corner is exact and guarantees coverage of the
    # high-cost end of the curve despite cost-scaling round-up.
    points.append(
        ParetoPoint(
            value=base_workload - sum(o.delta for o in options),
            cost=float(total_cost),
        )
    )
    return pareto_filter(points)
