"""Design trade-off evaluation: exact and ε-approximate Pareto curves
(thesis Chapter 4)."""

from repro.pareto.front import ParetoPoint, dominates, is_eps_cover, pareto_filter
from repro.pareto.inter import (
    TaskCurve,
    approx_utilization_curve,
    exact_utilization_curve,
)
from repro.pareto.intra import (
    CIOption,
    approx_workload_curve,
    exact_workload_curve,
    gap_solve,
)

__all__ = [
    "ParetoPoint",
    "dominates",
    "is_eps_cover",
    "pareto_filter",
    "TaskCurve",
    "approx_utilization_curve",
    "exact_utilization_curve",
    "CIOption",
    "approx_workload_curve",
    "exact_workload_curve",
    "gap_solve",
]
