"""Inter-task utilization-area Pareto curves (thesis Section 4.2.2).

Input: per task ``T_i`` its workload-area Pareto curve
``P_i = {(w_{i,k}, c_{i,k})}`` (from the intra-task stage) plus its period.
A *global design configuration* picks exactly one curve point per task; its
utilization is ``sum_i w_{i,k_i} / P_i`` and its cost ``sum_i c_{i,k_i}``.
The exact utilization-area Pareto curve comes from the multi-choice DP of
recursion (4.2); the ε-approximate curve applies the same geometric cost
partition + cost-scaling GAP routine as the intra-task stage.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro import cache, obs
from repro.errors import ReproError
from repro.pareto.front import ParetoPoint, pareto_filter

__all__ = ["TaskCurve", "exact_utilization_curve", "approx_utilization_curve"]

_INF = float("inf")


@dataclass(frozen=True)
class TaskCurve:
    """One task's workload-area Pareto curve.

    Attributes:
        period: the task period ``P_i``.
        workloads: curve point workloads ``w_{i,k}``.
        areas: curve point integer hardware costs ``c_{i,k}``.
    """

    period: float
    workloads: tuple[float, ...]
    areas: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ReproError("period must be positive")
        if len(self.workloads) != len(self.areas) or not self.workloads:
            raise ReproError("workloads/areas must be non-empty and aligned")
        if min(self.areas) < 0:
            raise ReproError("areas must be non-negative")

    @property
    def utilizations(self) -> tuple[float, ...]:
        return tuple(w / self.period for w in self.workloads)


def _multichoice_dp(
    tasks: Sequence[TaskCurve],
    costs_per_task: Sequence[Sequence[int]],
    cap: int,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """DP over cost <= j: min total utilization picking one option per task.

    Returns:
        (best utilization array over 0..cap, per-task chosen-option arrays
        for backtracking).
    """
    best = np.zeros(cap + 1)
    picks: list[np.ndarray] = []
    for curve, costs in zip(tasks, costs_per_task):
        utils = curve.utilizations
        new = np.full(cap + 1, _INF)
        pick = np.zeros(cap + 1, dtype=np.int32)
        for k, (u, c) in enumerate(zip(utils, costs)):
            if c > cap:
                continue
            cand = np.full(cap + 1, _INF)
            cand[c:] = best[: cap + 1 - c] + u
            better = cand < new
            new[better] = cand[better]
            pick[better] = k
        best = new
        picks.append(pick)
    return best, picks


def _backtrack(
    tasks: Sequence[TaskCurve],
    costs_per_task: Sequence[Sequence[int]],
    picks: list[np.ndarray],
    j: int,
) -> tuple[int, ...]:
    choice: list[int] = [0] * len(tasks)
    for i in range(len(tasks) - 1, -1, -1):
        k = int(picks[i][j])
        choice[i] = k
        j -= costs_per_task[i][k]
    return tuple(choice)


def _staircase_keep(costs: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Indices of the strict lower-staircase of ``(cost, value)`` points.

    Sorted by (cost, value); a point survives iff its value is *strictly*
    below every cheaper-or-equal point's value.  Strict (zero-tolerance)
    pruning never discards a point the EPS-tolerant ``pareto_filter`` would
    keep, so running the survivors through ``pareto_filter`` afterwards
    yields the same frontier the unpruned point set would.
    """
    order = np.lexsort((values, costs))
    v = values[order]
    prev_min = np.concatenate(([np.inf], np.minimum.accumulate(v)[:-1]))
    return order[v < prev_min]


def _merge_curve(tasks: Sequence[TaskCurve]) -> list[ParetoPoint]:
    """Frontier-merge engine for the exact utilization-area curve.

    Folds tasks left-to-right, keeping only the undominated partial
    frontier between merges (dominance pruning), so the point set stays at
    the size of the final curve instead of the full cost axis of the DP.
    Utilization accumulates in task order — the same float additions the
    DP performs — so the resulting curve is bit-identical.
    """
    first = tasks[0]
    front_c = np.asarray(first.areas, dtype=np.int64)
    front_u = np.asarray(first.utilizations, dtype=float)
    keep = _staircase_keep(front_c, front_u)
    front_c, front_u = front_c[keep], front_u[keep]
    # Backtracking trace: level 0 holds option indices; each later level
    # holds (parent frontier index, option index) per kept point.
    trace: list[tuple[np.ndarray, np.ndarray] | np.ndarray] = [keep]
    for curve in tasks[1:]:
        opt_c = np.asarray(curve.areas, dtype=np.int64)
        opt_u = np.asarray(curve.utilizations, dtype=float)
        k = len(opt_c)
        flat_c = (front_c[:, None] + opt_c[None, :]).ravel()
        flat_u = (front_u[:, None] + opt_u[None, :]).ravel()
        keep = _staircase_keep(flat_c, flat_u)
        trace.append((keep // k, keep % k))
        front_c, front_u = flat_c[keep], flat_u[keep]

    n = len(tasks)
    points = []
    for idx in range(len(front_c)):
        choice = [0] * n
        at = idx
        for level in range(n - 1, 0, -1):
            parents, opts = trace[level]
            choice[level] = int(opts[at])
            at = int(parents[at])
        choice[0] = int(trace[0][at])
        points.append(
            ParetoPoint(
                value=float(front_u[idx]),
                cost=float(front_c[idx]),
                choice=tuple(choice),
            )
        )
    return pareto_filter(points)


def _points_to_jsonable(points: Sequence[ParetoPoint]) -> list[dict]:
    return [
        {"value": p.value, "cost": p.cost, "choice": list(p.choice)}
        for p in points
    ]


def _points_from_jsonable(raw: Sequence[dict]) -> list[ParetoPoint]:
    return [
        ParetoPoint(value=d["value"], cost=d["cost"], choice=tuple(d["choice"]))
        for d in raw
    ]


def exact_utilization_curve(
    tasks: Sequence[TaskCurve], engine: str = "merge", use_cache: bool = True
) -> list[ParetoPoint]:
    """The exact utilization-area Pareto curve of a task set.

    Args:
        tasks: per-task workload-area curves.
        engine: ``"merge"`` (default) folds per-task frontiers with
            dominance pruning between merges; ``"reference"`` runs the
            recursion-(4.2) DP over the full cost axis (the differential
            oracle).  Both produce bit-identical ``(value, cost)`` curves.
        use_cache: memoize the curve behind a content key (curve digests +
            engine) in :mod:`repro.cache`.

    Returns:
        Undominated ``(utilization, area)`` points; each point's ``choice``
        holds the per-task curve-point indices realizing it.
    """
    if not tasks:
        raise ReproError("need at least one task curve")
    if engine not in ("merge", "reference"):
        raise ReproError(f"unknown engine {engine!r}; use 'merge' or 'reference'")
    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.curves_digest(tasks), kind="inter_exact", engine=engine
        )
        cached = cache.fetch_pareto(key)
        if cached is not None:
            return _points_from_jsonable(cached)
    with obs.span("pareto.exact", tasks=len(tasks), engine=engine) as sp:
        if engine == "merge":
            curve = _merge_curve(tasks)
        else:
            costs = [list(t.areas) for t in tasks]
            cap = sum(max(c) for c in costs)
            best, picks = _multichoice_dp(tasks, costs, cap)
            points = []
            for j in range(cap + 1):
                if not math.isfinite(best[j]):
                    continue
                points.append(
                    ParetoPoint(
                        value=float(best[j]),
                        cost=float(j),
                        choice=_backtrack(tasks, costs, picks, j),
                    )
                )
            curve = pareto_filter(points)
        sp.set(points=len(curve))
    if key is not None:
        cache.store_pareto(key, _points_to_jsonable(curve))
    return curve


def approx_utilization_curve(
    tasks: Sequence[TaskCurve], eps: float, use_cache: bool = True
) -> list[ParetoPoint]:
    """ε-approximate utilization-area Pareto curve (Algorithm 3, stage 2)."""
    if eps <= 0:
        raise ReproError("eps must be positive")
    if not tasks:
        raise ReproError("need at least one task curve")
    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.curves_digest(tasks), kind="inter_approx", eps=eps
        )
        cached = cache.fetch_pareto(key)
        if cached is not None:
            return _points_from_jsonable(cached)
    with obs.span("pareto.approx", tasks=len(tasks), eps=eps) as sp:
        eps_prime = math.sqrt(1.0 + eps) - 1.0
        n_options = sum(len(t.areas) for t in tasks)
        total_cost = sum(max(t.areas) for t in tasks)
        points: list[ParetoPoint] = []
        # Zero-cost solution: every task at its cheapest (software) option.
        u0 = 0.0
        choice0 = []
        for t in tasks:
            k = min(
                range(len(t.areas)), key=lambda k: (t.areas[k], t.workloads[k])
            )
            u0 += t.utilizations[k]
            choice0.append(k)
        points.append(ParetoPoint(value=u0, cost=0.0, choice=tuple(choice0)))
        if total_cost == 0:
            return pareto_filter(points)

        r = math.ceil(n_options / eps_prime)
        b = 1.0
        coords: list[float] = []
        while b <= total_cost:
            coords.append(b)
            b *= 1.0 + eps_prime
        for coord in coords:
            scaled = [
                [math.ceil(a * r / coord) for a in t.areas] for t in tasks
            ]
            best, picks = _multichoice_dp(tasks, scaled, r)
            j = int(np.argmin(best))
            if not math.isfinite(best[j]):
                continue
            choice = _backtrack(tasks, scaled, picks, j)
            # Report the solution's true cost (property (a) bounds it by coord).
            true_cost = sum(t.areas[k] for t, k in zip(tasks, choice))
            points.append(
                ParetoPoint(
                    value=float(best[j]), cost=float(true_cost), choice=choice
                )
            )
        # Exact full-cost corner: every task at its fastest option.
        u_full, cost_full, choice_full = 0.0, 0.0, []
        for t in tasks:
            k = min(
                range(len(t.areas)), key=lambda k: (t.workloads[k], t.areas[k])
            )
            u_full += t.utilizations[k]
            cost_full += t.areas[k]
            choice_full.append(k)
        points.append(
            ParetoPoint(
                value=u_full, cost=float(cost_full), choice=tuple(choice_full)
            )
        )
        curve = pareto_filter(points)
        sp.set(points=len(curve))
    if key is not None:
        cache.store_pareto(key, _points_to_jsonable(curve))
    return curve
