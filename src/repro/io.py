"""JSON serialization for task sets, hot loops and results.

Lets users persist derived artifacts (configuration curves are expensive to
build) and feed external data — e.g. CIS-version tables measured on real
hardware — into the solvers without touching the synthetic substrate.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.mtreconfig.model import ReconfigTask, TaskVersion
from repro.reconfig.model import CISVersion, HotLoop
from repro.rtsched.task import PeriodicTask, TaskSet
from repro.selection.config_curve import TaskConfiguration

__all__ = [
    "task_set_to_dict",
    "task_set_from_dict",
    "hot_loops_to_dict",
    "hot_loops_from_dict",
    "reconfig_tasks_to_dict",
    "reconfig_tasks_from_dict",
    "save_json",
    "load_json",
]

_SCHEMA = "repro/v1"


def task_set_to_dict(task_set: TaskSet) -> dict[str, Any]:
    """Serialize a :class:`TaskSet` (with configuration curves)."""
    return {
        "schema": _SCHEMA,
        "kind": "task_set",
        "name": task_set.name,
        "tasks": [
            {
                "name": t.name,
                "period": t.period,
                "wcet": t.wcet,
                "configurations": [
                    {"area": c.area, "cycles": c.cycles} for c in t.configurations
                ],
            }
            for t in task_set
        ],
    }


def task_set_from_dict(data: dict[str, Any]) -> TaskSet:
    """Inverse of :func:`task_set_to_dict`."""
    _check(data, "task_set")
    tasks = []
    for t in data["tasks"]:
        configurations = tuple(
            TaskConfiguration(area=c["area"], cycles=c["cycles"])
            for c in t["configurations"]
        )
        tasks.append(
            PeriodicTask(
                name=t["name"],
                period=t["period"],
                wcet=t["wcet"],
                configurations=configurations,
            )
        )
    return TaskSet(tasks, name=data.get("name", ""))


def hot_loops_to_dict(
    loops: list[HotLoop], trace: list[int] | None = None
) -> dict[str, Any]:
    """Serialize Chapter 6 hot loops (and optionally their trace)."""
    out: dict[str, Any] = {
        "schema": _SCHEMA,
        "kind": "hot_loops",
        "loops": [
            {
                "name": lp.name,
                "versions": [{"area": v.area, "gain": v.gain} for v in lp.versions],
            }
            for lp in loops
        ],
    }
    if trace is not None:
        out["trace"] = list(trace)
    return out


def hot_loops_from_dict(data: dict[str, Any]) -> tuple[list[HotLoop], list[int]]:
    """Inverse of :func:`hot_loops_to_dict`; trace defaults to empty."""
    _check(data, "hot_loops")
    loops = [
        HotLoop(
            name=lp["name"],
            versions=tuple(
                CISVersion(area=v["area"], gain=v["gain"]) for v in lp["versions"]
            ),
        )
        for lp in data["loops"]
    ]
    return loops, list(data.get("trace", []))


def reconfig_tasks_to_dict(tasks: list[ReconfigTask]) -> dict[str, Any]:
    """Serialize Chapter 7 reconfigurable tasks."""
    return {
        "schema": _SCHEMA,
        "kind": "reconfig_tasks",
        "tasks": [
            {
                "name": t.name,
                "period": t.period,
                "versions": [
                    {"area": v.area, "cycles": v.cycles} for v in t.versions
                ],
            }
            for t in tasks
        ],
    }


def reconfig_tasks_from_dict(data: dict[str, Any]) -> list[ReconfigTask]:
    """Inverse of :func:`reconfig_tasks_to_dict`."""
    _check(data, "reconfig_tasks")
    return [
        ReconfigTask(
            name=t["name"],
            period=t["period"],
            versions=tuple(
                TaskVersion(area=v["area"], cycles=v["cycles"])
                for v in t["versions"]
            ),
        )
        for t in data["tasks"]
    ]


def save_json(data: dict[str, Any], path: str | Path) -> None:
    """Write a serialized artifact to *path* atomically.

    The text lands in a temporary file in the destination directory and is
    renamed into place with :func:`os.replace`, so a crash or SIGKILL
    mid-write can never leave a torn artifact behind: readers observe
    either the previous content or the complete new one.
    """
    path = Path(path)
    text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialized artifact; validates the schema marker."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"{path}: cannot read ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or data.get("schema") != _SCHEMA:
        raise ReproError(f"{path}: not a {_SCHEMA} artifact")
    return data


def _check(data: dict[str, Any], kind: str) -> None:
    if data.get("schema") != _SCHEMA:
        raise ReproError(f"expected schema {_SCHEMA}, got {data.get('schema')!r}")
    if data.get("kind") != kind:
        raise ReproError(f"expected kind {kind!r}, got {data.get('kind')!r}")
