"""Greedy custom-instruction selection heuristics.

Standard priority-function heuristics from the literature (thesis
Section 2.3.2, [24, 22, 64]): repeatedly pick the best-ranked candidate that
fits the remaining area and does not overlap an already-selected candidate.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.enumeration.patterns import Candidate

__all__ = ["select_greedy", "PRIORITY_FUNCTIONS"]


def _by_gain(c: Candidate) -> float:
    return c.total_gain


def _by_gain_area_ratio(c: Candidate) -> float:
    return c.total_gain / c.area if c.area > 0 else float("inf")


#: Named priority functions accepted by :func:`select_greedy`.
PRIORITY_FUNCTIONS: dict[str, Callable[[Candidate], float]] = {
    "gain": _by_gain,
    "gain_area_ratio": _by_gain_area_ratio,
}


def select_greedy(
    candidates: Sequence[Candidate],
    area_budget: float,
    priority: str = "gain_area_ratio",
) -> list[int]:
    """Select a conflict-free candidate subset greedily.

    Args:
        candidates: the candidate pool.
        area_budget: total CFU area available.
        priority: one of :data:`PRIORITY_FUNCTIONS` keys.

    Returns:
        Indices of the selected candidates (in selection order).
    """
    try:
        rank = PRIORITY_FUNCTIONS[priority]
    except KeyError:
        raise ValueError(
            f"unknown priority {priority!r}; choose from {sorted(PRIORITY_FUNCTIONS)}"
        ) from None
    order = sorted(range(len(candidates)), key=lambda i: -rank(candidates[i]))
    selected: list[int] = []
    covered: dict[int, set[int]] = {}
    remaining = area_budget
    for i in order:
        c = candidates[i]
        if c.total_gain <= 0 or c.area > remaining:
            continue
        block_cover = covered.setdefault(c.block_index, set())
        if c.nodes & block_cover:
            continue
        selected.append(i)
        block_cover |= c.nodes
        remaining -= c.area
    return selected
