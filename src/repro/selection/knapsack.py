"""0-1 knapsack DP for non-overlapping candidate selection.

When candidates are pairwise disjoint (e.g. pre-clustered per region, or the
winners of a per-block pre-selection), selection under an area budget is a
plain 0-1 knapsack (Cong et al., thesis Section 2.3.2), solved optimally in
pseudo-polynomial time over a quantized area axis.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd

from repro.enumeration.patterns import Candidate

__all__ = ["select_knapsack", "area_quantum"]


def area_quantum(areas: Sequence[float], budget: float, scale: int = 100) -> int:
    """Integer quantization step for an area axis.

    Areas are scaled by *scale* and rounded; the returned quantum is the GCD
    of all scaled areas and the budget (thesis Algorithm 1 chooses the step
    as "the greatest common divisor of all configurations' area ... and
    AREA").
    """
    ints = [round(a * scale) for a in areas if a > 0]
    ints.append(max(1, round(budget * scale)))
    g = 0
    for v in ints:
        g = gcd(g, v)
    return max(1, g)


def select_knapsack(
    candidates: Sequence[Candidate], area_budget: float, scale: int = 100
) -> list[int]:
    """Optimal selection of pairwise-disjoint candidates (0-1 knapsack).

    Args:
        candidates: disjoint candidate pool (overlaps are *not* checked).
        area_budget: total CFU area available.
        scale: fixed-point scale for area quantization.

    Returns:
        Indices of the selected candidates.
    """
    items = [
        (i, c.total_gain, round(c.area * scale))
        for i, c in enumerate(candidates)
        if c.total_gain > 0
    ]
    cap = int(round(area_budget * scale))
    if cap <= 0 or not items:
        return []
    quantum = area_quantum([c.area for c in candidates], area_budget, scale)
    cap //= quantum
    best = [0.0] * (cap + 1)
    take: list[list[int]] = [[] for _ in range(cap + 1)]
    for idx, gain, area_scaled in items:
        w = -(-area_scaled // quantum)  # ceil division: never under-count area
        if w > cap:
            continue
        for a in range(cap, w - 1, -1):
            cand_val = best[a - w] + gain
            if cand_val > best[a]:
                best[a] = cand_val
                take[a] = take[a - w] + [idx]
    best_a = max(range(cap + 1), key=lambda a: best[a])
    return sorted(take[best_a])
