"""0-1 knapsack DP for non-overlapping candidate selection.

When candidates are pairwise disjoint (e.g. pre-clustered per region, or the
winners of a per-block pre-selection), selection under an area budget is a
plain 0-1 knapsack (Cong et al., thesis Section 2.3.2), solved optimally in
pseudo-polynomial time over a quantized area axis.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd

import numpy as np

from repro.enumeration.patterns import Candidate
from repro.errors import ReproError

__all__ = ["select_knapsack", "area_quantum"]


def area_quantum(areas: Sequence[float], budget: float, scale: int = 100) -> int:
    """Integer quantization step for an area axis.

    Areas are scaled by *scale* and rounded; the returned quantum is the GCD
    of all scaled areas and the budget (thesis Algorithm 1 chooses the step
    as "the greatest common divisor of all configurations' area ... and
    AREA").
    """
    ints = [round(a * scale) for a in areas if a > 0]
    ints.append(max(1, round(budget * scale)))
    g = 0
    for v in ints:
        g = gcd(g, v)
    return max(1, g)


def select_knapsack(
    candidates: Sequence[Candidate],
    area_budget: float,
    scale: int = 100,
    engine: str = "vector",
) -> list[int]:
    """Optimal selection of pairwise-disjoint candidates (0-1 knapsack).

    Args:
        candidates: disjoint candidate pool (overlaps are *not* checked).
        area_budget: total CFU area available.
        scale: fixed-point scale for area quantization.
        engine: ``"vector"`` (default) runs the DP row-at-a-time in numpy
            with a per-item decision matrix and reverse backtracking;
            ``"reference"`` keeps the original scalar take-list DP.  The
            selected index set is identical (strict ``>`` updates make the
            reverse walk reproduce the forward take-lists).

    Returns:
        Indices of the selected candidates.
    """
    if engine not in ("vector", "reference"):
        raise ReproError(f"unknown engine {engine!r}; use 'vector' or 'reference'")
    items = [
        (i, c.total_gain, round(c.area * scale))
        for i, c in enumerate(candidates)
        if c.total_gain > 0
    ]
    cap = int(round(area_budget * scale))
    if cap <= 0 or not items:
        return []
    quantum = area_quantum([c.area for c in candidates], area_budget, scale)
    cap //= quantum

    if engine == "vector":
        best = np.zeros(cap + 1)
        widths: list[int] = []
        kept: list[int] = []
        taken_rows: list[np.ndarray] = []
        for idx, gain, area_scaled in items:
            w = -(-area_scaled // quantum)  # ceil: never under-count area
            if w > cap:
                continue
            shifted = best[: cap + 1 - w] + gain
            better = shifted > best[w:]
            best[w:][better] = shifted[better]
            row = np.zeros(cap + 1, dtype=bool)
            row[w:] = better
            taken_rows.append(row)
            widths.append(w)
            kept.append(idx)
        if not kept:
            return []
        a = int(np.argmax(best))  # first occurrence = smallest area, as max()
        chosen: list[int] = []
        for m in range(len(kept) - 1, -1, -1):
            if taken_rows[m][a]:
                chosen.append(kept[m])
                a -= widths[m]
        return sorted(chosen)

    best_list = [0.0] * (cap + 1)
    take: list[list[int]] = [[] for _ in range(cap + 1)]
    for idx, gain, area_scaled in items:
        w = -(-area_scaled // quantum)  # ceil division: never under-count area
        if w > cap:
            continue
        for a in range(cap, w - 1, -1):
            cand_val = best_list[a - w] + gain
            if cand_val > best_list[a]:
                best_list[a] = cand_val
                take[a] = take[a - w] + [idx]
    best_a = max(range(cap + 1), key=lambda a: best_list[a])
    return sorted(take[best_a])
