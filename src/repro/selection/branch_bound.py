"""Optimal custom-instruction selection by branch and bound.

Maximizes total gain under an area budget with pairwise overlap conflicts
(a base operation is covered by at most one selected candidate).  The
search orders candidates by gain/area density and bounds each subtree with
the fractional-knapsack relaxation (ignoring conflicts), which is admissible.
Comparable to the branch-and-bound selector of Sun et al. [89] cited in
thesis Section 2.3.2.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.enumeration.patterns import Candidate

__all__ = ["select_branch_bound"]


def select_branch_bound(
    candidates: Sequence[Candidate],
    area_budget: float,
    max_nodes: int = 2_000_000,
) -> list[int]:
    """Optimal conflict-free selection under an area budget.

    Args:
        candidates: the candidate pool.
        area_budget: total CFU area available.
        max_nodes: search-node safety cap; the incumbent (best found) is
            returned if exceeded.

    Returns:
        Indices of the selected candidates.
    """
    pool = [
        i
        for i, c in enumerate(candidates)
        if c.total_gain > 0 and c.area <= area_budget
    ]
    # Density order makes the fractional bound tight early.
    pool.sort(
        key=lambda i: -(
            candidates[i].total_gain / candidates[i].area
            if candidates[i].area > 0
            else float("inf")
        )
    )
    n = len(pool)
    gains = [candidates[i].total_gain for i in pool]
    areas = [candidates[i].area for i in pool]

    best_gain = 0.0
    best_sel: list[int] = []
    visited = 0

    def fractional_bound(k: int, remaining: float) -> float:
        """Upper bound on extra gain from candidates k.. with *remaining* area."""
        bound = 0.0
        for j in range(k, n):
            if areas[j] <= remaining:
                bound += gains[j]
                remaining -= areas[j]
            elif areas[j] > 0:
                bound += gains[j] * (remaining / areas[j])
                break
        return bound

    def conflicts_with(i: int, chosen: list[int]) -> bool:
        ci = candidates[pool[i]]
        return any(ci.overlaps(candidates[pool[j]]) for j in chosen)

    def search(k: int, chosen: list[int], gain: float, remaining: float) -> None:
        nonlocal best_gain, best_sel, visited
        visited += 1
        if visited > max_nodes:
            return
        if gain > best_gain:
            best_gain = gain
            best_sel = list(chosen)
        if k >= n:
            return
        if gain + fractional_bound(k, remaining) <= best_gain:
            return
        # Branch 1: take candidate k if it fits and does not conflict.
        if areas[k] <= remaining and not conflicts_with(k, chosen):
            chosen.append(k)
            search(k + 1, chosen, gain + gains[k], remaining - areas[k])
            chosen.pop()
        # Branch 2: skip candidate k.
        search(k + 1, chosen, gain, remaining)

    search(0, [], 0.0, area_budget)
    return sorted(pool[j] for j in best_sel)
