"""Custom-instruction selection substrate."""

from repro.selection.annealing import select_annealing
from repro.selection.branch_bound import select_branch_bound
from repro.selection.genetic import select_genetic
from repro.selection.config_curve import (
    TaskConfiguration,
    bind_customized_cost,
    build_configuration_curve,
    downsample_curve,
)
from repro.selection.greedy import PRIORITY_FUNCTIONS, select_greedy
from repro.selection.ilp import select_ilp
from repro.selection.knapsack import area_quantum, select_knapsack

__all__ = [
    "select_annealing",
    "select_genetic",
    "select_branch_bound",
    "TaskConfiguration",
    "bind_customized_cost",
    "build_configuration_curve",
    "downsample_curve",
    "PRIORITY_FUNCTIONS",
    "select_greedy",
    "select_ilp",
    "area_quantum",
    "select_knapsack",
]
