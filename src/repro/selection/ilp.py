"""ILP-based custom-instruction selection (Lee et al. style, thesis 2.3.2).

Formulation, over binary variables ``x_i`` (candidate *i* selected):

* maximize  ``sum_i gain_i * x_i``
* subject to ``sum_i area_i * x_i <= AREA``
* and ``x_i + x_j <= 1`` for every overlapping pair *(i, j)*.

With ``share_isomorphic=True``, candidates of the same structural class share
one datapath: class variables ``y_k`` carry the area and ``x_i <= y_k`` links
members to their class, so selecting several isomorphic instances pays the
area once.

Solved with ``scipy.optimize.milp`` (HiGHS).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.enumeration.patterns import Candidate, CandidateLibrary
from repro.errors import SolverError

__all__ = ["select_ilp"]


def select_ilp(
    candidates: Sequence[Candidate],
    area_budget: float,
    share_isomorphic: bool = False,
    time_limit: float | None = None,
) -> list[int]:
    """Optimal conflict-free selection via integer linear programming.

    Args:
        candidates: the candidate pool.
        area_budget: total CFU area available.
        share_isomorphic: count the area of structurally identical
            candidates only once.
        time_limit: optional solver time limit in seconds.

    Returns:
        Indices of the selected candidates.

    Raises:
        SolverError: if the MILP backend reports failure.
    """
    n = len(candidates)
    if n == 0:
        return []
    lib = CandidateLibrary(list(candidates))
    conflict_pairs = lib.conflicts()

    if share_isomorphic:
        classes = list(lib.isomorphism_classes().items())
        n_classes = len(classes)
    else:
        classes = []
        n_classes = 0
    n_vars = n + n_classes

    # Objective: milp minimizes, so negate gains.
    c = np.zeros(n_vars)
    for i, cand in enumerate(candidates):
        c[i] = -cand.total_gain

    constraints = []
    # Area constraint.
    area_row = np.zeros(n_vars)
    if share_isomorphic:
        for k, (_, members) in enumerate(classes):
            # Class area = max member area (isomorphic => equal, but be safe).
            area_row[n + k] = max(candidates[m].area for m in members)
    else:
        for i, cand in enumerate(candidates):
            area_row[i] = cand.area
    constraints.append(LinearConstraint(area_row, -np.inf, area_budget))

    # Conflict constraints x_i + x_j <= 1.
    for i, j in conflict_pairs:
        row = np.zeros(n_vars)
        row[i] = 1.0
        row[j] = 1.0
        constraints.append(LinearConstraint(row, -np.inf, 1.0))

    # Linking constraints x_i - y_k <= 0.
    if share_isomorphic:
        for k, (_, members) in enumerate(classes):
            for m in members:
                row = np.zeros(n_vars)
                row[m] = 1.0
                row[n + k] = -1.0
                constraints.append(LinearConstraint(row, -np.inf, 0.0))

    integrality = np.ones(n_vars)
    bounds = Bounds(np.zeros(n_vars), np.ones(n_vars))
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if not result.success:
        raise SolverError(f"MILP selection failed: {result.message}")
    return [i for i in range(n) if result.x[i] > 0.5]
