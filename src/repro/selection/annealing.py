"""Simulated-annealing custom-instruction selection (thesis 2.3.2, [43]).

State: a feasible (conflict-free, in-budget) candidate subset.  Moves flip
one candidate in or out; switching one in evicts conflicting/overflowing
members.  The Metropolis criterion on total gain with a geometric cooling
schedule escapes the local optima greedy selection falls into.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.enumeration.patterns import Candidate

__all__ = ["select_annealing"]


class _State:
    def __init__(self, candidates: Sequence[Candidate], budget: float) -> None:
        self.candidates = candidates
        self.budget = budget
        self.selected: set[int] = set()
        self.area = 0.0
        self.gain = 0.0

    def clone(self) -> "_State":
        s = _State(self.candidates, self.budget)
        s.selected = set(self.selected)
        s.area = self.area
        s.gain = self.gain
        return s

    def conflicts_of(self, i: int) -> list[int]:
        c = self.candidates[i]
        return [
            j
            for j in self.selected
            if j != i and c.overlaps(self.candidates[j])
        ]

    def remove(self, i: int) -> None:
        if i in self.selected:
            self.selected.discard(i)
            self.area -= self.candidates[i].area
            self.gain -= self.candidates[i].total_gain

    def add(self, i: int) -> bool:
        """Insert candidate *i*, evicting conflicts and overflow; True if
        the insertion happened."""
        c = self.candidates[i]
        if c.area > self.budget:
            return False
        for j in self.conflicts_of(i):
            self.remove(j)
        # Evict lowest-density members until the budget holds.
        while self.area + c.area > self.budget + 1e-9 and self.selected:
            worst = min(
                self.selected,
                key=lambda j: (
                    self.candidates[j].total_gain / self.candidates[j].area
                    if self.candidates[j].area > 0
                    else float("inf")
                ),
            )
            self.remove(worst)
        if self.area + c.area > self.budget + 1e-9:
            return False
        self.selected.add(i)
        self.area += c.area
        self.gain += c.total_gain
        return True


def select_annealing(
    candidates: Sequence[Candidate],
    area_budget: float,
    iterations: int = 4000,
    start_temp: float | None = None,
    cooling: float = 0.999,
    seed: int = 0,
) -> list[int]:
    """Simulated-annealing conflict-free selection under an area budget.

    Args:
        candidates: the candidate pool.
        area_budget: total CFU area available.
        iterations: annealing steps.
        start_temp: initial temperature; defaults to the mean positive gain.
        cooling: geometric cooling factor per step.
        seed: RNG seed.

    Returns:
        Indices of the selected candidates (best state visited).
    """
    pool = [i for i, c in enumerate(candidates) if c.total_gain > 0]
    if not pool or area_budget <= 0:
        return []
    rng = random.Random(seed)

    state = _State(candidates, area_budget)
    # Start from the greedy solution.
    from repro.selection.greedy import select_greedy

    for i in select_greedy(candidates, area_budget):
        state.add(i)
    best = state.clone()

    gains = [candidates[i].total_gain for i in pool]
    temp = start_temp if start_temp is not None else sum(gains) / len(gains)
    temp = max(temp, 1e-9)

    for _ in range(iterations):
        i = rng.choice(pool)
        trial = state.clone()
        if i in trial.selected:
            trial.remove(i)
        elif not trial.add(i):
            temp *= cooling
            continue
        delta = trial.gain - state.gain
        if delta >= 0 or rng.random() < math.exp(delta / temp):
            state = trial
            if state.gain > best.gain:
                best = state.clone()
        temp = max(temp * cooling, 1e-9)
    return sorted(best.selected)
