"""Per-task configuration curves (performance vs. hardware area).

The multi-tasking algorithms of thesis Chapters 3, 4 and 7 consume, per task,
a set of *configurations* ``config_{i,j} = (area_{i,j}, cycle_{i,j})`` with a
monotone trade-off (Figure 3.1): the higher the area, the lower the cycle
count.  Configuration ``j=0`` is always the pure-software version with zero
area.  This module derives such curves from a task's program model by running
candidate selection at stepped area budgets and re-evaluating the program
cost after substitution.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.enumeration.patterns import Candidate
from repro.graphs.program import Block, Program
from repro.selection.branch_bound import select_branch_bound
from repro.selection.greedy import select_greedy

__all__ = [
    "TaskConfiguration",
    "build_configuration_curve",
    "customized_block_cost",
    "downsample_curve",
]


@dataclass(frozen=True)
class TaskConfiguration:
    """One point on a task's performance/area trade-off curve.

    Attributes:
        area: total CFU area of the selected custom instructions.
        cycles: task execution time (WCET or average, per the builder) with
            those custom instructions.
        selected: indices into the candidate library used to build the curve.
    """

    area: float
    cycles: float
    selected: tuple[int, ...] = ()


def customized_block_cost(
    candidates: Sequence[Candidate],
    selected: Sequence[int],
) -> Callable[[Block], float]:
    """Block-cost function after substituting the selected candidates.

    Each selected candidate lowers its owning block's latency by its
    per-execution gain.  The returned callable is suitable for
    :meth:`repro.graphs.program.Program.wcet` and friends; it resolves blocks
    by identity through their position captured at call time.
    """
    saved_by_block: dict[int, float] = {}
    for i in selected:
        c = candidates[i]
        saved_by_block[c.block_index] = (
            saved_by_block.get(c.block_index, 0.0) + c.gain_per_exec
        )

    # The cost function needs the block's index; capture via attribute lookup
    # at first use (programs hand us Block objects, not indices).
    block_index_cache: dict[int, int] = {}

    def bind(program: Program) -> Callable[[Block], float]:
        index = {id(b): i for i, b in enumerate(program.basic_blocks)}

        def cost(block: Block) -> float:
            i = index[id(block)]
            return max(
                1.0, float(block.dfg.sw_cycles()) - saved_by_block.get(i, 0.0)
            )

        return cost

    return bind  # type: ignore[return-value]


def _program_cost(
    program: Program,
    candidates: Sequence[Candidate],
    selected: Sequence[int],
    objective: str,
) -> float:
    bind = customized_block_cost(candidates, selected)
    cost = bind(program)  # type: ignore[operator]
    if objective == "wcet":
        return program.wcet(cost)
    if objective == "avg":
        return program.avg_cycles(cost)
    raise ValueError(f"unknown objective {objective!r}; use 'wcet' or 'avg'")


def build_configuration_curve(
    program: Program,
    candidates: Sequence[Candidate],
    max_area: float | None = None,
    steps: int = 12,
    objective: str = "avg",
    method: str = "greedy",
) -> list[TaskConfiguration]:
    """Build a task's Pareto-filtered configuration curve.

    Args:
        program: the task's program model.
        candidates: its candidate library.
        max_area: largest budget to explore; defaults to the area of all
            profitable candidates combined.
        steps: number of budget steps between 0 and *max_area*.
        objective: ``"wcet"`` or ``"avg"`` program cost.
        method: ``"greedy"`` (fast) or ``"optimal"`` (branch and bound).

    Returns:
        Configurations sorted by increasing area, starting with the software
        version (area 0), with dominated points removed.  Cycle counts are
        strictly decreasing along the curve.
    """
    if method not in ("greedy", "optimal"):
        raise ValueError(f"unknown method {method!r}; use 'greedy' or 'optimal'")
    profitable_area = sum(c.area for c in candidates if c.total_gain > 0)
    ceiling = max_area if max_area is not None else profitable_area
    base_cycles = _program_cost(program, candidates, [], objective)
    points: list[TaskConfiguration] = [
        TaskConfiguration(area=0.0, cycles=base_cycles, selected=())
    ]
    if ceiling <= 0:
        return points
    if method == "greedy":
        # Greedy selections nest as the budget grows, so the prefixes of a
        # single unbounded greedy run give the whole (fine-grained) curve.
        order = select_greedy(candidates, ceiling)
        prefix: list[int] = []
        for i in order:
            prefix.append(i)
            sel = tuple(sorted(prefix))
            used_area = sum(candidates[k].area for k in sel)
            cycles = _program_cost(program, candidates, sel, objective)
            points.append(
                TaskConfiguration(area=used_area, cycles=cycles, selected=sel)
            )
    elif method == "optimal":
        if steps <= 0:
            return points
        seen: set[tuple[int, ...]] = {()}
        for k in range(1, steps + 1):
            budget = ceiling * k / steps
            sel = tuple(sorted(select_branch_bound(candidates, budget)))
            if sel in seen:
                continue
            seen.add(sel)
            used_area = sum(candidates[i].area for i in sel)
            cycles = _program_cost(program, candidates, sel, objective)
            points.append(
                TaskConfiguration(area=used_area, cycles=cycles, selected=sel)
            )
    else:
        raise ValueError(f"unknown method {method!r}; use 'greedy' or 'optimal'")
    # Pareto filter: sort by area then drop points not improving cycles.
    points.sort(key=lambda p: (p.area, p.cycles))
    frontier: list[TaskConfiguration] = []
    for p in points:
        if not frontier:
            frontier.append(p)
        elif p.cycles < frontier[-1].cycles - 1e-9:
            if abs(p.area - frontier[-1].area) < 1e-12:
                frontier[-1] = p
            else:
                frontier.append(p)
    return frontier


def downsample_curve(
    points: Sequence[TaskConfiguration], max_points: int
) -> list[TaskConfiguration]:
    """Thin a configuration curve to at most *max_points* points.

    Keeps the software point (area 0) and the fastest point, and picks the
    rest evenly along the area axis.  Used to bound the size of the
    per-task design space handed to the inter-task DP / branch-and-bound.
    """
    if max_points < 2:
        raise ValueError("max_points must be at least 2")
    pts = sorted(points, key=lambda p: p.area)
    if len(pts) <= max_points:
        return list(pts)
    lo, hi = pts[0].area, pts[-1].area
    chosen = {0, len(pts) - 1}
    for k in range(1, max_points - 1):
        target = lo + (hi - lo) * k / (max_points - 1)
        best = min(
            range(len(pts)), key=lambda i: (abs(pts[i].area - target), i)
        )
        chosen.add(best)
    return [pts[i] for i in sorted(chosen)]
