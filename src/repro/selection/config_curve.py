"""Per-task configuration curves (performance vs. hardware area).

The multi-tasking algorithms of thesis Chapters 3, 4 and 7 consume, per task,
a set of *configurations* ``config_{i,j} = (area_{i,j}, cycle_{i,j})`` with a
monotone trade-off (Figure 3.1): the higher the area, the lower the cycle
count.  Configuration ``j=0`` is always the pure-software version with zero
area.  This module derives such curves from a task's program model by running
candidate selection at stepped area budgets and re-evaluating the program
cost after substitution.

Curve construction is a hot path (Chapter 3/5 sweeps rebuild curves for
every task), so the per-block software cost vector is computed once and
greedy prefixes apply O(1) gain deltas per point instead of re-walking the
whole program per budget (:class:`_IncrementalCoster`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.enumeration.patterns import Candidate
from repro.graphs.program import Block, Program
from repro.selection.branch_bound import select_branch_bound
from repro.selection.greedy import select_greedy

__all__ = [
    "TaskConfiguration",
    "bind_customized_cost",
    "build_configuration_curve",
    "downsample_curve",
]


@dataclass(frozen=True)
class TaskConfiguration:
    """One point on a task's performance/area trade-off curve.

    Attributes:
        area: total CFU area of the selected custom instructions.
        cycles: task execution time (WCET or average, per the builder) with
            those custom instructions.
        selected: indices into the candidate library used to build the curve.
    """

    area: float
    cycles: float
    selected: tuple[int, ...] = ()

    @property
    def is_software(self) -> bool:
        """True for the pure base-ISA configuration (no CFU area, nothing
        selected) — the fallback target when a CFU is faulted out."""
        return self.area == 0.0 and not self.selected


def bind_customized_cost(
    program: Program,
    candidates: Sequence[Candidate],
    selected: Sequence[int],
) -> Callable[[Block], float]:
    """Block-cost function after substituting the selected candidates.

    Each selected candidate lowers its owning block's latency by its
    per-execution gain.  The returned callable is suitable for
    :meth:`repro.graphs.program.Program.wcet` and friends; it resolves blocks
    by identity through their position in *program*.
    """
    saved_by_block: dict[int, float] = {}
    for i in selected:
        c = candidates[i]
        saved_by_block[c.block_index] = (
            saved_by_block.get(c.block_index, 0.0) + c.gain_per_exec
        )
    index = {id(b): i for i, b in enumerate(program.basic_blocks)}

    def cost(block: Block) -> float:
        i = index[id(block)]
        return max(
            1.0, float(block.dfg.sw_cycles()) - saved_by_block.get(i, 0.0)
        )

    return cost


class _IncrementalCoster:
    """Tracks program cost across growing candidate selections.

    Precomputes the per-block software cost vector and (for the ``"avg"``
    objective) the profile frequencies once; adding a candidate then updates
    only its owning block's contribution.  The ``"wcet"`` objective still
    needs a timing-schema tree walk per query (``max`` over branches is not
    decomposable into per-block deltas), but reuses the precomputed vectors
    instead of re-deriving block costs and indices per point.
    """

    def __init__(
        self,
        program: Program,
        candidates: Sequence[Candidate],
        objective: str,
    ) -> None:
        if objective not in ("wcet", "avg"):
            raise ValueError(
                f"unknown objective {objective!r}; use 'wcet' or 'avg'"
            )
        self._program = program
        self._candidates = candidates
        self._objective = objective
        blocks = program.basic_blocks
        self._sw = [float(b.dfg.sw_cycles()) for b in blocks]
        self._saved = [0.0] * len(blocks)
        if objective == "avg":
            freq = program.profile()
            self._freq = [freq.get(i, 0.0) for i in range(len(blocks))]
            self._contrib = [
                f * max(1.0, s) for f, s in zip(self._freq, self._sw)
            ]
        else:
            self._index = {id(b): i for i, b in enumerate(blocks)}

    def _block_cost(self, i: int) -> float:
        return max(1.0, self._sw[i] - self._saved[i])

    def add(self, candidate_index: int) -> None:
        """Apply one more selected candidate's gain to its owning block."""
        c = self._candidates[candidate_index]
        b = c.block_index
        self._saved[b] += c.gain_per_exec
        if self._objective == "avg":
            self._contrib[b] = self._freq[b] * self._block_cost(b)

    def set_selection(self, selected: Sequence[int]) -> None:
        """Reset to an arbitrary selection (for non-nested methods)."""
        for b, s in enumerate(self._saved):
            if s:
                self._saved[b] = 0.0
                if self._objective == "avg":
                    self._contrib[b] = self._freq[b] * max(1.0, self._sw[b])
        for i in selected:
            self.add(i)

    def cost(self) -> float:
        """Program cost under the current selection."""
        if self._objective == "avg":
            return sum(self._contrib)
        index = self._index

        def block_cost(block: Block) -> float:
            return self._block_cost(index[id(block)])

        return self._program.wcet(block_cost)


def build_configuration_curve(
    program: Program,
    candidates: Sequence[Candidate],
    max_area: float | None = None,
    steps: int = 12,
    objective: str = "avg",
    method: str = "greedy",
    use_cache: bool = True,
) -> list[TaskConfiguration]:
    """Build a task's Pareto-filtered configuration curve.

    Args:
        program: the task's program model.
        candidates: its candidate library.
        max_area: largest budget to explore; defaults to the area of all
            profitable candidates combined.
        steps: number of budget steps between 0 and *max_area*.
        objective: ``"wcet"`` or ``"avg"`` program cost.
        method: ``"greedy"`` (fast) or ``"optimal"`` (branch and bound).
        use_cache: memoize the curve through :mod:`repro.cache`, keyed on
            the program structure, the candidate list and all parameters.

    Returns:
        Configurations sorted by increasing area, starting with the software
        version (area 0), with dominated points removed.  Cycle counts are
        strictly decreasing along the curve.
    """
    if method not in ("greedy", "optimal"):
        raise ValueError(f"unknown method {method!r}; use 'greedy' or 'optimal'")
    if objective not in ("wcet", "avg"):
        raise ValueError(f"unknown objective {objective!r}; use 'wcet' or 'avg'")
    key = None
    if use_cache:
        from repro import cache

        key = cache.artifact_key(
            cache.program_fingerprint(program),
            kind="curve",
            candidates=cache.candidates_digest(candidates),
            max_area=max_area,
            steps=steps,
            objective=objective,
            method=method,
        )
        hit = cache.fetch_curve(key)
        if hit is not None:
            return hit
    coster = _IncrementalCoster(program, candidates, objective)
    profitable_area = sum(c.area for c in candidates if c.total_gain > 0)
    ceiling = max_area if max_area is not None else profitable_area
    base_cycles = coster.cost()
    points: list[TaskConfiguration] = [
        TaskConfiguration(area=0.0, cycles=base_cycles, selected=())
    ]
    if ceiling <= 0:
        return points
    if method == "greedy":
        # Greedy selections nest as the budget grows, so the prefixes of a
        # single unbounded greedy run give the whole (fine-grained) curve,
        # each point costing one O(1) delta instead of a program re-walk.
        order = select_greedy(candidates, ceiling)
        prefix: list[int] = []
        for i in order:
            prefix.append(i)
            coster.add(i)
            sel = tuple(sorted(prefix))
            used_area = sum(candidates[k].area for k in sel)
            points.append(
                TaskConfiguration(area=used_area, cycles=coster.cost(), selected=sel)
            )
    else:
        if steps <= 0:
            return points
        seen: set[tuple[int, ...]] = {()}
        for k in range(1, steps + 1):
            budget = ceiling * k / steps
            sel = tuple(sorted(select_branch_bound(candidates, budget)))
            if sel in seen:
                continue
            seen.add(sel)
            used_area = sum(candidates[i].area for i in sel)
            coster.set_selection(sel)
            points.append(
                TaskConfiguration(area=used_area, cycles=coster.cost(), selected=sel)
            )
    # Pareto filter: sort by area then drop points not improving cycles.
    points.sort(key=lambda p: (p.area, p.cycles))
    frontier: list[TaskConfiguration] = []
    for p in points:
        if not frontier:
            frontier.append(p)
        elif p.cycles < frontier[-1].cycles - 1e-9:
            if abs(p.area - frontier[-1].area) < 1e-12:
                frontier[-1] = p
            else:
                frontier.append(p)
    if key is not None:
        from repro import cache

        cache.store_curve(key, frontier)
    return frontier


def downsample_curve(
    points: Sequence[TaskConfiguration], max_points: int
) -> list[TaskConfiguration]:
    """Thin a configuration curve to at most *max_points* points.

    Keeps the software point (area 0) and the fastest point, and picks the
    rest evenly along the area axis.  Used to bound the size of the
    per-task design space handed to the inter-task DP / branch-and-bound.
    """
    if max_points < 2:
        raise ValueError("max_points must be at least 2")
    pts = sorted(points, key=lambda p: p.area)
    if len(pts) <= max_points:
        return list(pts)
    lo, hi = pts[0].area, pts[-1].area
    chosen = {0, len(pts) - 1}
    for k in range(1, max_points - 1):
        target = lo + (hi - lo) * k / (max_points - 1)
        best = min(
            range(len(pts)), key=lambda i: (abs(pts[i].area - target), i)
        )
        chosen.add(best)
    return [pts[i] for i in sorted(chosen)]
