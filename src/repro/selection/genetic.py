"""Genetic-algorithm custom-instruction selection (thesis 2.3.2, [86]).

A chromosome is a bit vector over the candidate pool.  Fitness is the total
gain of the *repaired* chromosome: conflicting or over-budget genes are
switched off greedily (worst gain/area density first) so every individual
is feasible.  Standard one-point crossover, bit-flip mutation, tournament
selection and elitism.

Population heuristics like this trade optimality for robustness to local
optima in very large candidate pools; the bench
``benchmarks/test_ablation_selection.py`` compares it against the optimal
branch-and-bound.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.enumeration.patterns import Candidate

__all__ = ["select_genetic"]


def _repair(
    genes: list[bool],
    candidates: Sequence[Candidate],
    area_budget: float,
) -> list[bool]:
    """Switch off genes until the selection is conflict-free and in budget."""
    active = [i for i, g in enumerate(genes) if g and candidates[i].total_gain > 0]
    # Drop conflicts: keep the denser of each conflicting pair.
    by_density = sorted(
        active,
        key=lambda i: -(
            candidates[i].total_gain / candidates[i].area
            if candidates[i].area > 0
            else float("inf")
        ),
    )
    chosen: list[int] = []
    covered: dict[int, set[int]] = {}
    area = 0.0
    for i in by_density:
        c = candidates[i]
        block_cover = covered.setdefault(c.block_index, set())
        if c.nodes & block_cover or area + c.area > area_budget + 1e-9:
            continue
        chosen.append(i)
        block_cover |= c.nodes
        area += c.area
    repaired = [False] * len(genes)
    for i in chosen:
        repaired[i] = True
    return repaired


def _fitness(genes: Sequence[bool], candidates: Sequence[Candidate]) -> float:
    return sum(c.total_gain for g, c in zip(genes, candidates) if g)


def select_genetic(
    candidates: Sequence[Candidate],
    area_budget: float,
    population: int = 40,
    generations: int = 60,
    mutation_rate: float = 0.02,
    tournament: int = 3,
    elite: int = 2,
    seed: int = 0,
) -> list[int]:
    """GA-based conflict-free selection under an area budget.

    Args:
        candidates: the candidate pool.
        area_budget: total CFU area available.
        population / generations / mutation_rate / tournament / elite:
            standard GA knobs.
        seed: RNG seed (deterministic for a given seed).

    Returns:
        Indices of the selected candidates.
    """
    n = len(candidates)
    if n == 0 or area_budget <= 0:
        return []
    rng = random.Random(seed)

    def random_individual() -> list[bool]:
        genes = [rng.random() < 0.3 for _ in range(n)]
        return _repair(genes, candidates, area_budget)

    pop = [random_individual() for _ in range(population)]
    # Seed one greedy individual so the GA never starts below the heuristic.
    from repro.selection.greedy import select_greedy

    greedy = select_greedy(candidates, area_budget)
    seeded = [False] * n
    for i in greedy:
        seeded[i] = True
    pop[0] = seeded

    def pick_parent() -> list[bool]:
        entrants = rng.sample(pop, min(tournament, len(pop)))
        return max(entrants, key=lambda g: _fitness(g, candidates))

    for _gen in range(generations):
        ranked = sorted(pop, key=lambda g: -_fitness(g, candidates))
        next_pop = [list(g) for g in ranked[:elite]]
        while len(next_pop) < population:
            a, b = pick_parent(), pick_parent()
            cut = rng.randint(1, n - 1) if n > 1 else 0
            child = a[:cut] + b[cut:]
            for i in range(n):
                if rng.random() < mutation_rate:
                    child[i] = not child[i]
            next_pop.append(_repair(child, candidates, area_budget))
        pop = next_pop

    best = max(pop, key=lambda g: _fitness(g, candidates))
    return sorted(i for i, g in enumerate(best) if g)
