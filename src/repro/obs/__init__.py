"""Observability: span-based tracing, a metrics registry, and warn-once state.

The pipeline stages (identify → curves → select → validate), the artifact
cache, the process-pool fan-out, the simulators and the fault harness all
report here instead of keeping ad-hoc ``time.perf_counter()`` fields and
module-level warning flags.  Three facilities share one module so a single
:func:`reset` gives tests and long-lived processes a clean epoch:

* **Spans** — :func:`span` is a context manager recording a named,
  monotonic-clock-timed interval with nesting (per-thread parent stack)
  and arbitrary attributes.  Tracing is **off by default**: ``span()``
  then returns a shared no-op object and records nothing, so the disabled
  cost is one boolean check plus a call — the overhead contract of
  ``benchmarks/test_identification_perf.py`` (< 2%).  Enable with
  :func:`enable_tracing`; export with :func:`export_trace` (JSONL, one
  span per line, final line = metrics snapshot).
* **Metrics** — named counters (:func:`inc`), gauges (:func:`set_gauge`)
  and histograms (:func:`observe`; count/total/min/max).  Always on:
  increments are dict updates under a lock, performed at stage
  granularity (hot loops accumulate locally and flush once).
* **Warn-once** — :func:`warn_once` returns True the first time a key is
  seen in the current epoch, so degradation log lines appear once per
  epoch instead of once per process lifetime; every occurrence should
  *also* be counted so suppression never hides events.

Worker processes spawned by :func:`repro.parallel.parallel_map` capture
their spans and metric deltas with :func:`begin_child_capture` /
:func:`end_child_capture`; the parent folds them back with
:func:`merge_payload`, re-parenting child root spans under the span active
at merge time so the trace stays one tree.

This module imports only the standard library — every other ``repro``
module may depend on it without cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

__all__ = [
    "begin_child_capture",
    "clear_trace",
    "disable_tracing",
    "enable_tracing",
    "end_child_capture",
    "export_trace",
    "inc",
    "load_trace",
    "merge_payload",
    "metrics_snapshot",
    "observe",
    "rearm_warning",
    "reset",
    "set_gauge",
    "span",
    "trace_spans",
    "tracing_enabled",
    "warn_once",
]

_lock = threading.RLock()
_local = threading.local()  # per-thread span stack (parent linkage)

_TRACING = False
_spans: list[dict[str, Any]] = []
_span_seq = 0

_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}
_histograms: dict[str, dict[str, float]] = {}
_warned: set[str] = set()
_epoch = 0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared no-op span: the entire cost of tracing when it is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Ignore attribute updates (tracing is off)."""


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "attrs", "span_id", "parent", "t0")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent: str | None = None
        self.t0 = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        global _span_seq
        with _lock:
            _span_seq += 1
            self.span_id = f"{os.getpid()}-{_span_seq}"
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        self.parent = stack[-1] if stack else None
        stack.append(self.span_id)
        self.t0 = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> bool:
        dur = time.monotonic() - self.t0
        stack = getattr(_local, "stack", None)
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record: dict[str, Any] = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent,
            "pid": os.getpid(),
            "t0": self.t0,
            "dur": dur,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        with _lock:
            if _TRACING:
                _spans.append(record)
        return False


def span(name: str, /, **attrs: Any):
    """A timed, nestable span; a shared no-op when tracing is disabled."""
    if not _TRACING:
        return _NULL_SPAN
    return _Span(name, attrs)


def enable_tracing() -> None:
    """Start recording spans (idempotent)."""
    global _TRACING
    _TRACING = True


def disable_tracing() -> None:
    """Stop recording spans; the buffer is kept until :func:`clear_trace`."""
    global _TRACING
    _TRACING = False


def tracing_enabled() -> bool:
    return _TRACING


def clear_trace() -> None:
    """Drop every buffered span."""
    with _lock:
        _spans.clear()


def trace_spans() -> list[dict[str, Any]]:
    """A snapshot of the buffered span records, ordered by start time."""
    with _lock:
        return sorted(_spans, key=lambda s: s["t0"])


def current_span_id() -> str | None:
    """The id of the innermost open span on this thread, or None."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def inc(name: str, n: float = 1) -> None:
    """Add *n* to the named counter (created at 0)."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + n


def set_gauge(name: str, value: float) -> None:
    """Set the named gauge to *value* (last write wins)."""
    with _lock:
        _gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record *value* into the named histogram (count/total/min/max)."""
    with _lock:
        h = _histograms.get(name)
        if h is None:
            _histograms[name] = {
                "count": 1, "total": value, "min": value, "max": value,
            }
        else:
            h["count"] += 1
            h["total"] += value
            if value < h["min"]:
                h["min"] = value
            if value > h["max"]:
                h["max"] = value


def metrics_snapshot() -> dict[str, Any]:
    """A JSON-serializable copy of every counter/gauge/histogram."""
    with _lock:
        return {
            "epoch": _epoch,
            "counters": dict(sorted(_counters.items())),
            "gauges": dict(sorted(_gauges.items())),
            "histograms": {
                k: dict(v) for k, v in sorted(_histograms.items())
            },
        }


# ----------------------------------------------------------------------
# Warn-once epochs
# ----------------------------------------------------------------------
def warn_once(key: str) -> bool:
    """True exactly once per *key* per epoch (the caller should then log).

    Callers must count every occurrence separately (e.g. ``inc(...)``)
    so suppressed repeats remain visible in the metrics.
    """
    with _lock:
        if key in _warned:
            return False
        _warned.add(key)
        return True


def rearm_warning(key: str) -> None:
    """Re-arm one warn-once key without starting a new epoch."""
    with _lock:
        _warned.discard(key)


def reset() -> None:
    """Start a fresh epoch: zero metrics, re-arm warnings, drop spans."""
    global _epoch
    with _lock:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()
        _warned.clear()
        _spans.clear()
        _epoch += 1


# ----------------------------------------------------------------------
# Child-process capture (repro.parallel integration)
# ----------------------------------------------------------------------
def begin_child_capture() -> None:
    """Prepare a pool worker: clean buffers, tracing on.

    Called at the start of every captured job so fork-inherited parent
    state never leaks into the child's payload and spawn-started workers
    (fresh module, tracing off) still record.
    """
    with _lock:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()
        _spans.clear()
    _local.stack = []
    enable_tracing()


def end_child_capture() -> dict[str, Any]:
    """Collect the worker's spans and metric deltas for the parent."""
    with _lock:
        payload = {
            "spans": list(_spans),
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "histograms": {k: dict(v) for k, v in _histograms.items()},
        }
        _spans.clear()
        _counters.clear()
        _gauges.clear()
        _histograms.clear()
    return payload


def merge_payload(payload: dict[str, Any], parent: str | None = None) -> None:
    """Fold a worker payload into this process.

    Child root spans (``parent is None``) are re-parented under *parent*
    (default: the span currently open on the calling thread) so the merged
    trace remains a single tree.
    """
    if parent is None:
        parent = current_span_id()
    with _lock:
        for s in payload.get("spans", ()):
            if parent is not None and s.get("parent") is None:
                s = dict(s)
                s["parent"] = parent
            if _TRACING:
                _spans.append(s)
        for k, v in payload.get("counters", {}).items():
            _counters[k] = _counters.get(k, 0) + v
        for k, v in payload.get("gauges", {}).items():
            _gauges[k] = v
        for k, h in payload.get("histograms", {}).items():
            mine = _histograms.get(k)
            if mine is None:
                _histograms[k] = dict(h)
            else:
                mine["count"] += h["count"]
                mine["total"] += h["total"]
                mine["min"] = min(mine["min"], h["min"])
                mine["max"] = max(mine["max"], h["max"])


# ----------------------------------------------------------------------
# JSONL export / import
# ----------------------------------------------------------------------
def export_trace(path: str | os.PathLike) -> Path:
    """Write the buffered spans plus a metrics snapshot as JSONL.

    One ``{"type": "span", ...}`` line per span (start-time order) and a
    final ``{"type": "metrics", "metrics": {...}}`` line, so a trace file
    is self-contained for ``repro trace summarize``.
    """
    path = Path(path)
    lines = [
        json.dumps({"type": "span", **s}, sort_keys=True)
        for s in trace_spans()
    ]
    lines.append(
        json.dumps(
            {"type": "metrics", "metrics": metrics_snapshot()}, sort_keys=True
        )
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: str | os.PathLike) -> tuple[list[dict], dict]:
    """Read a JSONL trace back as ``(spans, metrics)``."""
    spans: list[dict] = []
    metrics: dict = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "span":
            spans.append({k: v for k, v in record.items() if k != "type"})
        elif record.get("type") == "metrics":
            metrics = record.get("metrics", {})
    return spans, metrics
