"""End-to-end consistency validation of customization results.

Cross-checks the three independent cost/schedulability models the library
maintains:

1. **analysis** — the utilization arithmetic the selection DPs optimize;
2. **simulation** — the discrete-event EDF/RM scheduler;
3. **code generation** — block costs from folding the selected custom
   instructions and re-scheduling the rewritten DFGs.

Used by the ``validate`` CLI command and the tests; returns a structured
report a release pipeline can assert on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.edf_select import select_edf
from repro.enumeration.library import build_candidate_library
from repro.graphs.program import Program
from repro.graphs.rewrite import acyclic_subset, rewrite_block
from repro.rtsched.simulator import simulate
from repro.rtsched.task import TaskSet
from repro.selection.config_curve import build_configuration_curve

__all__ = ["ValidationReport", "validate_task_set", "validate_program_costs"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a consistency validation run.

    Attributes:
        checks: (name, passed, detail) triples.
    """

    checks: tuple[tuple[str, bool, str], ...]

    @property
    def passed(self) -> bool:
        return all(ok for _name, ok, _detail in self.checks)

    def summary(self) -> str:
        lines = []
        for name, ok, detail in self.checks:
            mark = "PASS" if ok else "FAIL"
            lines.append(f"[{mark}] {name}: {detail}")
        return "\n".join(lines)


def validate_task_set(
    task_set: TaskSet, area_budget: float, horizon_periods: float = 20.0
) -> ValidationReport:
    """Check the EDF selection's verdict against the scheduler simulator.

    Periods are floored and costs ceiled to integers for the simulation, so
    the simulated system is strictly harder than the analyzed one: a
    schedulable analysis verdict must survive simulation.
    """
    checks: list[tuple[str, bool, str]] = []
    sel = select_edf(task_set, area_budget)
    checks.append(
        (
            "utilization-arithmetic",
            abs(task_set.utilization_for(sel.assignment) - sel.utilization) < 1e-9,
            f"U = {sel.utilization:.4f}",
        )
    )
    checks.append(
        (
            "area-budget",
            sel.area <= area_budget + 1e-9,
            f"area {sel.area:.1f} <= {area_budget:.1f}",
        )
    )
    tasks = task_set.tasks
    periods = [float(math.floor(t.period)) for t in tasks]
    costs = [
        float(math.ceil(t.configurations[j].cycles))
        for t, j in zip(tasks, sel.assignment)
    ]
    hardened_u = sum(c / p for c, p in zip(costs, periods))
    if sel.schedulable and hardened_u <= 1.0:
        sim = simulate(
            periods,
            costs,
            policy="edf",
            horizon=horizon_periods * max(periods),
        )
        checks.append(
            (
                "edf-simulation",
                sim.schedulable,
                f"simulated {sim.horizon:.0f} time units, "
                f"{len(sim.missed)} deadline misses",
            )
        )
        # Horizon-edge jobs may add up to one job's work per task beyond
        # the steady-state rate.
        edge_slack = sum(costs) / sim.horizon if sim.horizon > 0 else 0.0
        checks.append(
            (
                "simulated-utilization",
                sim.observed_utilization <= hardened_u + edge_slack + 1e-6,
                f"observed {sim.observed_utilization:.4f} <= "
                f"analyzed {hardened_u:.4f} (+edge {edge_slack:.4f})",
            )
        )
    else:
        checks.append(
            (
                "edf-simulation",
                True,
                "skipped (analysis reports unschedulable or rounding "
                "pushed U past 1)",
            )
        )
    return ValidationReport(checks=tuple(checks))


def validate_program_costs(
    program: Program, max_selected: int = 16
) -> ValidationReport:
    """Check curve arithmetic against folded-DFG code generation.

    The configuration curve predicts block costs by subtracting candidate
    gains; folding the same candidates into super-nodes and re-scheduling
    must give identical single-issue block costs.
    """
    checks: list[tuple[str, bool, str]] = []
    library = build_candidate_library(program)
    curve = build_configuration_curve(program, library.candidates)
    point = curve[-1]
    selected = list(point.selected)[:max_selected]
    by_block: dict[int, list[int]] = {}
    for i in selected:
        by_block.setdefault(library.candidates[i].block_index, []).append(i)
    blocks = program.basic_blocks
    consistent = True
    detail_parts = []
    for block_idx, cand_ids in by_block.items():
        dfg = blocks[block_idx].dfg
        groups = acyclic_subset(
            dfg, [library.candidates[i].nodes for i in cand_ids]
        )
        kept = [
            i
            for i in cand_ids
            if library.candidates[i].nodes in set(groups)
        ]
        rb = rewrite_block(dfg, groups)
        predicted = dfg.sw_cycles() - sum(
            library.candidates[i].gain_per_exec for i in kept
        )
        actual = rb.sequential_cycles()
        if actual != predicted:
            consistent = False
        detail_parts.append(f"block {block_idx}: {actual} vs {predicted}")
    checks.append(
        (
            "codegen-vs-curve",
            consistent,
            "; ".join(detail_parts) if detail_parts else "no candidates selected",
        )
    )
    checks.append(
        (
            "curve-monotone",
            all(
                b.cycles < a.cycles and b.area > a.area
                for a, b in zip(curve, curve[1:])
            ),
            f"{len(curve)} points",
        )
    )
    return ValidationReport(checks=tuple(checks))
