"""Core contribution: custom-instruction selection for real-time task sets
(thesis Chapter 3 / the DATE 2007 paper)."""

from repro.core.edf_select import EdfSelection, select_edf
from repro.core.flow import (
    CustomizationResult,
    build_task,
    build_tasks,
    build_task_set,
    customize,
)
from repro.core.mpsoc import MpsocResult, customize_mpsoc, partition_tasks_worst_fit
from repro.core.rms_select import RmsSelection, select_rms

__all__ = [
    "MpsocResult",
    "customize_mpsoc",
    "partition_tasks_worst_fit",
    "EdfSelection",
    "select_edf",
    "CustomizationResult",
    "build_task",
    "build_tasks",
    "build_task_set",
    "customize",
    "RmsSelection",
    "select_rms",
]
