"""End-to-end customization flow for multi-tasking real-time systems.

Implements the design flow of thesis Figure 1.3:

1. identify custom-instruction candidates per constituent task;
2. build each task's (area, cycles) configuration curve;
3. select configurations across tasks under the area and real-time
   constraints (EDF dynamic program or RMS branch and bound);
4. optionally validate the resulting assignment with the discrete-event
   scheduler simulator and estimate energy savings via voltage scaling.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.edf_select import EdfSelection, select_edf
from repro.core.rms_select import RmsSelection, select_rms
from repro.enumeration.library import build_candidate_library
from repro.errors import ScheduleError
from repro.graphs.program import Program
from repro.parallel import parallel_map
from repro.rtsched.task import PeriodicTask, TaskSet, scale_periods_for_utilization
from repro.selection.config_curve import (
    build_configuration_curve,
    downsample_curve,
)

__all__ = [
    "CustomizationResult",
    "build_task",
    "build_tasks",
    "build_task_set",
    "customize",
]


@dataclass(frozen=True)
class CustomizationResult:
    """Outcome of the multi-task customization flow.

    Attributes:
        policy: ``"edf"`` or ``"rms"``.
        utilization_before: software-only utilization.
        utilization_after: utilization with the selected customization
            (``inf`` if RMS found no schedulable assignment).
        assignment: chosen configuration index per task, or None.
        area: consumed CFU area.
        area_budget: the budget the selection ran under.
        single_fault_robust: True/False when the degraded-mode check ran
            (``customize(check_single_fault=True)``): does the assignment
            stay schedulable if any single CFU fails?  None when the check
            was not requested or no assignment exists.
    """

    policy: str
    utilization_before: float
    utilization_after: float
    assignment: tuple[int, ...] | None
    area: float
    area_budget: float
    single_fault_robust: bool | None = None

    @property
    def schedulable(self) -> bool:
        return self.assignment is not None and self.utilization_after <= 1.0 + 1e-9

    @property
    def utilization_reduction_pct(self) -> float:
        if self.assignment is None or self.utilization_before <= 0:
            return 0.0
        return 100.0 * (1.0 - self.utilization_after / self.utilization_before)


def build_task(
    program: Program,
    period: float | None = None,
    objective: str = "avg",
    max_inputs: int = 4,
    max_outputs: int = 2,
    curve_steps: int = 12,
    method: str = "greedy",
    max_configs: int = 24,
    engine: str = "bitset",
    use_cache: bool = True,
) -> PeriodicTask:
    """Build a :class:`PeriodicTask` with a configuration curve from a program.

    Args:
        program: the task's program model.
        period: task period; defaults to twice the software cost (caller
            usually rescales periods afterwards for a target utilization).
        objective: ``"avg"`` or ``"wcet"`` task cost measure.
        max_inputs / max_outputs: register-port constraints.
        curve_steps: number of area budgets explored for the curve.
        method: candidate-selection method for the curve.
        engine: candidate-enumeration engine (``"bitset"`` or
            ``"reference"``).
        use_cache: memoize the identification artifacts (candidate library
            and configuration curve) through :mod:`repro.cache`.
    """
    with obs.span("identify", task=program.name) as sp:
        library = build_candidate_library(
            program,
            max_inputs=max_inputs,
            max_outputs=max_outputs,
            engine=engine,
            use_cache=use_cache,
        )
        sp.set(candidates=len(library.candidates))
    with obs.span("curves", task=program.name) as sp:
        curve = build_configuration_curve(
            program,
            library.candidates,
            steps=curve_steps,
            objective=objective,
            method=method,
            use_cache=use_cache,
        )
        curve = downsample_curve(curve, max_configs)
        sp.set(configurations=len(curve))
    wcet = curve[0].cycles
    return PeriodicTask(
        name=program.name,
        period=period if period is not None else 2.0 * wcet,
        wcet=wcet,
        configurations=tuple(curve),
    )


def _build_task_job(args: tuple[Program, dict]) -> PeriodicTask:
    """Module-level worker so :func:`build_tasks` jobs can be pickled."""
    program, kwargs = args
    return build_task(program, **kwargs)


def build_tasks(
    programs: Sequence[Program],
    workers: int | None = None,
    **task_kwargs,
) -> list[PeriodicTask]:
    """Build one :class:`PeriodicTask` per program, optionally in parallel.

    Args:
        programs: the task programs.
        workers: when > 1, fan the per-task identification+curve work out
            over a :class:`~concurrent.futures.ProcessPoolExecutor` with
            that many processes (default: serial).  Results are returned in
            program order either way; if the pool cannot be created (e.g.
            a sandbox without process support) the build falls back to
            serial and logs a one-shot warning naming the exception (see
            :func:`repro.parallel.parallel_map`).
        **task_kwargs: forwarded to :func:`build_task`.
    """
    jobs = [(p, task_kwargs) for p in programs]
    with obs.span("identify.batch", tasks=len(jobs), workers=workers or 0):
        return parallel_map(_build_task_job, jobs, workers, label="task builds")


def build_task_set(
    programs: Sequence[Program],
    target_utilization: float,
    name: str = "",
    objective: str = "avg",
    workers: int | None = None,
    **task_kwargs,
) -> TaskSet:
    """Build a task set from programs with periods scaled to a utilization.

    Pass ``workers=N`` to build the per-task libraries and curves in N
    parallel processes (see :func:`build_tasks`).
    """
    tasks = build_tasks(programs, workers=workers, objective=objective, **task_kwargs)
    return scale_periods_for_utilization(tasks, target_utilization, name=name)


def customize(
    task_set: TaskSet,
    area_budget: float,
    policy: str = "edf",
    check_single_fault: bool = False,
) -> CustomizationResult:
    """Run the inter-task selection stage on a prepared task set.

    Args:
        task_set: tasks with configuration curves attached.
        area_budget: total CFU area available.
        policy: ``"edf"`` (Algorithm 1) or ``"rms"`` (Algorithm 2).
        check_single_fault: additionally run the degraded-mode analysis of
            :mod:`repro.faults.degraded` on the selected assignment and
            record whether it survives any single CFU failure.

    Returns:
        A :class:`CustomizationResult`.
    """
    u_before = task_set.utilization
    with obs.span("select", policy=policy, tasks=len(task_set)):
        if policy == "edf":
            sel: EdfSelection | RmsSelection = select_edf(task_set, area_budget)
            area = sel.area
        elif policy == "rms":
            sel = select_rms(task_set, area_budget)
            area = sel.area if sel.assignment is not None else 0.0
        else:
            raise ScheduleError(f"unknown policy {policy!r}; use 'edf' or 'rms'")
    robust: bool | None = None
    if check_single_fault and sel.assignment is not None:
        # Imported lazily: repro.faults composes over this module.
        from repro.faults.degraded import single_fault_report

        with obs.span("validate", kind="single_fault", policy=policy):
            robust = single_fault_report(task_set, sel.assignment, policy).robust
    return CustomizationResult(
        policy=policy,
        utilization_before=u_before,
        utilization_after=sel.utilization,
        assignment=sel.assignment,
        area=area,
        area_budget=area_budget,
        single_fault_robust=robust,
    )
