"""Optimal custom-instruction selection under RMS (thesis Algorithm 2).

Branch-and-bound over per-task configuration choices:

* tasks are explored in decreasing priority (increasing period) order, so a
  partial solution only ever needs the schedulability check ``L_i <= 1`` of
  the newly configured task (higher-priority tasks cannot be disturbed by a
  lower-priority one);
* at each task the configurations are tried in increasing execution time,
  which reaches a good incumbent quickly;
* a subtree is pruned when (a) its area is exhausted, (b) the new task
  misses its deadline, or (c) the utilization lower bound — current partial
  utilization plus every remaining task at its best configuration — cannot
  beat the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import cache, obs
from repro.errors import ScheduleError
from repro.rtsched.rms import rms_points, rms_task_load
from repro.rtsched.task import TaskSet

__all__ = ["RmsSelection", "select_rms"]

EPS = 1e-9


@dataclass(frozen=True)
class RmsSelection:
    """Result of the RMS branch-and-bound search.

    Attributes:
        utilization: minimum utilization over schedulable assignments, or
            ``inf`` when no assignment is schedulable under the budget.
        assignment: chosen configuration per task (priority order of the
            *input* task set), or None when unschedulable.
        area: total area of the assignment (0 when unschedulable).
        nodes_visited: size of the explored search tree (for reporting).
    """

    utilization: float
    assignment: tuple[int, ...] | None
    area: float
    nodes_visited: int = 0

    @property
    def schedulable(self) -> bool:
        return self.assignment is not None


def select_rms(
    task_set: TaskSet,
    area_budget: float,
    engine: str = "fast",
    use_cache: bool = True,
) -> RmsSelection:
    """Select per-task configurations minimizing utilization under RMS.

    Args:
        task_set: tasks with configuration curves.
        area_budget: total CFU area constraint.
        engine: ``"fast"`` (default) precomputes the schedulability-point
            sets ``S_{i-1}(P_i)`` — they depend only on the periods — and
            evaluates each node's exact test as one vectorized demand
            product; ``"reference"`` calls the recursive scalar
            :func:`rms_task_load` at every node.  Both explore the
            identical search tree (same ``nodes_visited``) and return the
            identical assignment.
        use_cache: memoize the result behind a content key (task-set digest
            + budget) in :mod:`repro.cache`.

    Returns:
        The optimal :class:`RmsSelection` (exact; schedulability is checked
        with the exact RMS test of Theorem 1).
    """
    if area_budget < 0:
        raise ScheduleError("area budget must be non-negative")
    if engine not in ("fast", "reference"):
        raise ScheduleError(f"unknown engine {engine!r}; use 'fast' or 'reference'")
    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.taskset_digest(task_set),
            kind="select_rms",
            budget=area_budget,
            engine=engine,
        )
        cached = cache.fetch_selection(key)
        if cached is not None:
            return RmsSelection(
                utilization=(
                    float("inf")
                    if cached["utilization"] is None
                    else cached["utilization"]
                ),
                assignment=(
                    None
                    if cached["assignment"] is None
                    else tuple(cached["assignment"])
                ),
                area=cached["area"],
                nodes_visited=cached["nodes_visited"],
            )
    # Priority order: increasing period.
    order = sorted(range(len(task_set)), key=lambda i: task_set[i].period)
    tasks = [task_set[i] for i in order]
    n = len(tasks)
    periods = [t.period for t in tasks]

    # Fast engine: the point sets S_{i-1}(P_i) depend only on the periods,
    # so hoist them out of the search.  L_i is then min over points t of
    # ceil(t/P_j - EPS) C_j summed for j <= i — one precomputed ceil matrix
    # row-dotted with the chosen costs (numpy sums short rows sequentially,
    # so the floats match the scalar loop exactly; the min over a point
    # *set* is order-independent).
    load_tables: list[tuple[np.ndarray, np.ndarray]] = []
    if engine == "fast":
        for i in range(n):
            pts = np.asarray(
                [t for t in rms_points(periods, i, periods[i]) if t > EPS]
            )
            ceils = np.ceil(
                pts[:, None] / np.asarray(periods[: i + 1])[None, :] - EPS
            )
            load_tables.append((pts, ceils))

    # Per task: configurations sorted by increasing execution time, and the
    # minimum achievable utilization (for the lower bound).
    sorted_cfgs: list[list[tuple[int, float, float]]] = []
    best_util_suffix = [0.0] * (n + 1)
    for t in tasks:
        cfgs = sorted(
            ((j, c.cycles, c.area) for j, c in enumerate(t.configurations)),
            key=lambda x: x[1],
        )
        sorted_cfgs.append(cfgs)
    for i in range(n - 1, -1, -1):
        best_cycle = min(c for _, c, _ in sorted_cfgs[i])
        best_util_suffix[i] = best_util_suffix[i + 1] + best_cycle / periods[i]

    incumbent_util = float("inf")
    incumbent: list[int] | None = None
    costs = [0.0] * n  # chosen execution times along the current path
    costs_arr = np.zeros(n)
    path = [0] * n
    visited = 0

    def task_load(i: int) -> float:
        if engine == "fast":
            pts, ceils = load_tables[i]
            demands = (ceils * costs_arr[: i + 1]).sum(axis=1)
            return float((demands / pts).min())
        return rms_task_load(periods, costs, i)

    def search(i: int, util: float, area_left: float) -> None:
        nonlocal incumbent_util, incumbent, visited
        visited += 1
        for j, cycles, area in sorted_cfgs[i]:
            if area > area_left + EPS:
                continue
            costs[i] = cycles
            costs_arr[i] = cycles
            # Exact schedulability of task i given higher-priority choices.
            if task_load(i) > 1.0 + EPS:
                # Configurations are in increasing execution time: if the
                # fastest remaining ones fail, slower ones fail too - but
                # the list is sorted ascending, so later entries are slower;
                # prune the rest.
                break
            new_util = util + cycles / periods[i]
            if i == n - 1:
                if new_util < incumbent_util - EPS:
                    incumbent_util = new_util
                    path[i] = j
                    incumbent = list(path)
                continue
            if new_util + best_util_suffix[i + 1] >= incumbent_util - EPS:
                continue
            path[i] = j
            search(i + 1, new_util, area_left - area)
        costs[i] = 0.0
        costs_arr[i] = 0.0

    with obs.span("select.rms", tasks=n, engine=engine):
        search(0, 0.0, area_budget)
    obs.inc("selection.rms.nodes_visited", visited)

    if incumbent is None:
        result = RmsSelection(
            utilization=float("inf"), assignment=None, area=0.0, nodes_visited=visited
        )
    else:
        # Map the priority-ordered assignment back to the input task order.
        assignment = [0] * n
        for pos, orig in enumerate(order):
            assignment[orig] = incumbent[pos]
        util = task_set.utilization_for(assignment)
        area = task_set.area_for(assignment)
        result = RmsSelection(
            utilization=util,
            assignment=tuple(assignment),
            area=area,
            nodes_visited=visited,
        )
    if key is not None:
        cache.store_selection(
            key,
            {
                "utilization": (
                    None if incumbent is None else result.utilization
                ),
                "assignment": (
                    None if result.assignment is None else list(result.assignment)
                ),
                "area": result.area,
                "nodes_visited": result.nodes_visited,
            },
        )
    return result
