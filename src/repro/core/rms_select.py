"""Optimal custom-instruction selection under RMS (thesis Algorithm 2).

Branch-and-bound over per-task configuration choices:

* tasks are explored in decreasing priority (increasing period) order, so a
  partial solution only ever needs the schedulability check ``L_i <= 1`` of
  the newly configured task (higher-priority tasks cannot be disturbed by a
  lower-priority one);
* at each task the configurations are tried in increasing execution time,
  which reaches a good incumbent quickly;
* a subtree is pruned when (a) its area is exhausted, (b) the new task
  misses its deadline, or (c) the utilization lower bound — current partial
  utilization plus every remaining task at its best configuration — cannot
  beat the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.rtsched.rms import rms_task_load
from repro.rtsched.task import TaskSet

__all__ = ["RmsSelection", "select_rms"]

EPS = 1e-9


@dataclass(frozen=True)
class RmsSelection:
    """Result of the RMS branch-and-bound search.

    Attributes:
        utilization: minimum utilization over schedulable assignments, or
            ``inf`` when no assignment is schedulable under the budget.
        assignment: chosen configuration per task (priority order of the
            *input* task set), or None when unschedulable.
        area: total area of the assignment (0 when unschedulable).
        nodes_visited: size of the explored search tree (for reporting).
    """

    utilization: float
    assignment: tuple[int, ...] | None
    area: float
    nodes_visited: int = 0

    @property
    def schedulable(self) -> bool:
        return self.assignment is not None


def select_rms(task_set: TaskSet, area_budget: float) -> RmsSelection:
    """Select per-task configurations minimizing utilization under RMS.

    Args:
        task_set: tasks with configuration curves.
        area_budget: total CFU area constraint.

    Returns:
        The optimal :class:`RmsSelection` (exact; schedulability is checked
        with the exact RMS test of Theorem 1).
    """
    if area_budget < 0:
        raise ScheduleError("area budget must be non-negative")
    # Priority order: increasing period.
    order = sorted(range(len(task_set)), key=lambda i: task_set[i].period)
    tasks = [task_set[i] for i in order]
    n = len(tasks)
    periods = [t.period for t in tasks]

    # Per task: configurations sorted by increasing execution time, and the
    # minimum achievable utilization (for the lower bound).
    sorted_cfgs: list[list[tuple[int, float, float]]] = []
    best_util_suffix = [0.0] * (n + 1)
    for t in tasks:
        cfgs = sorted(
            ((j, c.cycles, c.area) for j, c in enumerate(t.configurations)),
            key=lambda x: x[1],
        )
        sorted_cfgs.append(cfgs)
    for i in range(n - 1, -1, -1):
        best_cycle = min(c for _, c, _ in sorted_cfgs[i])
        best_util_suffix[i] = best_util_suffix[i + 1] + best_cycle / periods[i]

    incumbent_util = float("inf")
    incumbent: list[int] | None = None
    costs = [0.0] * n  # chosen execution times along the current path
    path = [0] * n
    visited = 0

    def search(i: int, util: float, area_left: float) -> None:
        nonlocal incumbent_util, incumbent, visited
        visited += 1
        for j, cycles, area in sorted_cfgs[i]:
            if area > area_left + EPS:
                continue
            costs[i] = cycles
            # Exact schedulability of task i given higher-priority choices.
            if rms_task_load(periods, costs, i) > 1.0 + EPS:
                # Configurations are in increasing execution time: if the
                # fastest remaining ones fail, slower ones fail too - but
                # the list is sorted ascending, so later entries are slower;
                # prune the rest.
                break
            new_util = util + cycles / periods[i]
            if i == n - 1:
                if new_util < incumbent_util - EPS:
                    incumbent_util = new_util
                    path[i] = j
                    incumbent = list(path)
                continue
            if new_util + best_util_suffix[i + 1] >= incumbent_util - EPS:
                continue
            path[i] = j
            search(i + 1, new_util, area_left - area)
        costs[i] = 0.0

    search(0, 0.0, area_budget)

    if incumbent is None:
        return RmsSelection(
            utilization=float("inf"), assignment=None, area=0.0, nodes_visited=visited
        )
    # Map the priority-ordered assignment back to the input task order.
    assignment = [0] * n
    for pos, orig in enumerate(order):
        assignment[orig] = incumbent[pos]
    util = task_set.utilization_for(assignment)
    area = task_set.area_for(assignment)
    return RmsSelection(
        utilization=util,
        assignment=tuple(assignment),
        area=area,
        nodes_visited=visited,
    )
