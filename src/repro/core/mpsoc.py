"""Customization for multiprocessor SoCs (extension of thesis Section 2.4).

The thesis leaves MPSoC customization to related work [91, 53]; this module
extends the Chapter 3 machinery to ``M`` identical processors sharing a
global CFU-area budget:

1. **task partitioning** — worst-fit decreasing by software utilization
   (the classic partitioned-EDF heuristic);
2. **per-processor curves** — for each processor, the Chapter 3 EDF DP
   gives minimum utilization as a function of the local area budget;
3. **budget allocation** — a min-max DP distributes the global area so the
   *maximum* processor utilization is minimized (the schedulability
   bottleneck under partitioned EDF).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.edf_select import select_edf
from repro.errors import ScheduleError
from repro.rtsched.task import PeriodicTask, TaskSet

__all__ = ["MpsocResult", "partition_tasks_worst_fit", "customize_mpsoc"]


@dataclass(frozen=True)
class MpsocResult:
    """Outcome of MPSoC customization.

    Attributes:
        processor_tasks: task names per processor.
        budgets: area budget allocated to each processor.
        utilizations: post-customization utilization per processor.
        assignments: per-processor configuration assignment.
    """

    processor_tasks: tuple[tuple[str, ...], ...]
    budgets: tuple[float, ...]
    utilizations: tuple[float, ...]
    assignments: tuple[tuple[int, ...], ...]

    @property
    def max_utilization(self) -> float:
        return max(self.utilizations)

    @property
    def schedulable(self) -> bool:
        return self.max_utilization <= 1.0 + 1e-9


def partition_tasks_worst_fit(
    tasks: Sequence[PeriodicTask], n_processors: int
) -> list[list[PeriodicTask]]:
    """Worst-fit decreasing partitioning by software utilization."""
    if n_processors < 1:
        raise ScheduleError("need at least one processor")
    bins: list[list[PeriodicTask]] = [[] for _ in range(n_processors)]
    loads = [0.0] * n_processors
    for task in sorted(tasks, key=lambda t: -t.utilization):
        target = min(range(n_processors), key=lambda i: loads[i])
        bins[target].append(task)
        loads[target] += task.utilization
    return bins


def customize_mpsoc(
    tasks: Sequence[PeriodicTask],
    n_processors: int,
    total_area: float,
    allocation_steps: int = 20,
) -> MpsocResult:
    """Customize a partitioned-EDF MPSoC under a global area budget.

    Args:
        tasks: tasks with configuration curves.
        n_processors: number of identical processors.
        total_area: global CFU-area budget shared across processors.
        allocation_steps: granularity of the budget-allocation grid.

    Returns:
        An :class:`MpsocResult` with the min-max-utilization allocation.
    """
    if total_area < 0:
        raise ScheduleError("total area must be non-negative")
    bins = partition_tasks_worst_fit(tasks, n_processors)
    task_sets = [
        TaskSet(b, name=f"cpu{i}") if b else None for i, b in enumerate(bins)
    ]
    step = total_area / allocation_steps if allocation_steps > 0 else 0.0

    # Per-processor utilization curve over the budget grid.
    grid = [step * k for k in range(allocation_steps + 1)]
    curves: list[list[float]] = []
    assignments: list[list[tuple[int, ...]]] = []
    for ts in task_sets:
        if ts is None:
            curves.append([0.0] * (allocation_steps + 1))
            assignments.append([()] * (allocation_steps + 1))
            continue
        row: list[float] = []
        row_assign: list[tuple[int, ...]] = []
        for budget in grid:
            sel = select_edf(ts, budget)
            row.append(sel.utilization)
            row_assign.append(sel.assignment)
        curves.append(row)
        assignments.append(row_assign)

    # Min-max DP over budget allocation: f_i(b) = min_x max(U_i(x), f_{i-1}(b-x)).
    inf = float("inf")
    f = [curves[0][b] for b in range(allocation_steps + 1)]
    picks: list[list[int]] = [[b for b in range(allocation_steps + 1)]]
    for i in range(1, n_processors):
        new = [inf] * (allocation_steps + 1)
        pick = [0] * (allocation_steps + 1)
        for b in range(allocation_steps + 1):
            for x in range(b + 1):
                val = max(curves[i][x], f[b - x])
                if val < new[b] - 1e-15:
                    new[b] = val
                    pick[b] = x
        f = new
        picks.append(pick)

    # Backtrack the allocation.
    alloc = [0] * n_processors
    b = allocation_steps
    for i in range(n_processors - 1, 0, -1):
        alloc[i] = picks[i][b]
        b -= alloc[i]
    alloc[0] = b

    budgets = tuple(grid[a] for a in alloc)
    utilizations = tuple(curves[i][alloc[i]] for i in range(n_processors))
    chosen = tuple(assignments[i][alloc[i]] for i in range(n_processors))
    names = tuple(tuple(t.name for t in b) for b in bins)
    return MpsocResult(
        processor_tasks=names,
        budgets=budgets,
        utilizations=utilizations,
        assignments=chosen,
    )
