"""Optimal custom-instruction selection under EDF (thesis Algorithm 1).

Pseudo-polynomial dynamic program over a quantized area axis.  Let
``U_i(A)`` be the minimum total utilization of tasks ``T_1 .. T_i`` under an
area budget ``A``::

    U_i(A) = min_{j : area_{i,j} <= A} ( cycle_{i,j} / P_i + U_{i-1}(A - area_{i,j}) )

The step ``delta`` is the greatest common divisor of every configuration
area and of the budget (Algorithm 1); when that would make the table larger
than ``max_steps`` the step is coarsened, with configuration areas rounded
*up* so the budget is never exceeded.  Complexity
``O(N x AREA/delta x max_i n_i)``; the inner loop is vectorized.  Because
EDF schedulability is exactly ``U <= 1``, minimizing utilization by
definition works toward meeting all deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

import numpy as np

from repro import cache, obs
from repro.errors import ScheduleError
from repro.rtsched.task import TaskSet

__all__ = ["EdfSelection", "select_edf"]


@dataclass(frozen=True)
class EdfSelection:
    """Result of the EDF selection DP.

    Attributes:
        utilization: minimum achievable total utilization under the budget.
        assignment: chosen configuration index per task.
        area: total area consumed by the assignment.
    """

    utilization: float
    assignment: tuple[int, ...]
    area: float

    @property
    def schedulable(self) -> bool:
        return self.utilization <= 1.0 + 1e-9


def _quantum(areas: list[float], budget: float, scale: int, max_steps: int) -> int:
    ints = [round(v * scale) for v in areas if v > 0]
    ints.append(max(1, round(budget * scale)))
    g = 0
    for v in ints:
        g = gcd(g, v)
    g = max(1, g)
    cap_scaled = int(round(budget * scale))
    if cap_scaled // g > max_steps:
        g = -(-cap_scaled // max_steps)  # ceil division
    return g


def select_edf(
    task_set: TaskSet,
    area_budget: float,
    scale: int = 100,
    max_steps: int = 4000,
    engine: str = "vector",
    use_cache: bool = True,
) -> EdfSelection:
    """Select per-task configurations minimizing utilization under EDF.

    Args:
        task_set: tasks with configuration curves.
        area_budget: total CFU area constraint ``AREA``.
        scale: fixed-point scale used to quantize fractional areas.
        max_steps: upper bound on the DP table width (coarser quantization
            is used beyond it; areas round up, so the budget holds).
        engine: ``"vector"`` (default) stacks all candidate rows of a task
            and takes one argmin; ``"reference"`` runs the original
            per-configuration masked-update loop.  Results are identical:
            the float additions match and argmin's first-occurrence rule
            reproduces the strict-less update's earliest-index tie-break.
        use_cache: memoize the result behind a content key (task-set digest
            + budget + quantization parameters) in :mod:`repro.cache`.

    Returns:
        The optimal (up to area quantization) :class:`EdfSelection`.

    Raises:
        ScheduleError: if the budget is negative.
    """
    if area_budget < 0:
        raise ScheduleError("area budget must be non-negative")
    if engine not in ("vector", "reference"):
        raise ScheduleError(f"unknown engine {engine!r}; use 'vector' or 'reference'")
    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.taskset_digest(task_set),
            kind="select_edf",
            budget=area_budget,
            scale=scale,
            max_steps=max_steps,
            engine=engine,
        )
        cached = cache.fetch_selection(key)
        if cached is not None:
            return EdfSelection(
                utilization=cached["utilization"],
                assignment=tuple(cached["assignment"]),
                area=cached["area"],
            )
    with obs.span("select.edf", tasks=len(task_set), engine=engine):
        return _select_edf_dp(
            task_set, area_budget, scale, max_steps, engine, key
        )


def _select_edf_dp(
    task_set: TaskSet,
    area_budget: float,
    scale: int,
    max_steps: int,
    engine: str,
    key: str | None,
) -> EdfSelection:
    """The DP proper (split out so the span covers exactly the solve)."""
    tasks = task_set.tasks
    all_areas = [c.area for t in tasks for c in t.configurations]
    q = _quantum(all_areas, max(area_budget, 1e-9), scale, max_steps)
    cap = int(round(area_budget * scale)) // q
    obs.inc("selection.edf.dp_cells", (cap + 1) * len(tasks))

    def steps(a: float) -> int:
        # Round *up* so quantization never understates consumed area.
        return -(-round(a * scale) // q)

    inf = float("inf")
    best = np.zeros(cap + 1)
    picks: list[np.ndarray] = []
    for task in tasks:
        feasible = [
            (j, steps(cfg.area), cfg.cycles / task.period)
            for j, cfg in enumerate(task.configurations)
            if steps(cfg.area) <= cap
        ]
        if not feasible:
            raise ScheduleError(
                f"task {task.name!r} has no configuration fitting the budget"
            )
        if engine == "vector":
            rows = np.full((len(feasible), cap + 1), inf)
            for row, (_j, w, u) in enumerate(feasible):
                rows[row, w:] = best[: cap + 1 - w] + u
            winners = rows.argmin(axis=0)  # first occurrence = smallest j
            new = rows[winners, np.arange(cap + 1)]
            pick = np.asarray([j for j, _w, _u in feasible], dtype=np.int32)[
                winners
            ]
        else:
            new = np.full(cap + 1, inf)
            pick = np.zeros(cap + 1, dtype=np.int32)
            for j, w, u in feasible:
                cand = np.full(cap + 1, inf)
                cand[w:] = best[: cap + 1 - w] + u
                better = cand < new
                new[better] = cand[better]
                pick[better] = j
        best = new
        picks.append(pick)

    a = int(np.argmin(best))  # ties resolve to the smallest area index
    assignment = [0] * len(tasks)
    for i in range(len(tasks) - 1, -1, -1):
        j = int(picks[i][a])
        assignment[i] = j
        a -= steps(tasks[i].configurations[j].area)
    util = task_set.utilization_for(assignment)
    area = task_set.area_for(assignment)
    result = EdfSelection(utilization=util, assignment=tuple(assignment), area=area)
    if key is not None:
        cache.store_selection(
            key,
            {
                "utilization": result.utilization,
                "assignment": list(result.assignment),
                "area": result.area,
            },
        )
    return result
