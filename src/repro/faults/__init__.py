"""Fault injection and degraded-mode schedulability analysis.

The customization flow guarantees every task meets its deadline *assuming*
the CFU works, jobs respect their customized WCET, and reconfiguration is
punctual.  This package stress-tests that guarantee:

* :mod:`repro.faults.model` — a declarative, seeded :class:`FaultModel`
  describing CFU-unavailable faults, WCET overruns and reconfiguration
  jitter, plus the containment policies the runtime can apply;
* :mod:`repro.faults.degraded` — analytic degraded-mode schedulability:
  does the selected configuration survive any single CFU failure?  Cross
  validated against the fault-injecting simulator;
* :mod:`repro.faults.sweep` — scenario sweeps over the thesis workloads
  producing the ``BENCH_faults.json``-style robustness report behind the
  ``repro faults`` CLI subcommand.

Invariant: injecting an *empty* fault model is bit-identical to not
injecting at all (asserted by ``tests/test_faults.py``).
"""

from repro.faults.degraded import (
    DegradedReport,
    DegradedVerdict,
    cross_validate_single_fault,
    degraded_costs,
    degraded_schedulable,
    single_fault_report,
)
from repro.faults.model import (
    CONTAINMENT_POLICIES,
    FaultModel,
    JobFault,
)
from repro.faults.sweep import (
    FaultScenario,
    default_scenarios,
    format_fault_report,
    sweep_faults,
)

__all__ = [
    "CONTAINMENT_POLICIES",
    "DegradedReport",
    "DegradedVerdict",
    "FaultModel",
    "FaultScenario",
    "JobFault",
    "cross_validate_single_fault",
    "default_scenarios",
    "degraded_costs",
    "degraded_schedulable",
    "format_fault_report",
    "single_fault_report",
    "sweep_faults",
]
