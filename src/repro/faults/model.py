"""Declarative, seeded fault model for the scheduling runtime.

A :class:`FaultModel` describes *which* adverse events hit a task set and
*how hard*, without prescribing what the scheduler does about them — that
is the containment policy's job (``abort-job`` / ``run-to-completion`` /
``fallback-to-base``, applied by :mod:`repro.rtsched.simulator`).

Three fault classes from thesis Chapters 3 and 7 are modeled:

* **CFU-unavailable** (``cfu_failed``): the custom functional unit backing a
  task's selected configuration is faulted out, so its jobs execute on the
  base ISA at the software cost (configuration 0 of the task's curve).
* **WCET overrun** (``overrun_prob`` / ``overrun_frac``): a job runs a
  fraction past its analyzed budget — a mis-characterized custom
  instruction, a cache outlier, an input outside the profiling set.
* **Reconfiguration jitter** (``jitter_frac``): the reconfiguration
  controller hands the CFU over late, delaying the job by up to that
  fraction of its budget.

Determinism: every per-job draw is a pure function of ``(seed, task,
job_index)`` through BLAKE2b, so a scenario replays identically across
runs, platforms and engines — a prerequisite for differential testing of
the two simulator engines under injection.

The **empty model** (no failed CFUs, zero overrun and jitter) is inert by
construction: :meth:`FaultModel.job_fault` returns the nominal cost object
untouched, so injected simulation is bit-identical to plain simulation.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import FaultError

__all__ = ["CONTAINMENT_POLICIES", "FaultModel", "JobFault"]

#: Containment policies understood by the simulator (see
#: :func:`repro.rtsched.simulator.simulate`).
CONTAINMENT_POLICIES = ("run-to-completion", "abort-job", "fallback-to-base")


@dataclass(frozen=True)
class JobFault:
    """Resolved fault effect on one job.

    Attributes:
        demand: processor time the job tries to consume (before any
            containment cap).
        budget: the cost schedulability analysis charged for this job — the
            nominal assignment cost, or the base-ISA cost when the task's
            CFU is failed (the analysis of the degraded mode).
        cfu_failed: the job ran on the base ISA because its CFU is out.
        overrun: the job drew a WCET overrun.
        jitter: reconfiguration delay added to the demand (0.0 if none).
    """

    demand: float
    budget: float
    cfu_failed: bool = False
    overrun: bool = False
    jitter: float = 0.0

    @property
    def faulted(self) -> bool:
        return self.cfu_failed or self.overrun or self.jitter > 0.0


@dataclass(frozen=True)
class FaultModel:
    """A seeded, declarative description of injected faults.

    Attributes:
        seed: root of every per-job pseudo-random draw.
        cfu_failed: task indices whose CFU is unavailable for the whole
            horizon; their jobs execute at the base-ISA cost.
        overrun_prob: probability (per job) of a WCET overrun.
        overrun_frac: an overrunning job demands ``(1 + frac) x`` budget.
        overrun_tasks: restrict overruns to these task indices (``None``
            means every task is eligible).
        jitter_frac: reconfiguration jitter; each affected job is delayed
            by ``u x frac x budget`` with ``u`` drawn uniformly in [0, 1).
        jitter_prob: probability (per job) that jitter strikes.
    """

    seed: int = 0
    cfu_failed: frozenset[int] = field(default_factory=frozenset)
    overrun_prob: float = 0.0
    overrun_frac: float = 0.0
    overrun_tasks: frozenset[int] | None = None
    jitter_frac: float = 0.0
    jitter_prob: float = 1.0

    def __post_init__(self) -> None:
        # Normalize iterables so callers can pass plain sets/lists.
        if not isinstance(self.cfu_failed, frozenset):
            object.__setattr__(self, "cfu_failed", frozenset(self.cfu_failed))
        if self.overrun_tasks is not None and not isinstance(
            self.overrun_tasks, frozenset
        ):
            object.__setattr__(
                self, "overrun_tasks", frozenset(self.overrun_tasks)
            )
        if not 0.0 <= self.overrun_prob <= 1.0:
            raise FaultError("overrun_prob must lie in [0, 1]")
        if not 0.0 <= self.jitter_prob <= 1.0:
            raise FaultError("jitter_prob must lie in [0, 1]")
        if self.overrun_frac < 0.0:
            raise FaultError("overrun_frac must be non-negative")
        if self.jitter_frac < 0.0:
            raise FaultError("jitter_frac must be non-negative")
        if any(t < 0 for t in self.cfu_failed):
            raise FaultError("cfu_failed task indices must be non-negative")

    @property
    def empty(self) -> bool:
        """True if the model injects nothing (inert by construction)."""
        return (
            not self.cfu_failed
            and (self.overrun_prob == 0.0 or self.overrun_frac == 0.0)
            and (self.jitter_prob == 0.0 or self.jitter_frac == 0.0)
        )

    def with_cfu_failed(self, tasks: Iterable[int]) -> "FaultModel":
        """A copy of this model with *tasks*' CFUs failed out."""
        return FaultModel(
            seed=self.seed,
            cfu_failed=frozenset(tasks),
            overrun_prob=self.overrun_prob,
            overrun_frac=self.overrun_frac,
            overrun_tasks=self.overrun_tasks,
            jitter_frac=self.jitter_frac,
            jitter_prob=self.jitter_prob,
        )

    # ------------------------------------------------------------------
    # Deterministic per-job draws
    # ------------------------------------------------------------------
    def _draw(self, task: int, job: int, salt: str) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, task, job, salt)."""
        payload = f"{self.seed}:{task}:{job}:{salt}".encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def job_fault(self, task: int, job: int, nominal: float, base: float) -> JobFault:
        """Resolve the fault effect on job *job* of task *task*.

        Args:
            task: task index in the simulated set.
            job: 0-based release counter of the job within the horizon.
            nominal: the analyzed cost of the job under the selected
                configuration.
            base: the task's base-ISA (software, configuration 0) cost.

        Returns:
            A :class:`JobFault`; for the empty model the demand and budget
            are exactly *nominal* (same float object, no arithmetic).
        """
        if task in self.cfu_failed:
            budget = base
            cfu = True
        else:
            budget = nominal
            cfu = False
        demand = budget
        overrun = False
        if (
            self.overrun_prob > 0.0
            and self.overrun_frac > 0.0
            and (self.overrun_tasks is None or task in self.overrun_tasks)
            and self._draw(task, job, "overrun") < self.overrun_prob
        ):
            demand = demand * (1.0 + self.overrun_frac)
            overrun = True
        jitter = 0.0
        if (
            self.jitter_frac > 0.0
            and self.jitter_prob > 0.0
            and self._draw(task, job, "jitter-hit") < self.jitter_prob
        ):
            jitter = self._draw(task, job, "jitter") * self.jitter_frac * budget
            demand = demand + jitter
        return JobFault(
            demand=demand,
            budget=budget,
            cfu_failed=cfu,
            overrun=overrun,
            jitter=jitter,
        )
