"""Fault-scenario sweeps producing the robustness report.

Given a task set with configuration curves, :func:`sweep_faults` runs the
full robustness battery behind ``repro faults``:

1. **nominal selection** — the Chapter 3 customization under EDF and RMS;
2. **single-CFU-failure analysis** — the analytic degraded-mode verdict
   for every possible failed CFU, each cross-validated against the
   fault-injecting simulator (``fallback-to-base`` containment);
3. **scenario injection** — seeded WCET-overrun and reconfiguration-jitter
   campaigns under every containment policy, with per-policy miss/abort
   accounting.

The result is a plain-JSON dict (the ``BENCH_faults.json`` payload written
by the CLI); :func:`repro.report.format_fault_report` renders it as text.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.flow import customize
from repro.faults.degraded import cross_validate_single_fault
from repro.faults.model import CONTAINMENT_POLICIES, FaultModel
from repro.report import format_fault_report
from repro.rtsched.simulator import simulate_taskset
from repro.rtsched.task import TaskSet

__all__ = ["FaultScenario", "default_scenarios", "format_fault_report", "sweep_faults"]


@dataclass(frozen=True)
class FaultScenario:
    """One named injection campaign: a fault model plus a containment."""

    name: str
    faults: FaultModel
    containment: str = "run-to-completion"


def default_scenarios(
    seed: int = 0,
    overrun_fracs: Sequence[float] = (0.10, 0.25, 0.50),
    overrun_prob: float = 0.25,
    jitter_frac: float = 0.10,
) -> tuple[FaultScenario, ...]:
    """The stock sweep: overrun campaigns x containments, plus jitter."""
    scenarios = [
        FaultScenario(
            name=f"overrun{round(100 * frac)}pct-{containment}",
            faults=FaultModel(
                seed=seed, overrun_prob=overrun_prob, overrun_frac=frac
            ),
            containment=containment,
        )
        for frac in overrun_fracs
        for containment in CONTAINMENT_POLICIES
    ]
    scenarios.append(
        FaultScenario(
            name=f"reconfig-jitter{round(100 * jitter_frac)}pct",
            faults=FaultModel(seed=seed, jitter_frac=jitter_frac),
            containment="run-to-completion",
        )
    )
    return tuple(scenarios)


def _scenario_record(name: str, containment: str, sim) -> dict:
    stats = sim.fault_stats
    return {
        "name": name,
        "containment": containment,
        "schedulable": sim.schedulable,
        "n_missed": len(sim.missed),
        "n_aborted": len(sim.aborted),
        "jobs": 0 if stats is None else stats.jobs,
        "faulted_jobs": 0 if stats is None else stats.faulted,
        "overruns": 0 if stats is None else stats.overruns,
        "cfu_fallbacks": 0 if stats is None else stats.cfu_fallbacks,
        "jittered": 0 if stats is None else stats.jittered,
        "contained": 0 if stats is None else stats.contained,
        "excess_demand": 0.0 if stats is None else stats.excess_demand,
        "observed_utilization": sim.observed_utilization,
    }


def sweep_faults(
    task_set: TaskSet,
    area_budget: float | None = None,
    policies: Sequence[str] = ("edf", "rms"),
    seed: int = 0,
    scenarios: Sequence[FaultScenario] | None = None,
    engine: str = "event",
    horizon: float | None = None,
) -> dict:
    """Run the robustness battery on one task set.

    Args:
        task_set: tasks with configuration curves attached.
        area_budget: CFU area for the nominal selection (default: half of
            ``max_area``, matching the CLI's ``customize`` default).
        policies: scheduling policies to sweep (``"edf"``/``"rms"``).
        seed: root seed for the scenario fault models.
        scenarios: injection campaigns (default: :func:`default_scenarios`
            with *seed*).
        engine: simulator engine for every injection run.
        horizon: simulation horizon override (default: the engine's own).

    Returns:
        A JSON-serializable report dict.
    """
    budget = area_budget if area_budget is not None else 0.5 * task_set.max_area
    if scenarios is None:
        scenarios = default_scenarios(seed)
    report: dict = {
        "task_set": task_set.name or "(unnamed)",
        "n_tasks": len(task_set),
        "area_budget": budget,
        "seed": seed,
        "engine": engine,
        "policies": [],
    }
    with obs.span("faults.sweep", tasks=len(task_set), engine=engine):
        for policy in policies:
            sim_policy = "rm" if policy == "rms" else policy
            with obs.span("faults.policy", policy=policy):
                selection = customize(task_set, budget, policy=policy)
                entry: dict = {
                    "policy": policy,
                    "schedulable": selection.schedulable,
                    "utilization_before": selection.utilization_before,
                    "utilization_after": selection.utilization_after,
                    "assignment": (
                        None
                        if selection.assignment is None
                        else list(selection.assignment)
                    ),
                }
                if not selection.schedulable:
                    # Nothing to degrade: the nominal selection already fails.
                    entry["single_cfu_failure"] = None
                    entry["scenarios"] = []
                    report["policies"].append(entry)
                    continue
                assignment = list(selection.assignment)
                modes = []
                robust = True
                all_agree = True
                with obs.span("validate", kind="single_fault", policy=policy):
                    for i, task in enumerate(task_set.tasks):
                        verdict, sim, agree = cross_validate_single_fault(
                            task_set, assignment, policy, i,
                            engine=engine, horizon=horizon,
                        )
                        robust = robust and verdict.schedulable
                        all_agree = all_agree and agree
                        modes.append(
                            {
                                "fault_task": i,
                                "task": task.name,
                                "schedulable": verdict.schedulable,
                                "utilization": verdict.utilization,
                                "worst_load": verdict.worst_load,
                                "sim_schedulable": sim.schedulable,
                                "sim_agrees": agree,
                            }
                        )
                entry["single_cfu_failure"] = {
                    "robust": robust,
                    "sim_agrees_all": all_agree,
                    "modes": modes,
                }
                entry["scenarios"] = []
                for sc in scenarios:
                    with obs.span("faults.scenario", name=sc.name, policy=policy):
                        sim = simulate_taskset(
                            task_set,
                            assignment=assignment,
                            policy=sim_policy,
                            engine=engine,
                            horizon=horizon,
                            faults=sc.faults,
                            containment=sc.containment,
                        )
                    obs.inc("faults.scenarios")
                    entry["scenarios"].append(
                        _scenario_record(sc.name, sc.containment, sim)
                    )
                report["policies"].append(entry)
    return report
