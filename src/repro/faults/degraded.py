"""Analytic degraded-mode schedulability: surviving a single CFU failure.

The selection algorithms of Chapter 3 prove the *nominal* configuration
schedulable.  This module answers the robustness question behind the
``repro faults`` report: **does the selected configuration still meet every
deadline if any single CFU fails?**  A failed CFU pins its task to the
base-ISA (configuration 0) cost while every other task keeps its customized
cost; the EDF utilization/demand-bound tests and the RMS point/response-time
tests are then re-run on the degraded cost vector.

Each policy's verdict is produced by two independent exact tests that must
agree (EDF: utilization bound and the processor-demand test; RMS: the
Bini-Buttazzo point test and response-time analysis) — an internal
differential oracle; disagreement raises :class:`~repro.errors.FaultError`.
:func:`cross_validate_single_fault` additionally replays the same fault
through the discrete-event simulator (``fallback-to-base`` containment),
which is exact over one hyperperiod for integral periods.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import FaultError, ScheduleError
from repro.faults.model import FaultModel
from repro.rtsched.dbf import edf_constrained_schedulable
from repro.rtsched.edf import edf_schedulable_costs
from repro.rtsched.response_time import rta_schedulable
from repro.rtsched.rms import rms_schedulable_costs, rms_task_loads
from repro.rtsched.simulator import SimulationResult, simulate_taskset
from repro.rtsched.task import TaskSet

__all__ = [
    "DegradedReport",
    "DegradedVerdict",
    "cross_validate_single_fault",
    "degraded_costs",
    "degraded_schedulable",
    "single_fault_report",
]

EPS = 1e-9


@dataclass(frozen=True)
class DegradedVerdict:
    """Schedulability of one degraded mode (one failed CFU).

    Attributes:
        fault_task: index of the task whose CFU failed (-1 = nominal mode).
        policy: ``"edf"`` or ``"rms"``.
        schedulable: every deadline still met in this mode.
        utilization: total utilization of the degraded cost vector.
        worst_load: binding load — the utilization under EDF, the maximum
            per-task load factor ``L_i`` under RMS.
    """

    fault_task: int
    policy: str
    schedulable: bool
    utilization: float
    worst_load: float


@dataclass(frozen=True)
class DegradedReport:
    """Single-CFU-failure robustness of a configuration assignment.

    Attributes:
        policy: ``"edf"`` or ``"rms"``.
        nominal: verdict for the fault-free mode (``fault_task = -1``).
        verdicts: one verdict per task, in task order, with that task's
            CFU failed out.
    """

    policy: str
    nominal: DegradedVerdict
    verdicts: tuple[DegradedVerdict, ...]

    @property
    def robust(self) -> bool:
        """Nominal mode and every single-fault mode are schedulable."""
        return self.nominal.schedulable and all(
            v.schedulable for v in self.verdicts
        )

    @property
    def fragile_tasks(self) -> tuple[int, ...]:
        """Tasks whose CFU failure breaks schedulability."""
        return tuple(v.fault_task for v in self.verdicts if not v.schedulable)


def degraded_costs(
    task_set: TaskSet,
    assignment: Sequence[int],
    fault_task: int | None,
) -> list[float]:
    """Per-task costs under *assignment* with *fault_task* pinned to base.

    Args:
        task_set: tasks with configuration curves.
        assignment: configuration index per task.
        fault_task: the task whose CFU failed (its cost becomes the
            configuration-0 software cost), or None for the nominal mode.
    """
    tasks = task_set.tasks
    if len(assignment) != len(tasks):
        raise ScheduleError("assignment length must match task count")
    if fault_task is not None and not 0 <= fault_task < len(tasks):
        raise FaultError(f"fault_task {fault_task} out of range")
    costs = [
        t.configurations[j].cycles for t, j in zip(tasks, assignment)
    ]
    if fault_task is not None:
        fallback = tasks[fault_task].configurations[0]
        if not fallback.is_software:
            raise FaultError(
                f"task {tasks[fault_task].name!r}: configuration 0 is not a "
                "pure-software fallback"
            )
        costs[fault_task] = fallback.cycles
    return costs


def degraded_schedulable(
    task_set: TaskSet,
    assignment: Sequence[int],
    policy: str = "edf",
    fault_task: int | None = None,
) -> DegradedVerdict:
    """Analytic schedulability of one degraded mode.

    Runs two independent exact tests per policy and requires them to agree
    (internal differential oracle).

    Raises:
        FaultError: the two exact tests disagree — an analysis bug, never
            a property of the workload.
    """
    if policy not in ("edf", "rms"):
        raise ScheduleError(f"unknown policy {policy!r}; use 'edf' or 'rms'")
    periods = [t.period for t in task_set.tasks]
    costs = degraded_costs(task_set, assignment, fault_task)
    utilization = sum(c / p for c, p in zip(costs, periods))
    if policy == "edf":
        ok = edf_schedulable_costs(periods, costs)
        cross = edf_constrained_schedulable(periods, costs)
        worst = utilization
    else:
        ok = rms_schedulable_costs(periods, costs)
        cross = rta_schedulable(periods, costs)
        worst = max(rms_task_loads(periods, costs))
    if ok != cross:
        raise FaultError(
            f"degraded-mode tests disagree for policy {policy!r}, "
            f"fault_task={fault_task}: primary={ok}, cross={cross}"
        )
    return DegradedVerdict(
        fault_task=-1 if fault_task is None else fault_task,
        policy=policy,
        schedulable=ok,
        utilization=utilization,
        worst_load=worst,
    )


def single_fault_report(
    task_set: TaskSet,
    assignment: Sequence[int],
    policy: str = "edf",
) -> DegradedReport:
    """Degraded-mode verdicts for every possible single CFU failure."""
    nominal = degraded_schedulable(task_set, assignment, policy, None)
    verdicts = tuple(
        degraded_schedulable(task_set, assignment, policy, i)
        for i in range(len(task_set))
    )
    return DegradedReport(policy=policy, nominal=nominal, verdicts=verdicts)


def cross_validate_single_fault(
    task_set: TaskSet,
    assignment: Sequence[int],
    policy: str = "edf",
    fault_task: int | None = None,
    engine: str = "event",
    horizon: float | None = None,
) -> tuple[DegradedVerdict, SimulationResult, bool]:
    """Degraded analytic verdict vs. the fault-injecting simulator.

    The simulator runs with a :class:`FaultModel` failing exactly
    *fault_task*'s CFU under ``fallback-to-base`` containment — the same
    semantics the analytic test assumes.  For integral periods (simulation
    over one hyperperiod from the synchronous release is exact) the two
    verdicts must agree.

    Returns:
        ``(verdict, simulation, agree)``.
    """
    verdict = degraded_schedulable(task_set, assignment, policy, fault_task)
    model = FaultModel(
        cfu_failed=frozenset() if fault_task is None else frozenset({fault_task})
    )
    sim = simulate_taskset(
        task_set,
        assignment=list(assignment),
        policy="rm" if policy == "rms" else policy,
        engine=engine,
        horizon=horizon,
        faults=model,
        containment="fallback-to-base",
    )
    return verdict, sim, verdict.schedulable == sim.schedulable
