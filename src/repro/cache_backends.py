"""Pluggable storage backends for the artifact cache's shared tier.

:mod:`repro.cache` keeps the *logic* of the persistent tier — entry
envelopes, payload checksums, corruption quarantine — and delegates the
*storage* to a backend object.  Three backends ship:

* :class:`LocalDirBackend` — the default: one JSON file per entry under a
  local directory (``REPRO_CACHE_DIR``), written atomically (unique
  tempfile + ``os.replace``) so concurrent writers never produce a torn
  file, with **LRU-by-mtime eviction** under configurable byte/entry
  budgets.  Reads refresh the entry's mtime, so recently used artifacts
  survive the sweep; the sweep itself is guarded by a non-blocking
  ``flock`` so exactly one process pays for it at a time (contenders skip
  and count ``cache.disk.lock_contention``).
* :class:`SharedDirBackend` — the same layout pointed at a *shared*
  directory (NFS, a bind-mounted volume): multiple hosts share one
  content-addressed store.  ``flock`` is unreliable on network
  filesystems, so the sweep lock is an ``O_CREAT|O_EXCL`` lock file with
  stale-lock breaking instead.
* :class:`MemoryBackend` — a process-local dict with the same budgets and
  LRU behavior; for tests and for embedding the job server without
  touching the filesystem.

Budgets come from the constructor or the environment
(``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_ENTRIES``; unset means
unbounded, matching the pre-backend behavior).  Occupancy and eviction
are mirrored into :mod:`repro.obs`: gauges ``cache.disk.bytes`` /
``cache.disk.entries`` (refreshed by every sweep) and counters
``cache.disk.evictions`` / ``cache.disk.evicted_bytes`` /
``cache.disk.lock_contention`` / ``cache.disk.sweeps``.

Backends store and return *entry text* (the serialized envelope); they
never interpret it.  A backend must never raise out of ``load``/``store``
for environmental reasons (full disk, read-only directory, a vanished
file): the cache tier is an accelerator, not a correctness dependency.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro import obs

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "CacheBackend",
    "LocalDirBackend",
    "SharedDirBackend",
    "MemoryBackend",
    "backend_from_env",
    "ENV_MAX_BYTES",
    "ENV_MAX_ENTRIES",
    "ENV_BACKEND",
]

ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"
ENV_MAX_ENTRIES = "REPRO_CACHE_MAX_ENTRIES"
ENV_BACKEND = "REPRO_CACHE_BACKEND"

#: A *.tmp file older than this is an orphan from a crashed writer.
_STALE_TMP_SECONDS = 300.0
#: A shared-dir lock file older than this is stale (holder crashed).
#: Sweeps refresh the lock's mtime while they run, so a live sweep is
#: never mistaken for a crashed holder even when it outlasts this.
_STALE_LOCK_SECONDS = 300.0


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class CacheBackend:
    """Interface of a persistent-tier storage backend.

    Subclasses provide entry-text storage keyed by file-like names
    (``repro-cache-<kind>-<key>.json``); eviction, budgets and stats are
    backend concerns, envelope validation is :mod:`repro.cache`'s.
    """

    name = "base"

    def load(self, entry: str) -> str | None:
        """The stored text for *entry*, or None when absent/unreadable."""
        raise NotImplementedError

    def store(self, entry: str, text: str) -> None:
        """Persist *text* under *entry* atomically; never raises for
        environmental failures (full/read-only storage is a no-op)."""
        raise NotImplementedError

    def touch(self, entry: str) -> None:
        """Mark *entry* recently used (LRU refresh after a validated hit)."""

    def quarantine(self, entry: str, reason: str) -> None:
        """Move a corrupt *entry* aside so it is never re-read."""

    def clear(self) -> None:
        """Drop every entry (including quarantined and orphaned ones)."""

    def sweep(self) -> None:
        """Force an eviction sweep now (normally triggered by stores)."""

    def stats(self) -> dict[str, Any]:
        """Occupancy/eviction/contention counters for ``cache.stats()``."""
        raise NotImplementedError


class _DirBackend(CacheBackend):
    """Shared machinery of the directory-backed tiers."""

    name = "dir"

    #: Stores between occupancy sweeps when budgets are configured.  The
    #: sweep scans the directory, so amortize it; the budgets are soft by
    #: at most ``sweep_interval`` entries of overshoot per process.
    DEFAULT_SWEEP_INTERVAL = 8

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        sweep_interval: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = (
            max_bytes if max_bytes is not None else _env_int(ENV_MAX_BYTES)
        )
        self.max_entries = (
            max_entries
            if max_entries is not None
            else _env_int(ENV_MAX_ENTRIES)
        )
        self.sweep_interval = (
            sweep_interval
            if sweep_interval is not None
            else self.DEFAULT_SWEEP_INTERVAL
        )
        self._lock = threading.Lock()
        self._stores_since_sweep = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.lock_contention = 0
        self._last_bytes = 0
        self._last_entries = 0

    # -- storage -------------------------------------------------------
    def _path(self, entry: str) -> Path:
        return self.root / entry

    def load(self, entry: str) -> str | None:
        path = self._path(entry)
        try:
            return path.read_text()
        except OSError:
            return None

    def store(self, entry: str, text: str) -> None:
        path = self._path(entry)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # Unique tempfile in the same directory + os.replace:
            # concurrent writers cannot interleave and readers never
            # observe a torn file.
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(text)
                os.replace(tmp_name, path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory must never fail the
            # pipeline.
            return
        if self.max_bytes is not None or self.max_entries is not None:
            with self._lock:
                self._stores_since_sweep += 1
                due = self._stores_since_sweep >= self.sweep_interval
                if due:
                    self._stores_since_sweep = 0
            if due:
                self.sweep()

    def touch(self, entry: str) -> None:
        try:
            os.utime(self._path(entry))
        except OSError:
            pass

    def quarantine(self, entry: str, reason: str) -> None:
        path = self._path(entry)
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            # Read-only directory: leave the file; reads keep treating it
            # as a miss, so correctness is unaffected.
            pass

    def clear(self) -> None:
        if not self.root.is_dir():
            return
        for pattern in (
            "repro-cache-*.json",
            "repro-cache-*.json.corrupt",
            "repro-cache-*.tmp",
        ):
            for f in self.root.glob(pattern):
                f.unlink(missing_ok=True)

    # -- eviction ------------------------------------------------------
    def _acquire_sweep_lock(self):
        """An opaque token when this process may sweep, else None."""
        raise NotImplementedError

    def _release_sweep_lock(self, token) -> None:
        raise NotImplementedError

    def _refresh_sweep_lock(self, token) -> None:
        """Keep the sweep lock visibly live during a long sweep.

        Only lock-file backends need this (an flock is released by the
        kernel when the holder dies, so it cannot go stale)."""

    def _scan(self) -> list[tuple[float, int, str]]:
        """(mtime, size, name) of every cache-owned file, oldest first.

        Quarantined ``*.corrupt`` files age out through the same LRU:
        nothing refreshes their mtime, so they are among the first evicted
        once a budget binds.  Orphaned ``*.tmp`` files from crashed
        writers are deleted on sight once stale.
        """
        now = time.time()
        rows: list[tuple[float, int, str]] = []
        try:
            it = os.scandir(self.root)
        except OSError:
            return rows
        with it:
            for de in it:
                name = de.name
                if not name.startswith("repro-cache-"):
                    continue
                try:
                    st = de.stat()
                except OSError:
                    continue
                if name.endswith(".tmp"):
                    if now - st.st_mtime > _STALE_TMP_SECONDS:
                        try:
                            os.unlink(de.path)
                        except OSError:
                            pass
                    continue
                if name.endswith(".lock"):
                    continue
                rows.append((st.st_mtime, st.st_size, name))
        rows.sort()
        return rows

    def sweep(self) -> None:
        token = self._acquire_sweep_lock()
        if token is None:
            # Another process is sweeping; skip rather than queue up —
            # its sweep covers our writes too.
            self.lock_contention += 1
            obs.inc("cache.disk.lock_contention")
            return
        try:
            rows = self._scan()
            # The scan of a huge (or slow, NFS) directory may itself take
            # a while: refresh before evicting so the lock never looks
            # abandoned to contenders.
            self._refresh_sweep_lock(token)
            total = sum(size for _, size, _ in rows)
            count = len(rows)
            evicted = 0
            evicted_bytes = 0
            for mtime, size, name in rows:
                over_bytes = (
                    self.max_bytes is not None and total > self.max_bytes
                )
                over_entries = (
                    self.max_entries is not None and count > self.max_entries
                )
                if not over_bytes and not over_entries:
                    break
                try:
                    os.unlink(self._path(name))
                except OSError:
                    continue
                total -= size
                count -= 1
                evicted += 1
                evicted_bytes += size
                if evicted % 128 == 0:
                    self._refresh_sweep_lock(token)
            with self._lock:
                self.evictions += evicted
                self.evicted_bytes += evicted_bytes
                self._last_bytes = total
                self._last_entries = count
            obs.inc("cache.disk.sweeps")
            if evicted:
                obs.inc("cache.disk.evictions", evicted)
                obs.inc("cache.disk.evicted_bytes", evicted_bytes)
            obs.set_gauge("cache.disk.bytes", total)
            obs.set_gauge("cache.disk.entries", count)
        finally:
            self._release_sweep_lock(token)

    def stats(self) -> dict[str, Any]:
        # Refresh occupancy so stats() reflects the directory as-is even
        # when no store triggered a sweep recently.
        rows = self._scan()
        with self._lock:
            self._last_bytes = sum(size for _, size, _ in rows)
            self._last_entries = len(rows)
            obs.set_gauge("cache.disk.bytes", self._last_bytes)
            obs.set_gauge("cache.disk.entries", self._last_entries)
            return {
                "backend": self.name,
                "path": str(self.root),
                "bytes": self._last_bytes,
                "entries": self._last_entries,
                "max_bytes": self.max_bytes,
                "max_entries": self.max_entries,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "lock_contention": self.lock_contention,
            }


class LocalDirBackend(_DirBackend):
    """Local-directory tier: atomic JSON files + flock-guarded eviction."""

    name = "local"

    def _acquire_sweep_lock(self):
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return _ExclLock.acquire(self.root)
        try:
            fd = os.open(
                self.root / "repro-cache.lock", os.O_CREAT | os.O_RDWR, 0o644
            )
        except OSError:
            return None
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return None
        return fd

    def _release_sweep_lock(self, token) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            _ExclLock.release(token)
            return
        try:
            fcntl.flock(token, fcntl.LOCK_UN)
        finally:
            os.close(token)

    def _refresh_sweep_lock(self, token) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            _ExclLock.refresh(token)


class _ExclLock:
    """``O_CREAT|O_EXCL`` lock file with stale-lock breaking.

    The portable (and NFS-tolerant) mutual exclusion: creation is atomic
    even on network filesystems where ``flock`` silently degrades.  A lock
    whose file is older than :data:`_STALE_LOCK_SECONDS` is presumed
    abandoned (holder crashed) and broken.
    """

    @staticmethod
    def acquire(root: Path):
        path = root / "repro-cache.lock.pid"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            _ExclLock._break_if_stale(path)
            return None
        except OSError:
            return None
        try:
            os.write(fd, str(os.getpid()).encode())
        finally:
            os.close(fd)
        return path

    @staticmethod
    def _break_if_stale(path: Path) -> None:
        """Remove an abandoned lock without deleting a live one.

        Breaking by plain ``unlink`` races: between the staleness check
        and the unlink the holder may release and a contender re-create a
        *fresh* lock, which the unlink would then destroy — admitting two
        sweepers.  Instead the breaker atomically *renames* the lock to a
        unique name (only one breaker can win the rename), re-checks
        staleness on the renamed file — rename preserves mtime, so a
        freshly created lock grabbed by mistake is detected — and only
        then unlinks.  A fresh lock grabbed in the window is renamed back
        (best-effort; losing that race costs one redundant, idempotent
        sweep).
        """
        try:
            if time.time() - path.stat().st_mtime <= _STALE_LOCK_SECONDS:
                return
        except OSError:
            return
        doomed = path.with_name(
            f"{path.name}.stale.{os.getpid()}.{time.monotonic_ns()}"
        )
        try:
            os.rename(path, doomed)
        except OSError:
            return  # another breaker won, or the holder released
        try:
            fresh = time.time() - doomed.stat().st_mtime <= _STALE_LOCK_SECONDS
        except OSError:
            return
        if fresh:
            # We stole a just-created lock: give it back unless a newer
            # lock already took the canonical name (rename would clobber
            # it — then just drop ours).
            try:
                if not path.exists():
                    os.rename(doomed, path)
                    return
            except OSError:
                pass
        try:
            os.unlink(doomed)
        except OSError:
            pass

    @staticmethod
    def refresh(token) -> None:
        """Refresh the lock's mtime so a long sweep is not broken live."""
        try:
            os.utime(token)
        except OSError:
            pass

    @staticmethod
    def release(token) -> None:
        try:
            os.unlink(token)
        except OSError:
            pass


class SharedDirBackend(_DirBackend):
    """Shared-directory tier for multi-host stores (NFS, mounted volumes).

    Same entry layout as :class:`LocalDirBackend` — hosts pointed at the
    same directory share one content-addressed result store — but the
    sweep lock is an exclusive-create lock file (atomic on network
    filesystems) with stale-lock breaking instead of ``flock``.
    """

    name = "shared"

    def _acquire_sweep_lock(self):
        return _ExclLock.acquire(self.root)

    def _release_sweep_lock(self, token) -> None:
        _ExclLock.release(token)

    def _refresh_sweep_lock(self, token) -> None:
        _ExclLock.refresh(token)


class MemoryBackend(CacheBackend):
    """Process-local dict tier with the same budgets/LRU semantics.

    For tests and for embedding :mod:`repro.service` without a writable
    filesystem.  Thread-safe; *not* shared across processes.
    """

    name = "memory"

    def __init__(
        self,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        self.max_bytes = (
            max_bytes if max_bytes is not None else _env_int(ENV_MAX_BYTES)
        )
        self.max_entries = (
            max_entries
            if max_entries is not None
            else _env_int(ENV_MAX_ENTRIES)
        )
        self._data: OrderedDict[str, str] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.evictions = 0
        self.evicted_bytes = 0
        self.lock_contention = 0

    def load(self, entry: str) -> str | None:
        with self._lock:
            return self._data.get(entry)

    def store(self, entry: str, text: str) -> None:
        with self._lock:
            old = self._data.pop(entry, None)
            if old is not None:
                self._bytes -= len(old)
            self._data[entry] = text
            self._bytes += len(text)
            self._evict_locked()

    def touch(self, entry: str) -> None:
        with self._lock:
            try:
                self._data.move_to_end(entry)
            except KeyError:
                pass

    def quarantine(self, entry: str, reason: str) -> None:
        with self._lock:
            old = self._data.pop(entry, None)
            if old is not None:
                self._bytes -= len(old)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._bytes = 0

    def sweep(self) -> None:
        with self._lock:
            self._evict_locked()

    def _evict_locked(self) -> None:
        evicted = 0
        evicted_bytes = 0
        while self._data and (
            (self.max_entries is not None and len(self._data) > self.max_entries)
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            _, old = self._data.popitem(last=False)
            self._bytes -= len(old)
            evicted += 1
            evicted_bytes += len(old)
        if evicted:
            self.evictions += evicted
            self.evicted_bytes += evicted_bytes
            obs.inc("cache.disk.evictions", evicted)
            obs.inc("cache.disk.evicted_bytes", evicted_bytes)
        obs.set_gauge("cache.disk.bytes", self._bytes)
        obs.set_gauge("cache.disk.entries", len(self._data))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            obs.set_gauge("cache.disk.bytes", self._bytes)
            obs.set_gauge("cache.disk.entries", len(self._data))
            return {
                "backend": self.name,
                "path": None,
                "bytes": self._bytes,
                "entries": len(self._data),
                "max_bytes": self.max_bytes,
                "max_entries": self.max_entries,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "lock_contention": self.lock_contention,
            }


def backend_from_env(root: Path) -> CacheBackend:
    """The directory backend named by ``REPRO_CACHE_BACKEND`` for *root*.

    ``local`` (default) or ``shared``; ``memory`` is only reachable
    programmatically (an env-selected memory tier under a directory path
    would silently drop the directory, which is a misconfiguration).
    An unknown name falls back to ``local`` — a typo must not disable
    persistence.
    """
    kind = os.environ.get(ENV_BACKEND, "local").strip().lower()
    if kind == "shared":
        return SharedDirBackend(root)
    return LocalDirBackend(root)
