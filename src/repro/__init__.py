"""repro — instruction-set customization for multi-tasking real-time systems.

A production-quality reproduction of *Instruction-Set Customization for
Real-Time Embedded Systems* (Huynh & Mitra, DATE 2007) and the surrounding
thesis system (Huynh, NUS 2009): custom-instruction identification and
selection, EDF/RMS-aware inter-task customization, ε-approximate Pareto
trade-off exploration, MLGP-based iterative generation, and runtime
reconfiguration of custom instructions for single- and multi-tasking
applications.

Quickstart::

    from repro import build_task_set, customize, CH3_TASK_SETS, programs_for

    programs = programs_for(CH3_TASK_SETS[1])
    task_set = build_task_set(programs, target_utilization=1.05)
    result = customize(task_set, area_budget=500.0, policy="edf")
    print(result.utilization_after, result.schedulable)
"""

from repro import obs
from repro.core import (
    CustomizationResult,
    EdfSelection,
    RmsSelection,
    build_task,
    build_task_set,
    customize,
    select_edf,
    select_rms,
)
from repro.enumeration import (
    Candidate,
    CandidateLibrary,
    build_candidate_library,
    enumerate_connected,
    enumerate_exhaustive,
    maximal_misos,
)
from repro.errors import (
    ConstraintError,
    GraphError,
    ReproError,
    ScheduleError,
    SolverError,
    WorkloadError,
)
from repro.graphs import Block, DataFlowGraph, IfElse, Loop, Program, Seq
from repro.isa import HardwareCostModel, Opcode
from repro.mlgp import (
    iterative_customization,
    iterative_selection,
    mlgp_partition,
    mlgp_program_profile,
)
from repro.mtreconfig import (
    ReconfigTask,
    TaskVersion,
    dp_solution,
    ilp_solution,
    static_solution,
)
from repro.pareto import (
    CIOption,
    ParetoPoint,
    TaskCurve,
    approx_utilization_curve,
    approx_workload_curve,
    exact_utilization_curve,
    exact_workload_curve,
)
from repro.reconfig import (
    CISVersion,
    HotLoop,
    exhaustive_partition,
    greedy_partition,
    iterative_partition,
)
from repro.rtsched import (
    PeriodicTask,
    TaskSet,
    edf_schedulable,
    rms_schedulable,
    scale_periods_for_utilization,
    simulate_taskset,
)
from repro.selection import (
    build_configuration_curve,
    select_branch_bound,
    select_greedy,
    select_ilp,
    select_knapsack,
)
from repro.workloads import (
    CH3_TASK_SETS,
    CH4_TASK_SETS,
    CH5_TASK_SETS,
    benchmark_names,
    get_program,
    programs_for,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # core
    "CustomizationResult",
    "EdfSelection",
    "RmsSelection",
    "build_task",
    "build_task_set",
    "customize",
    "select_edf",
    "select_rms",
    # enumeration
    "Candidate",
    "CandidateLibrary",
    "build_candidate_library",
    "enumerate_connected",
    "enumerate_exhaustive",
    "maximal_misos",
    # errors
    "ConstraintError",
    "GraphError",
    "ReproError",
    "ScheduleError",
    "SolverError",
    "WorkloadError",
    # graphs
    "Block",
    "DataFlowGraph",
    "IfElse",
    "Loop",
    "Program",
    "Seq",
    # isa
    "HardwareCostModel",
    "Opcode",
    # mlgp
    "iterative_customization",
    "iterative_selection",
    "mlgp_partition",
    "mlgp_program_profile",
    # mtreconfig
    "ReconfigTask",
    "TaskVersion",
    "dp_solution",
    "ilp_solution",
    "static_solution",
    # pareto
    "CIOption",
    "ParetoPoint",
    "TaskCurve",
    "approx_utilization_curve",
    "approx_workload_curve",
    "exact_utilization_curve",
    "exact_workload_curve",
    # reconfig
    "CISVersion",
    "HotLoop",
    "exhaustive_partition",
    "greedy_partition",
    "iterative_partition",
    # rtsched
    "PeriodicTask",
    "TaskSet",
    "edf_schedulable",
    "rms_schedulable",
    "scale_periods_for_utilization",
    "simulate_taskset",
    # selection
    "build_configuration_curve",
    "select_branch_bound",
    "select_greedy",
    "select_ilp",
    "select_knapsack",
    # workloads
    "CH3_TASK_SETS",
    "CH4_TASK_SETS",
    "CH5_TASK_SETS",
    "benchmark_names",
    "get_program",
    "programs_for",
]
