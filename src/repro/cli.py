"""Command-line interface for the repro toolkit.

Subcommands mirror the library's main flows:

* ``repro benchmarks`` — list the built-in synthetic benchmarks;
* ``repro ingest <file>`` — compile a Python kernel (or load a
  ``.json``/``.dot`` graph) into a ``repro/v1`` program artifact and
  optionally register it as a named workload;
* ``repro curve <benchmark>`` — build and print a task's configuration
  curve (optionally save it as JSON);
* ``repro customize <benchmarks...>`` — Chapter 3 inter-task selection for
  a task set under EDF or RMS;
* ``repro pareto <benchmarks...>`` — Chapter 4 ε-approximate
  utilization-area Pareto curve;
* ``repro mlgp <benchmarks...>`` — Chapter 5 iterative on-demand
  custom-instruction generation for a task set;
* ``repro reconfig <loops.json>`` — Chapter 6 partitioning of hot loops
  (falls back to the JPEG case study without an input file);
* ``repro mtreconfig [benchmarks...]`` — Chapter 7 multi-task
  spatial/temporal partitioning (DP, ILP or static solver);
* ``repro faults <benchmarks...>`` — fault-injection sweep and
  degraded-mode (single-CFU-failure) robustness report;
* ``repro serve`` / ``repro submit`` — run the long-lived customization
  job server (:mod:`repro.service`: bounded priority queue, in-flight
  coalescing, shared result cache) and submit jobs to it.

Library errors (:class:`repro.errors.ReproError`) are caught at the top
level and reported as a one-line message with exit status 2 — a bad input
never produces a traceback.

Run ``python -m repro --help`` for details.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro import io as repro_io
from repro import obs
from repro.errors import ReproError
from repro.report import (
    format_curve,
    format_fault_report,
    format_health,
    format_metrics,
    format_table,
    format_trace_summary,
)

__all__ = ["main", "build_parser"]


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """Attach ``--trace``/``--metrics`` to a subparser.

    The ``SUPPRESS`` default keeps an absent subcommand flag from
    clobbering the top-level value (same pattern as ``--no-cache``).
    """
    p.add_argument("--trace", metavar="FILE", default=argparse.SUPPRESS,
                   help="record a span trace of this run as JSONL")
    p.add_argument("--metrics", action="store_true",
                   default=argparse.SUPPRESS,
                   help="print the metrics registry after the run")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Instruction-set customization for real-time embedded systems",
    )
    parser.add_argument("--cache-dir", default=None,
                        help="persist identification artifacts as JSON under "
                             "this directory (overrides $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the in-process artifact cache")
    parser.add_argument("--engine",
                        choices=("bitset", "array", "compiled", "auto",
                                 "reference"),
                        default="bitset",
                        help="candidate-enumeration engine (default bitset; "
                             "array = vectorized frontier batching, "
                             "compiled = JIT kernels when numba is "
                             "installed, auto = pick per block; "
                             "bit-identical results)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="record a span trace of this run as JSONL")
    parser.add_argument("--metrics", action="store_true", default=False,
                        help="print the metrics registry after the run")
    sub = parser.add_subparsers(dest="command", required=True)

    p_bench = sub.add_parser("benchmarks",
                             help="list built-in synthetic benchmarks")
    _add_obs_flags(p_bench)

    p_ing = sub.add_parser(
        "ingest",
        help="ingest real code (.py kernel, .json artifact or .dot graph) "
             "as a workload",
    )
    p_ing.add_argument("source",
                       help="a Python kernel (.py), a repro/v1 program/DFG "
                            "artifact (.json) or a DOT graph (.dot)")
    p_ing.add_argument("--function", default=None,
                       help="function to ingest from a .py source (default: "
                            "the only/decorated one)")
    p_ing.add_argument("--name", default=None,
                       help="workload name (default: the kernel's own name)")
    p_ing.add_argument("--hints", default=None, metavar="JSON",
                       help="kernel hints as a JSON object (overrides "
                            "@kernel decorator hints)")
    p_ing.add_argument("--output", default=None, metavar="FILE",
                       help="write the program artifact here "
                            "(default <name>.json)")
    p_ing.add_argument("--register", nargs="?", const="", default=None,
                       metavar="DIR",
                       help="also install the artifact into DIR (default "
                            "$REPRO_WORKLOAD_DIR), making the name "
                            "resolvable by every pipeline")
    p_ing.add_argument("--dot", default=None, metavar="FILE",
                       help="render the largest basic block as DOT here")
    p_ing.add_argument("--relabel", action="store_true",
                       help="renumber non-topological node ids in imported "
                            ".json/.dot graphs instead of rejecting them")
    _add_obs_flags(p_ing)

    p_curve = sub.add_parser("curve", help="build a task's configuration curve")
    p_curve.add_argument("benchmark")
    p_curve.add_argument("--objective", choices=("avg", "wcet"), default="avg")
    p_curve.add_argument("--output", help="save the task set as JSON")
    _add_obs_flags(p_curve)

    p_cust = sub.add_parser("customize", help="inter-task selection (Ch. 3)")
    p_cust.add_argument("benchmarks", nargs="+")
    p_cust.add_argument("--utilization", type=float, default=1.05,
                        help="software-only utilization target (default 1.05)")
    p_cust.add_argument("--policy", choices=("edf", "rms"), default="edf")
    p_cust.add_argument("--area", type=float, default=None,
                        help="CFU area budget (default: half of MaxArea)")
    p_cust.add_argument("--input", help="load the task set from JSON instead")
    p_cust.add_argument("--workers", type=int, default=None,
                        help="build per-task curves in N parallel processes")
    _add_obs_flags(p_cust)

    p_par = sub.add_parser("pareto", help="utilization-area Pareto curve (Ch. 4)")
    p_par.add_argument("benchmarks", nargs="+")
    p_par.add_argument("--eps", type=float, default=0.69)
    p_par.add_argument("--utilization", type=float, default=1.0)
    p_par.add_argument("--workers", type=int, default=None,
                       help="build per-task curves in N parallel processes")
    p_par.add_argument("--no-cache", action="store_true",
                       default=argparse.SUPPRESS,
                       help="disable the artifact cache for this run")
    _add_obs_flags(p_par)

    p_exp = sub.add_parser("explain", help="sensitivity analysis of a task set")
    p_exp.add_argument("benchmarks", nargs="+")
    p_exp.add_argument("--utilization", type=float, default=1.05)
    p_exp.add_argument("--area", type=float, default=None)
    _add_obs_flags(p_exp)

    p_val = sub.add_parser("validate", help="cross-model consistency checks")
    p_val.add_argument("benchmarks", nargs="+")
    p_val.add_argument("--utilization", type=float, default=1.05)
    _add_obs_flags(p_val)

    p_mlgp = sub.add_parser(
        "mlgp", help="iterative custom-instruction generation (Ch. 5)"
    )
    p_mlgp.add_argument("benchmarks", nargs="+")
    p_mlgp.add_argument("--utilization", type=float, default=1.05,
                        help="software-only utilization of the task set "
                             "(default 1.05)")
    p_mlgp.add_argument("--target", type=float, default=1.0,
                        help="utilization target to customize down to "
                             "(default 1.0)")
    p_mlgp.add_argument("--engine", dest="part_engine",
                        choices=("fast", "array", "compiled", "auto",
                                 "reference"),
                        default="fast",
                        help="MLGP engine (bit-identical; default fast; "
                             "array = batched move scoring, compiled = "
                             "JIT-kernel scoring when numba is installed, "
                             "auto = compiled if available else array)")
    p_mlgp.add_argument("--seed", type=int, default=0,
                        help="MLGP seed (default 0)")
    p_mlgp.add_argument("--workers", type=int, default=None,
                        help="precompute per-region MLGP runs in N parallel "
                             "processes")
    p_mlgp.add_argument("--no-cache", action="store_true",
                        default=argparse.SUPPRESS,
                        help="disable the artifact cache for this run")
    _add_obs_flags(p_mlgp)

    p_rec = sub.add_parser("reconfig", help="hot-loop partitioning (Ch. 6)")
    p_rec.add_argument("--input", help="hot-loops JSON (default: JPEG case study)")
    p_rec.add_argument("--max-area", type=float, default=None)
    p_rec.add_argument("--rho", type=float, default=None)
    p_rec.add_argument("--engine", dest="part_engine",
                       choices=("fast", "reference"), default="fast",
                       help="k-way partitioner engine (bit-identical; "
                            "default fast)")
    p_rec.add_argument("--seed", type=int, default=0,
                       help="k-way partitioner seed (default 0)")
    p_rec.add_argument("--workers", type=int, default=None,
                       help="evaluate per-k partitions in N parallel processes")
    p_rec.add_argument("--no-cache", action="store_true",
                       default=argparse.SUPPRESS,
                       help="disable the artifact cache for this run")
    _add_obs_flags(p_rec)

    p_mt = sub.add_parser(
        "mtreconfig",
        help="multi-task spatial/temporal partitioning (Ch. 7)",
    )
    p_mt.add_argument("benchmarks", nargs="*",
                      help="constituent tasks (default: a seeded synthetic "
                           "task set)")
    p_mt.add_argument("--engine", dest="mt_engine",
                      choices=("dp", "ilp", "static"), default="dp",
                      help="solver (default dp)")
    p_mt.add_argument("--fabric-area", type=float, default=None,
                      help="area of one fabric configuration (default: "
                           "2x the largest version)")
    p_mt.add_argument("--rho", type=float, default=None,
                      help="reconfiguration cost (default: 1%% of the "
                           "shortest period)")
    p_mt.add_argument("--utilization", type=float, default=1.2,
                      help="software-only utilization of the task set "
                           "(default 1.2)")
    p_mt.add_argument("--tasks", type=int, default=12,
                      help="synthetic task count when no benchmarks are "
                           "given (default 12)")
    p_mt.add_argument("--seed", type=int, default=0,
                      help="seed of the synthetic task set (default 0)")
    p_mt.add_argument("--no-cache", action="store_true",
                      default=argparse.SUPPRESS,
                      help="disable the artifact cache for this run")
    _add_obs_flags(p_mt)

    p_flt = sub.add_parser(
        "faults",
        help="fault-injection sweep + degraded-mode robustness report",
    )
    p_flt.add_argument("benchmarks", nargs="*",
                       help="constituent tasks (default: thesis Table 3.1 "
                            "task set 1)")
    p_flt.add_argument("--input", help="load the task set from JSON instead")
    p_flt.add_argument("--utilization", type=float, default=1.05,
                       help="software-only utilization target (default 1.05)")
    p_flt.add_argument("--area", type=float, default=None,
                       help="CFU area budget (default: half of MaxArea)")
    p_flt.add_argument("--policy", choices=("edf", "rms", "both"),
                       default="both")
    p_flt.add_argument("--seed", type=int, default=0,
                       help="root seed for the injected fault scenarios")
    p_flt.add_argument("--overrun-frac", type=float, nargs="*",
                       default=(0.10, 0.25, 0.50), metavar="FRAC",
                       help="WCET overrun fractions to sweep")
    p_flt.add_argument("--overrun-prob", type=float, default=0.25,
                       help="per-job overrun probability (default 0.25)")
    p_flt.add_argument("--jitter-frac", type=float, default=0.10,
                       help="reconfiguration jitter fraction (default 0.10)")
    p_flt.add_argument("--sim-engine", choices=("event", "reference"),
                       default="event",
                       help="simulator engine for the injection runs")
    p_flt.add_argument("--workers", type=int, default=None,
                       help="build per-task curves in N parallel processes")
    p_flt.add_argument("--output",
                       help="write the robustness report JSON here "
                            "(BENCH_faults.json style)")
    _add_obs_flags(p_flt)

    p_srv = sub.add_parser(
        "serve",
        help="run the customization job server (coalescing + shared cache)",
    )
    p_srv.add_argument("--socket", default=None,
                       help="serve on this unix socket path instead of TCP")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="TCP bind host (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=7453,
                       help="TCP bind port (default 7453; 0 = ephemeral)")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="concurrent job workers (default 2)")
    p_srv.add_argument("--queue-size", type=int, default=128,
                       help="bounded job-queue capacity (default 128)")
    p_srv.add_argument("--job-timeout", type=float, default=None,
                       help="hard per-job deadline in seconds")
    p_srv.add_argument("--inline", action="store_true",
                       help="run jobs inline instead of in a process pool")
    p_srv.add_argument("--journal", default=None, metavar="PATH",
                       help="write-ahead job journal (JSONL); replayed on "
                            "start so a crash or drain loses no jobs")
    p_srv.add_argument("--retries", type=int, default=2,
                       help="per-job retry budget for pool-worker deaths "
                            "(default 2)")
    p_srv.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds a SIGTERM/SIGINT drain waits for "
                            "running jobs (default 30)")
    _add_obs_flags(p_srv)

    p_sbm = sub.add_parser(
        "submit", help="submit a job to a running `repro serve` instance"
    )
    p_sbm.add_argument("kind", nargs="?", default=None,
                       help="job kind: identify, curve, pareto, mlgp, "
                            "reconfig or mtreconfig")
    p_sbm.add_argument("benchmarks", nargs="*",
                       help="benchmark name(s) for the job, when it takes any")
    p_sbm.add_argument("--socket", default=None,
                       help="connect over this unix socket path")
    p_sbm.add_argument("--host", default="127.0.0.1")
    p_sbm.add_argument("--port", type=int, default=7453)
    p_sbm.add_argument("--params", default=None, metavar="JSON",
                       help="job parameters as a JSON object "
                            "(merged over positional benchmarks)")
    p_sbm.add_argument("--priority", type=int, default=0,
                       help="queue priority (higher runs earlier)")
    p_sbm.add_argument("--timeout", type=float, default=None,
                       help="give up waiting for the result after N seconds")
    p_sbm.add_argument("--watch", action="store_true",
                       help="stream the job's lifecycle events as they happen")
    p_sbm.add_argument("--no-wait", action="store_true",
                       help="enqueue and print the job id without waiting")
    p_sbm.add_argument("--stats", action="store_true",
                       help="print server queue/dedup/cache stats and exit")
    p_sbm.add_argument("--health", action="store_true",
                       help="print the server's readiness snapshot and exit "
                            "(exit 0 only when it is accepting submits)")
    p_sbm.add_argument("--shutdown", action="store_true",
                       help="ask the server to stop and exit")
    p_sbm.add_argument("--retries", type=int, default=0,
                       help="retry lost connections / retryable rejections "
                            "N times with backoff (survives restarts)")
    p_sbm.add_argument("--backoff", type=float, default=0.25,
                       help="base backoff seconds between retries "
                            "(jittered exponential; default 0.25)")

    p_tr = sub.add_parser("trace", help="inspect a recorded span trace")
    p_tr.add_argument("action", choices=("summarize",),
                      help="report to produce")
    p_tr.add_argument("file", help="trace JSONL written by --trace")
    p_tr.add_argument("--top", type=int, default=10,
                      help="number of slowest spans to list (default 10)")

    return parser


def _cmd_benchmarks() -> int:
    from repro.workloads import BENCHMARKS

    rows = []
    for name, spec in sorted(BENCHMARKS.items()):
        rows.append((name, spec.domain, spec.max_bb, spec.avg_bb, spec.wcet_cycles))
    print(format_table(
        ["benchmark", "domain", "max_bb", "avg_bb", "wcet_cycles"], rows
    ))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json as json_mod
    from pathlib import Path

    from repro import cache, frontend
    from repro.graphs.export import dfg_to_dot

    hints = None
    if args.hints:
        try:
            hints = json_mod.loads(args.hints)
            if not isinstance(hints, dict):
                raise ValueError("not a JSON object")
        except ValueError as exc:
            raise ReproError(f"bad --hints: {exc}") from exc

    source = Path(args.source)
    suffix = source.suffix.lower()
    if suffix == ".py":
        program = frontend.ingest_path(
            source, function=args.function, hints=hints, name=args.name
        )
    elif suffix == ".json":
        from repro.graphs.program import Block, Program

        data = repro_io.load_json(source)
        kind = data.get("kind")
        if kind == "program":
            program = frontend.program_from_dict(data, relabel=args.relabel)
        elif kind == "dfg":
            dfg = frontend.dfg_from_dict(data, relabel=args.relabel)
            program = Program(dfg.name or source.stem, Block(dfg))
        else:
            raise ReproError(
                f"{source}: artifact kind {kind!r} is not ingestible "
                "(expected 'program' or 'dfg')"
            )
        if args.name:
            program = Program(args.name, program.root)
    elif suffix == ".dot":
        try:
            text = source.read_text()
        except OSError as exc:
            raise ReproError(f"{source}: cannot read ({exc})") from exc
        from repro.graphs.program import Block, Program

        dfg = frontend.import_dot(text, relabel=args.relabel)
        program = Program(args.name or dfg.name or source.stem, Block(dfg))
    else:
        raise ReproError(
            f"{source}: unsupported source type {suffix!r} "
            "(expected .py, .json or .dot)"
        )

    fingerprint = cache.program_fingerprint(program)
    max_bb, avg_bb = program.block_stats()
    n_ops = sum(len(b.dfg) for b in program.basic_blocks)
    rows = [
        ("name", program.name),
        ("source", str(source)),
        ("basic blocks", len(program.basic_blocks)),
        ("operations", n_ops),
        ("max/avg block size", f"{max_bb}/{avg_bb:.1f}"),
        ("wcet cycles", f"{program.wcet():.0f}"),
        ("avg cycles", f"{program.avg_cycles():.1f}"),
        ("fingerprint", fingerprint[:16]),
    ]
    print(format_table(["property", "value"], rows))

    artifact = frontend.program_to_dict(program)
    output = Path(args.output) if args.output else Path(f"{program.name}.json")
    repro_io.save_json(artifact, output)
    print(f"saved program artifact to {output}")

    if args.register is not None:
        from repro.workloads import registry

        target_dir = Path(args.register) if args.register else registry.workload_dir()
        if target_dir is None:
            raise ReproError(
                "--register needs a directory (or set $REPRO_WORKLOAD_DIR)"
            )
        target_dir.mkdir(parents=True, exist_ok=True)
        installed = target_dir / f"{program.name}.json"
        repro_io.save_json(artifact, installed)
        print(f"registered as {program.name!r} in {target_dir} "
              f"(set {registry.ENV_WORKLOAD_DIR}={target_dir} to resolve it "
              "by name)")

    if args.dot:
        biggest = max(program.basic_blocks, key=lambda b: len(b.dfg))
        Path(args.dot).write_text(dfg_to_dot(biggest.dfg))
        print(f"rendered largest block ({len(biggest.dfg)} ops) to {args.dot}")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from repro.core import build_task
    from repro.rtsched.task import TaskSet
    from repro.workloads import get_program

    task = build_task(
        get_program(args.benchmark), objective=args.objective, engine=args.engine
    )
    xs = [c.area for c in task.configurations]
    ys = [c.cycles for c in task.configurations]
    print(f"configuration curve for {args.benchmark} ({args.objective}):")
    print(format_curve(xs, ys, "area(adders)", "cycles"))
    if args.output:
        repro_io.save_json(
            repro_io.task_set_to_dict(TaskSet([task], name=args.benchmark)),
            args.output,
        )
        print(f"saved to {args.output}")
    return 0


def _cmd_customize(args: argparse.Namespace) -> int:
    from repro.core import build_task_set, customize
    from repro.workloads import programs_for

    if args.input:
        task_set = repro_io.task_set_from_dict(repro_io.load_json(args.input))
    else:
        programs = programs_for(tuple(args.benchmarks))
        task_set = build_task_set(
            programs,
            target_utilization=args.utilization,
            workers=args.workers,
            engine=args.engine,
        )
    budget = args.area if args.area is not None else 0.5 * task_set.max_area
    result = customize(task_set, budget, policy=args.policy)
    rows = [
        ("policy", args.policy),
        ("area budget", budget),
        ("utilization before", result.utilization_before),
        ("utilization after", result.utilization_after),
        ("schedulable", result.schedulable),
        ("area used", result.area),
    ]
    if result.assignment is not None:
        # Cross-check the analytic verdict with the discrete-event
        # simulator (the exit code stays analytic).
        from repro.rtsched.simulator import simulate_taskset

        with obs.span("validate", kind="simulation", policy=args.policy):
            sim = simulate_taskset(
                task_set,
                assignment=list(result.assignment),
                policy="rm" if args.policy == "rms" else "edf",
                stop_on_first_miss=True,
            )
        rows.append(("simulation agrees", sim.schedulable == result.schedulable))
    print(format_table(["metric", "value"], rows))
    if result.assignment is not None:
        for t, j in zip(task_set, result.assignment):
            cfg = t.configurations[j]
            print(f"  {t.name}: configuration {j} (area {cfg.area:.1f}, "
                  f"cycles {cfg.cycles:.0f})")
    return 0 if result.schedulable else 1


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.core.flow import build_tasks
    from repro.pareto import TaskCurve, approx_utilization_curve
    from repro.workloads import programs_for

    programs = programs_for(tuple(args.benchmarks))
    tasks = build_tasks(programs, workers=args.workers, engine=args.engine)
    alpha = len(tasks) / args.utilization
    curves = [
        TaskCurve(
            period=alpha * t.wcet,
            workloads=tuple(c.cycles for c in t.configurations),
            areas=tuple(round(c.area) for c in t.configurations),
        )
        for t in tasks
    ]
    front = approx_utilization_curve(curves, args.eps)
    print(f"eps={args.eps} utilization-area Pareto curve "
          f"({len(front)} points):")
    print(format_curve(
        [p.cost for p in front], [p.value for p in front],
        "area(adders)", "utilization",
    ))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis import marginal_area_utility, utilization_breakdown
    from repro.core import build_task_set, select_edf
    from repro.workloads import programs_for

    programs = programs_for(tuple(args.benchmarks))
    task_set = build_task_set(programs, target_utilization=args.utilization)
    budget = args.area if args.area is not None else 0.5 * task_set.max_area
    sel = select_edf(task_set, budget)
    rows = [
        (
            r.name,
            r.configuration,
            f"{r.utilization:.4f}",
            f"{100 * r.share:.1f}%",
            f"{r.area:.1f}",
            f"{r.headroom:.4f}",
        )
        for r in utilization_breakdown(task_set, sel.assignment)
    ]
    print(f"budget {budget:.1f} adders -> U = {sel.utilization:.4f}")
    print(format_table(
        ["task", "cfg", "utilization", "share", "area", "headroom"], rows
    ))
    mu = marginal_area_utility(task_set, budget)
    print(f"marginal utility at this budget: {mu:.6f} utilization per adder")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core import build_task_set
    from repro.validation import validate_program_costs, validate_task_set
    from repro.workloads import get_program, programs_for

    programs = programs_for(tuple(args.benchmarks))
    task_set = build_task_set(programs, target_utilization=args.utilization)
    report = validate_task_set(task_set, 0.5 * task_set.max_area)
    print(report.summary())
    ok = report.passed
    for name in args.benchmarks[:2]:
        prog_report = validate_program_costs(get_program(name))
        print(prog_report.summary())
        ok = ok and prog_report.passed
    return 0 if ok else 1


def _cmd_mlgp(args: argparse.Namespace) -> int:
    from repro.mlgp.flow import iterative_customization
    from repro.workloads import programs_for

    programs = programs_for(tuple(args.benchmarks))
    sw_wcets = [p.wcet() for p in programs]
    alpha = len(programs) / args.utilization
    periods = [alpha * w for w in sw_wcets]
    result = iterative_customization(
        programs,
        periods,
        u_target=args.target,
        seed=args.seed,
        engine=args.part_engine,
        workers=args.workers,
    )
    rows = [
        (r.iteration, r.task, f"{r.utilization:.4f}", r.new_cis,
         f"{r.elapsed:.2f}s")
        for r in result.records
    ]
    print(format_table(
        ["iteration", "task", "utilization", "new CIs", "elapsed"], rows
    ))
    print(f"final utilization {result.utilization:.4f} "
          f"(target {result.target}) — "
          f"{len(result.custom_instructions)} custom instructions, "
          f"shared area {result.total_area:.1f} adders")
    return 0 if result.met_target else 1


def _cmd_reconfig(args: argparse.Namespace) -> int:
    from repro.reconfig import greedy_partition, iterative_partition

    if args.input:
        loops, trace = repro_io.hot_loops_from_dict(repro_io.load_json(args.input))
        if not trace:
            print("error: the input file carries no loop trace", file=sys.stderr)
            return 2
        max_area = args.max_area if args.max_area is not None else 2048.0
        rho = args.rho if args.rho is not None else 15.0
    else:
        from repro.workloads import JPEG_MAX_AREA, JPEG_RHO, jpeg_loops, jpeg_trace

        loops, trace = jpeg_loops(), jpeg_trace()
        max_area = args.max_area if args.max_area is not None else JPEG_MAX_AREA
        rho = args.rho if args.rho is not None else JPEG_RHO
    it = iterative_partition(
        loops, trace, max_area, rho, seed=args.seed, workers=args.workers,
        engine=args.part_engine,
    )
    gr = greedy_partition(loops, trace, max_area, rho)
    print(format_table(
        ["algorithm", "net gain", "configurations"],
        [
            ("iterative", it.gain, it.n_configurations),
            ("greedy", gr.gain, gr.n_configurations),
        ],
    ))
    for i, lp in enumerate(loops):
        j = it.partition.selection[i]
        where = (
            f"config {it.partition.config_of[i]}" if j != 0 else "software"
        )
        print(f"  {lp.name}: version {j} -> {where}")
    return 0


def _cmd_mtreconfig(args: argparse.Namespace) -> int:
    import time

    from repro.mtreconfig import (
        dp_solution,
        ilp_solution,
        static_solution,
        synthetic_reconfig_tasks,
        tasks_from_benchmarks,
    )

    if args.benchmarks:
        tasks = tasks_from_benchmarks(
            tuple(args.benchmarks), target_utilization=args.utilization
        )
    else:
        tasks = synthetic_reconfig_tasks(
            args.tasks, seed=args.seed, target_utilization=args.utilization
        )
    fabric_area = args.fabric_area
    if fabric_area is None:
        fabric_area = 2.0 * max(
            (v.area for t in tasks for v in t.versions), default=1.0
        )
    rho = args.rho
    if rho is None:
        rho = 0.01 * min((t.period for t in tasks), default=1.0)
    if args.mt_engine == "dp":
        report = dp_solution(tasks, fabric_area, rho)
        solution, elapsed = report.solution, report.elapsed
    elif args.mt_engine == "ilp":
        report = ilp_solution(tasks, fabric_area, rho)
        solution, elapsed = report.solution, report.elapsed
    else:
        t0 = time.perf_counter()
        solution = static_solution(tasks, fabric_area, rho=rho)
        elapsed = time.perf_counter() - t0
    n_configs = len({
        g for g, j in zip(solution.group_of, solution.selection) if j != 0
    })
    print(format_table(
        ["metric", "value"],
        [
            ("solver", args.mt_engine),
            ("fabric area", fabric_area),
            ("rho", rho),
            ("utilization", f"{solution.utilization:.4f}"),
            ("schedulable", solution.utilization <= 1.0 + 1e-9),
            ("configurations", n_configs),
            ("elapsed", f"{elapsed * 1e3:.1f}ms"),
        ],
    ))
    for t, j, g in zip(tasks, solution.selection, solution.group_of):
        where = f"config {g}" if j != 0 else "software"
        print(f"  {t.name}: version {j} -> {where}")
    return 0 if solution.utilization <= 1.0 + 1e-9 else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.core import build_task_set
    from repro.faults import default_scenarios, sweep_faults
    from repro.workloads import CH3_TASK_SETS, programs_for

    if args.input:
        task_set = repro_io.task_set_from_dict(repro_io.load_json(args.input))
    else:
        names = tuple(args.benchmarks) or CH3_TASK_SETS[1]
        task_set = build_task_set(
            programs_for(names),
            target_utilization=args.utilization,
            name="+".join(names),
            workers=args.workers,
            engine=args.engine,
        )
    policies = ("edf", "rms") if args.policy == "both" else (args.policy,)
    scenarios = default_scenarios(
        seed=args.seed,
        overrun_fracs=tuple(args.overrun_frac),
        overrun_prob=args.overrun_prob,
        jitter_frac=args.jitter_frac,
    )
    report = sweep_faults(
        task_set,
        area_budget=args.area,
        policies=policies,
        seed=args.seed,
        scenarios=scenarios,
        engine=args.sim_engine,
    )
    print(format_fault_report(report))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"saved robustness report to {args.output}")
    robust = all(
        entry["single_cfu_failure"] is not None
        and entry["single_cfu_failure"]["robust"]
        for entry in report["policies"]
    )
    return 0 if robust else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.server import JobServer

    server = JobServer(
        workers=args.workers,
        queue_size=args.queue_size,
        use_processes=not args.inline,
        job_timeout=args.job_timeout,
        journal=args.journal,
        retries=args.retries,
        drain_timeout=args.drain_timeout,
    )

    async def run() -> None:
        if args.socket:
            await server.start_unix(args.socket)
            print(f"serving on unix socket {args.socket}", file=sys.stderr)
        else:
            port = await server.start_tcp(args.host, args.port)
            print(f"serving on {args.host}:{port}", file=sys.stderr)
        if args.journal:
            print(f"journaling jobs to {args.journal}", file=sys.stderr)

        # Graceful drain on SIGTERM/SIGINT: stop accepting, let running
        # jobs finish within --drain-timeout, journal the rest.  A
        # second signal during the drain hard-stops.
        loop = asyncio.get_running_loop()
        draining = False

        def _on_signal(signame: str) -> None:
            nonlocal draining
            if draining:
                print(f"{signame} again; stopping now", file=sys.stderr)
                loop.create_task(server.stop())
                return
            draining = True
            print(
                f"{signame}: draining (up to {args.drain_timeout:.0f}s)",
                file=sys.stderr,
            )
            loop.create_task(server.drain())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, _on_signal, signal.Signals(sig).name
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-unix event loop: fall back to KeyboardInterrupt
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; stopping", file=sys.stderr)
    return 0


#: Which parameter the positional benchmark names of ``repro submit``
#: feed, per job kind.  ``reconfig`` normally takes hot loops via
#: ``--params``; positional names derive loops from benchmark curves.
_SUBMIT_BENCH_PARAM = {
    "identify": "benchmark",
    "curve": "benchmark",
    "pareto": "benchmarks",
    "mlgp": "benchmarks",
    "reconfig": "benchmarks",
    "mtreconfig": "benchmarks",
}


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as json_mod
    import time

    from repro.service.client import ServiceClient

    address: dict = (
        {"socket_path": args.socket}
        if args.socket
        else {"host": args.host, "port": args.port}
    )
    with ServiceClient(
        **address, retries=args.retries, backoff=args.backoff
    ) as client:
        if args.health:
            health = client.health()
            print(format_health(health))
            return 0 if health.get("accepting") else 1
        if args.stats:
            stats = client.stats()
            print(format_table(
                ["counter", "value"], sorted(stats["counters"].items())
            ))
            print(f"queue depth: {stats['queue_depth']}/{stats['queue_size']}"
                  f"  inflight: {stats['inflight']}"
                  f"  workers: {stats['workers']}"
                  f"  pool: {stats['pool']}")
            disk = stats.get("cache", {}).get("disk")
            if disk:
                print(format_table(
                    ["disk tier", "value"], sorted(disk.items())
                ))
            return 0
        if args.shutdown:
            client.shutdown()
            print("server stopping")
            return 0
        if not args.kind:
            raise ReproError(
                "submit needs a job kind (or --stats / --shutdown)"
            )

        params: dict = {}
        if args.benchmarks:
            slot = _SUBMIT_BENCH_PARAM.get(args.kind)
            if slot == "benchmark":
                if len(args.benchmarks) > 1:
                    raise ReproError(
                        f"{args.kind} takes a single benchmark, got "
                        f"{len(args.benchmarks)}"
                    )
                params["benchmark"] = args.benchmarks[0]
            elif slot == "benchmarks":
                params["benchmarks"] = list(args.benchmarks)
            else:
                raise ReproError(
                    f"{args.kind} does not take positional benchmarks; "
                    "use --params"
                )
        if args.params:
            try:
                extra = json_mod.loads(args.params)
                if not isinstance(extra, dict):
                    raise ValueError("not a JSON object")
            except ValueError as exc:
                raise ReproError(f"bad --params: {exc}") from exc
            params.update(extra)

        t0 = time.perf_counter()
        resp = client.submit(
            args.kind,
            params,
            priority=args.priority,
            wait=not (args.no_wait or args.watch),
            timeout=args.timeout,
        )
        job = resp["job"]
        if args.watch:
            for event in client.watch(job["id"]):
                if event.get("done"):
                    job = event["job"]
                    break
                name = event.get("event", "?")
                extras = " ".join(
                    f"{k}={v}" for k, v in sorted(event.items())
                    if k not in ("ok", "event", "t")
                )
                print(f"[{job['id']}] {name} {extras}".rstrip())
            if job["state"] != "done":
                raise ReproError(job.get("error", "job failed"))
        elapsed = time.perf_counter() - t0
        if args.no_wait and not args.watch:
            print(f"{job['id']} queued ({resp['disposition']})")
            return 0
        print(
            f"{job['id']} {job['state']} ({resp['disposition']}, "
            f"{elapsed:.3f}s)"
        )
        print(json_mod.dumps(job.get("result"), indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    spans, metrics = obs.load_trace(args.file)
    print(format_trace_summary(spans, metrics, top=args.top))
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "benchmarks":
        return _cmd_benchmarks()
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "curve":
        return _cmd_curve(args)
    if args.command == "customize":
        return _cmd_customize(args)
    if args.command == "pareto":
        return _cmd_pareto(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "mlgp":
        return _cmd_mlgp(args)
    if args.command == "reconfig":
        return _cmd_reconfig(args)
    if args.command == "mtreconfig":
        return _cmd_mtreconfig(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    :class:`~repro.errors.ReproError` subclasses become a one-line
    ``error:`` message on stderr with exit status 2 instead of a
    traceback — malformed inputs are a user problem, not a crash.
    """
    args = build_parser().parse_args(argv)
    from repro import cache

    if args.cache_dir:
        cache.set_cache_dir(args.cache_dir)
    if args.no_cache:
        cache.set_enabled(False)
    trace_path = getattr(args, "trace", None)
    show_metrics = getattr(args, "metrics", False)
    if trace_path:
        obs.enable_tracing()
    try:
        with obs.span("cli", command=args.command):
            code = _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    if trace_path:
        obs.export_trace(trace_path)
        print(f"trace written to {trace_path}", file=sys.stderr)
    if show_metrics:
        print(format_metrics(obs.metrics_snapshot()))
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
