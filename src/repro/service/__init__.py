"""Customization-as-a-service: a long-running job server over the pipeline.

Every per-stage speedup in this repository (bitset/array engines, fast
Pareto/partitioning paths, the artifact cache) was trapped behind a batch
CLI: each invocation pays full process startup and can only reuse work
through the cold disk cache.  This package wraps the pipeline in a
long-running asyncio **job server** so heavy multi-tenant traffic turns
into cache hits:

* :mod:`repro.service.jobs` — the request-type registry: one
  ``identify`` / ``curve`` / ``pareto`` / ``mlgp`` / ``reconfig`` /
  ``mtreconfig`` job kind per pipeline flow, each with a cheap *resolve*
  step that derives a **content-addressed dedup key** from the existing
  cache digests (:func:`repro.cache.program_fingerprint`,
  :func:`~repro.cache.hot_loops_digest`,
  :func:`~repro.cache.reconfig_tasks_digest`) and a picklable *compute*
  step that runs the flow;
* :mod:`repro.service.server` — :class:`~repro.service.server.JobServer`:
  a bounded priority queue, a process-backed worker pool with
  :mod:`repro.parallel`'s degradation semantics, **in-flight coalescing**
  (concurrent identical requests await one computation) and **at-rest
  dedup** (completed results are stored behind the same key in the
  ``service`` kind of :mod:`repro.cache`, so restarts and *other hosts*
  sharing a cache directory serve them without recomputing), plus a
  JSON-lines protocol over a unix socket or localhost TCP;
* :mod:`repro.service.journal` — the write-ahead job journal
  (:class:`~repro.service.journal.JobJournal`): an append-only JSONL log
  of job lifecycle records with fsync batching, compaction on checkpoint
  and corruption-tolerant replay, so a crashed or drained server replays
  its non-terminal jobs on the next start (exactly-once, because jobs
  are content-keyed);
* :mod:`repro.service.client` — a blocking stdlib client
  (:class:`~repro.service.client.ServiceClient`) used by ``repro submit``,
  the tests and the benchmarks, with optional retry/backoff reconnect
  (``retries=``/``backoff=``) that survives server restarts.

Run a server with ``repro serve --socket /tmp/repro.sock --journal
/var/lib/repro/journal.jsonl`` and submit work with ``repro submit
--socket /tmp/repro.sock curve crc32``.
"""

from repro.service.client import (
    ConnectionLostError,
    ServiceBusyError,
    ServiceClient,
)
from repro.service.jobs import (
    JOB_KINDS,
    compute_job,
    journal_safe_params,
    register_kind,
    resolve_job,
)
from repro.service.journal import JobJournal, replay_journal
from repro.service.server import (
    DrainingError,
    JobServer,
    QueueFullError,
    ServerThread,
)

__all__ = [
    "JOB_KINDS",
    "ConnectionLostError",
    "DrainingError",
    "JobJournal",
    "JobServer",
    "QueueFullError",
    "ServerThread",
    "ServiceBusyError",
    "ServiceClient",
    "compute_job",
    "journal_safe_params",
    "register_kind",
    "replay_journal",
    "resolve_job",
]
