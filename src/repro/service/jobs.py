"""Job kinds of the customization service.

A job kind ties a request name to two functions:

* ``resolve(params) -> (key, normalized_params)`` — **cheap** (no
  enumeration, no solving): fills defaults, validates the request and
  derives the content-addressed dedup key from the same digests the
  artifact cache uses (:func:`repro.cache.program_fingerprint`,
  :func:`~repro.cache.hot_loops_digest`,
  :func:`~repro.cache.reconfig_tasks_digest`).  Two requests that would
  compute the same artifact get the same key even when their surface
  parameters differ in irrelevant ways — the server coalesces them.
* ``compute(params) -> dict`` — the actual pipeline run, returning a
  JSON-serializable result.  Dispatched module-level through
  :func:`compute_job` so a ``(kind, params)`` pair pickles cleanly into a
  process-pool worker.

Bad requests raise :class:`~repro.errors.ReproError` (unknown kind,
unknown benchmark, malformed params) — the server turns those into failed
jobs / error responses, never tracebacks.

Custom kinds can be registered with :func:`register_kind` (tests use this
to inject controllable jobs; embedders can expose bespoke flows).
Registration is process-local: a custom kind is only computable in pool
workers if the registering module is importable there, so tests register
custom kinds on inline (``use_processes=False``) servers.

Benchmark names resolve through :func:`repro.workloads.get_program`, which
includes ingested real-code workloads (:mod:`repro.workloads.registry`):
path-like names and ``$REPRO_WORKLOAD_DIR`` entries re-resolve identically
inside process-pool workers (the path / environment travels with the
process), while in-memory ``register_program`` bindings only resolve on
inline servers.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro import cache
from repro.errors import ReproError

__all__ = [
    "JOB_KINDS",
    "JobKind",
    "compute_job",
    "journal_safe_params",
    "register_kind",
    "resolve_job",
]


@dataclass(frozen=True)
class JobKind:
    """A request type: cheap key derivation + the picklable computation."""

    name: str
    resolve: Callable[[dict], tuple[str, dict]]
    compute: Callable[[dict], dict]


JOB_KINDS: dict[str, JobKind] = {}


def register_kind(
    name: str,
    resolve: Callable[[dict], tuple[str, dict]],
    compute: Callable[[dict], dict],
) -> None:
    """Register (or replace) a job kind under *name*."""
    JOB_KINDS[name] = JobKind(name=name, resolve=resolve, compute=compute)


def resolve_job(kind: str, params: dict | None) -> tuple[str, dict]:
    """Validate a request and derive its dedup key (cheap; may raise)."""
    jk = JOB_KINDS.get(kind)
    if jk is None:
        raise ReproError(
            f"unknown job kind {kind!r}; known: {', '.join(sorted(JOB_KINDS))}"
        )
    return jk.resolve(dict(params or {}))


def compute_job(kind: str, params: dict) -> dict:
    """Run one job's computation (module-level, so it pickles)."""
    jk = JOB_KINDS.get(kind)
    if jk is None:
        raise ReproError(f"unknown job kind {kind!r}")
    return jk.compute(params)


def journal_safe_params(params: dict) -> dict:
    """Canonicalize *params* through a JSON round-trip for the journal.

    The write-ahead journal (:mod:`repro.service.journal`) replays
    ``(kind, params)`` pairs across a server restart, so journaled
    params must survive JSON serialization *and* resolve to the same
    content key when loaded back (tuples come back as lists — the
    builtin kinds' resolve steps already normalize to JSON types).
    Raises :class:`~repro.errors.ReproError` for params a journal could
    not faithfully replay (sets, objects, NaN...), so the caller can
    degrade to a non-durable job instead of corrupting the journal.
    """
    try:
        return json.loads(json.dumps(params, sort_keys=True, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"job params are not JSON-serializable for the journal: {exc}"
        ) from exc


def _pool_entry(spec: tuple[str, dict]) -> tuple[dict, dict]:
    """Process-pool wrapper: compute plus the worker's obs payload.

    Mirrors :func:`repro.parallel._captured_job`: the worker captures its
    spans and metric deltas so the server can merge them into its own
    trace/metrics view (cache hit counters from workers stay visible).
    """
    from repro import obs

    obs.begin_child_capture()
    result = compute_job(*spec)
    return result, obs.end_child_capture()


# ----------------------------------------------------------------------
# Param helpers
# ----------------------------------------------------------------------
def _take(params: dict, defaults: dict[str, Any], kind: str) -> dict:
    """Defaults + validation: unknown parameter names are user errors."""
    unknown = set(params) - set(defaults)
    if unknown:
        raise ReproError(
            f"unknown parameter(s) for {kind!r}: {', '.join(sorted(unknown))}"
        )
    out = dict(defaults)
    out.update(params)
    return out


def _benchmarks(value: Any, kind: str) -> tuple[str, ...]:
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value or not all(
        isinstance(b, str) for b in value
    ):
        raise ReproError(f"{kind!r} needs a non-empty benchmark name list")
    return tuple(value)


def _programs(names: tuple[str, ...]):
    from repro.workloads import programs_for

    return programs_for(names)


def _joint_fingerprint(programs) -> str:
    return "+".join(cache.program_fingerprint(p) for p in programs)


_ENUM_ENGINES = ("bitset", "array", "compiled", "auto", "reference")
_MLGP_ENGINES = ("fast", "array", "compiled", "auto", "reference")


def _engine_key(p: dict, kind: str, engines: tuple[str, ...]) -> str:
    """Validate the engine param and return its cache-key tag.

    ``"auto"`` and ``"compiled"`` resolve per the host's JIT toolchain,
    so their artifact keys carry the toolchain qualifier
    (:func:`repro.jit.engine_cache_tag`) — two hosts that would compute
    different (deterministic) results under binding budgets must not
    dedupe against each other through a shared journal or cache.
    """
    engine = p["engine"]
    if engine not in engines:
        raise ReproError(
            f"unknown {kind!r} engine {engine!r}; "
            f"use one of {', '.join(engines)}"
        )
    from repro import jit

    return jit.engine_cache_tag(engine)


# ----------------------------------------------------------------------
# identify — candidate library for one benchmark program
# ----------------------------------------------------------------------
_IDENTIFY_DEFAULTS: dict[str, Any] = {
    "benchmark": None,
    "max_inputs": 4,
    "max_outputs": 2,
    "engine": "bitset",
}


def _resolve_identify(params: dict) -> tuple[str, dict]:
    p = _take(params, _IDENTIFY_DEFAULTS, "identify")
    if not isinstance(p["benchmark"], str):
        raise ReproError("'identify' needs a benchmark name")
    from repro.workloads import get_program

    fp = cache.program_fingerprint(get_program(p["benchmark"]))
    # Engine IS folded into the key: the engines agree on the search
    # space but can return different candidate sets under binding
    # budgets, so results from different engines are distinct artifacts
    # and must not dedupe against each other.
    key = cache.artifact_key(
        fp,
        svc="identify",
        max_inputs=p["max_inputs"],
        max_outputs=p["max_outputs"],
        engine=_engine_key(p, "identify", _ENUM_ENGINES),
    )
    return key, p


def _compute_identify(params: dict) -> dict:
    from repro.enumeration import build_candidate_library
    from repro.workloads import get_program

    stats: dict = {}
    lib = build_candidate_library(
        get_program(params["benchmark"]),
        max_inputs=params["max_inputs"],
        max_outputs=params["max_outputs"],
        engine=params["engine"],
        stats=stats,
    )
    candidates = lib.candidates
    return {
        "benchmark": params["benchmark"],
        "n_candidates": len(candidates),
        "max_area": max((c.area for c in candidates), default=0.0),
        "visited": stats.get("visited", 0),
        "feasible": stats.get("feasible", 0),
    }


# ----------------------------------------------------------------------
# curve — one task's (area, cycles) configuration curve
# ----------------------------------------------------------------------
_CURVE_DEFAULTS: dict[str, Any] = {
    "benchmark": None,
    "objective": "avg",
    "engine": "bitset",
}


def _resolve_curve(params: dict) -> tuple[str, dict]:
    p = _take(params, _CURVE_DEFAULTS, "curve")
    if not isinstance(p["benchmark"], str):
        raise ReproError("'curve' needs a benchmark name")
    from repro.workloads import get_program

    fp = cache.program_fingerprint(get_program(p["benchmark"]))
    key = cache.artifact_key(
        fp,
        svc="curve",
        objective=p["objective"],
        engine=_engine_key(p, "curve", _ENUM_ENGINES),
    )
    return key, p


def _compute_curve(params: dict) -> dict:
    from repro.core import build_task
    from repro.workloads import get_program

    task = build_task(
        get_program(params["benchmark"]),
        objective=params["objective"],
        engine=params["engine"],
    )
    return {
        "benchmark": params["benchmark"],
        "wcet": task.wcet,
        "configurations": [
            [c.area, c.cycles] for c in task.configurations
        ],
    }


# ----------------------------------------------------------------------
# pareto — utilization-area Pareto front over a task set
# ----------------------------------------------------------------------
_PARETO_DEFAULTS: dict[str, Any] = {
    "benchmarks": None,
    "eps": 0.69,
    "utilization": 1.0,
    "engine": "bitset",
}


def _resolve_pareto(params: dict) -> tuple[str, dict]:
    p = _take(params, _PARETO_DEFAULTS, "pareto")
    p["benchmarks"] = list(_benchmarks(p["benchmarks"], "pareto"))
    fp = _joint_fingerprint(_programs(tuple(p["benchmarks"])))
    key = cache.artifact_key(
        fp,
        svc="pareto",
        eps=p["eps"],
        utilization=p["utilization"],
        engine=_engine_key(p, "pareto", _ENUM_ENGINES),
    )
    return key, p


def _compute_pareto(params: dict) -> dict:
    from repro.core.flow import build_tasks
    from repro.pareto import TaskCurve, approx_utilization_curve

    tasks = build_tasks(
        _programs(tuple(params["benchmarks"])), engine=params["engine"]
    )
    alpha = len(tasks) / params["utilization"]
    curves = [
        TaskCurve(
            period=alpha * t.wcet,
            workloads=tuple(c.cycles for c in t.configurations),
            areas=tuple(round(c.area) for c in t.configurations),
        )
        for t in tasks
    ]
    front = approx_utilization_curve(curves, params["eps"])
    return {
        "benchmarks": params["benchmarks"],
        "eps": params["eps"],
        "n_points": len(front),
        "points": [
            {"area": pt.cost, "utilization": pt.value} for pt in front
        ],
    }


# ----------------------------------------------------------------------
# mlgp — iterative on-demand CI generation (Ch. 5)
# ----------------------------------------------------------------------
_MLGP_DEFAULTS: dict[str, Any] = {
    "benchmarks": None,
    "utilization": 1.05,
    "target": 1.0,
    "seed": 0,
    "engine": "fast",
}


def _resolve_mlgp(params: dict) -> tuple[str, dict]:
    p = _take(params, _MLGP_DEFAULTS, "mlgp")
    # Validated but NOT folded into the key: the MLGP engine family is
    # bit-identical (including "compiled"/"auto", whose batch verdicts
    # land in the same mask-keyed memo tables), so any engine's result
    # deduplicates against every other's.
    _engine_key(p, "mlgp", _MLGP_ENGINES)
    p["benchmarks"] = list(_benchmarks(p["benchmarks"], "mlgp"))
    fp = _joint_fingerprint(_programs(tuple(p["benchmarks"])))
    key = cache.artifact_key(
        fp,
        svc="mlgp",
        utilization=p["utilization"],
        target=p["target"],
        seed=p["seed"],
    )
    return key, p


def _compute_mlgp(params: dict) -> dict:
    from repro.mlgp.flow import iterative_customization

    programs = _programs(tuple(params["benchmarks"]))
    alpha = len(programs) / params["utilization"]
    periods = [alpha * p.wcet() for p in programs]
    result = iterative_customization(
        programs,
        periods,
        u_target=params["target"],
        seed=params["seed"],
        engine=params["engine"],
    )
    return {
        "benchmarks": params["benchmarks"],
        "utilization": result.utilization,
        "target": result.target,
        "met_target": result.met_target,
        "n_custom_instructions": len(result.custom_instructions),
        "total_area": result.total_area,
        "iterations": len(result.records),
    }


# ----------------------------------------------------------------------
# reconfig — hot-loop partitioning (Ch. 6; default: JPEG case study)
# ----------------------------------------------------------------------
_RECONFIG_DEFAULTS: dict[str, Any] = {
    "loops": None,  # hot-loops dict (repro.io schema); None = JPEG
    "benchmarks": None,  # alternatively: derive loops from benchmark curves
    "max_versions": 4,  # versions kept per derived loop
    "max_area": None,
    "rho": None,
    "seed": 0,
    "engine": "fast",
}


def _reconfig_inputs(p: dict):
    if p.get("benchmarks"):
        # Derive hot loops from the benchmarks' configuration curves
        # (works for ingested real-code workloads too).  This runs
        # enumeration, so it only happens in the compute step — the
        # resolve step keys on program fingerprints instead.
        from repro import frontend

        loops, trace = frontend.loops_from_programs(
            _programs(_benchmarks(p["benchmarks"], "reconfig")),
            max_versions=p["max_versions"],
        )
        max_area = p["max_area"] if p["max_area"] is not None else 2048.0
        rho = p["rho"] if p["rho"] is not None else 15.0
        return loops, trace, max_area, rho
    if p["loops"] is not None:
        from repro import io as repro_io

        loops, trace = repro_io.hot_loops_from_dict(p["loops"])
        if not trace:
            raise ReproError("'reconfig' loops carry no loop trace")
        max_area = p["max_area"] if p["max_area"] is not None else 2048.0
        rho = p["rho"] if p["rho"] is not None else 15.0
    else:
        from repro.workloads import (
            JPEG_MAX_AREA,
            JPEG_RHO,
            jpeg_loops,
            jpeg_trace,
        )

        loops, trace = jpeg_loops(), jpeg_trace()
        max_area = p["max_area"] if p["max_area"] is not None else JPEG_MAX_AREA
        rho = p["rho"] if p["rho"] is not None else JPEG_RHO
    return loops, trace, max_area, rho


def _resolve_reconfig(params: dict) -> tuple[str, dict]:
    p = _take(params, _RECONFIG_DEFAULTS, "reconfig")
    if p["loops"] is not None and p["benchmarks"]:
        raise ReproError("'reconfig' takes either 'loops' or 'benchmarks'")
    if p["benchmarks"]:
        # Keep resolve cheap: key on the programs' content fingerprints,
        # not on the derived loops (deriving them runs enumeration).
        p["benchmarks"] = list(_benchmarks(p["benchmarks"], "reconfig"))
        fp = _joint_fingerprint(_programs(tuple(p["benchmarks"])))
        key = cache.artifact_key(
            fp,
            svc="reconfig",
            max_versions=p["max_versions"],
            max_area=p["max_area"],
            rho=p["rho"],
            seed=p["seed"],
        )
        return key, p
    loops, trace, max_area, rho = _reconfig_inputs(p)
    key = cache.artifact_key(
        cache.hot_loops_digest(loops, trace),
        svc="reconfig",
        max_area=max_area,
        rho=rho,
        seed=p["seed"],
    )
    return key, p


def _compute_reconfig(params: dict) -> dict:
    from repro.reconfig import iterative_partition

    loops, trace, max_area, rho = _reconfig_inputs(params)
    sol = iterative_partition(
        loops,
        trace,
        max_area,
        rho,
        seed=params["seed"],
        engine=params["engine"],
    )
    return {
        "gain": sol.gain,
        "n_configurations": sol.n_configurations,
        "selection": list(sol.partition.selection),
        "max_area": max_area,
        "rho": rho,
    }


# ----------------------------------------------------------------------
# mtreconfig — multi-task spatial/temporal partitioning (Ch. 7)
# ----------------------------------------------------------------------
_MTRECONFIG_DEFAULTS: dict[str, Any] = {
    "benchmarks": [],
    "tasks": 12,
    "seed": 0,
    "utilization": 1.2,
    "engine": "dp",
    "fabric_area": None,
    "rho": None,
}


def _mtreconfig_inputs(p: dict):
    from repro.mtreconfig import synthetic_reconfig_tasks, tasks_from_benchmarks

    if p["benchmarks"]:
        tasks = tasks_from_benchmarks(
            _benchmarks(p["benchmarks"], "mtreconfig"),
            target_utilization=p["utilization"],
        )
    else:
        tasks = synthetic_reconfig_tasks(
            p["tasks"], seed=p["seed"], target_utilization=p["utilization"]
        )
    fabric_area = p["fabric_area"]
    if fabric_area is None:
        fabric_area = 2.0 * max(
            (v.area for t in tasks for v in t.versions), default=1.0
        )
    rho = p["rho"]
    if rho is None:
        rho = 0.01 * min((t.period for t in tasks), default=1.0)
    return tasks, fabric_area, rho


def _resolve_mtreconfig(params: dict) -> tuple[str, dict]:
    p = _take(params, _MTRECONFIG_DEFAULTS, "mtreconfig")
    if p["engine"] not in ("dp", "ilp", "static"):
        raise ReproError(f"unknown mtreconfig engine {p['engine']!r}")
    tasks, fabric_area, rho = _mtreconfig_inputs(p)
    key = cache.artifact_key(
        cache.reconfig_tasks_digest(tasks),
        svc="mtreconfig",
        engine=p["engine"],
        fabric_area=fabric_area,
        rho=rho,
    )
    return key, p


def _compute_mtreconfig(params: dict) -> dict:
    import time

    from repro.mtreconfig import dp_solution, ilp_solution, static_solution

    tasks, fabric_area, rho = _mtreconfig_inputs(params)
    if params["engine"] == "dp":
        report = dp_solution(tasks, fabric_area, rho)
        solution, elapsed = report.solution, report.elapsed
    elif params["engine"] == "ilp":
        report = ilp_solution(tasks, fabric_area, rho)
        solution, elapsed = report.solution, report.elapsed
    else:
        t0 = time.perf_counter()
        solution = static_solution(tasks, fabric_area, rho=rho)
        elapsed = time.perf_counter() - t0
    n_configs = len({
        g for g, j in zip(solution.group_of, solution.selection) if j != 0
    })
    return {
        "engine": params["engine"],
        "utilization": solution.utilization,
        "schedulable": solution.utilization <= 1.0 + 1e-9,
        "n_configurations": n_configs,
        "fabric_area": fabric_area,
        "rho": rho,
        "elapsed": elapsed,
    }


register_kind("identify", _resolve_identify, _compute_identify)
register_kind("curve", _resolve_curve, _compute_curve)
register_kind("pareto", _resolve_pareto, _compute_pareto)
register_kind("mlgp", _resolve_mlgp, _compute_mlgp)
register_kind("reconfig", _resolve_reconfig, _compute_reconfig)
register_kind("mtreconfig", _resolve_mtreconfig, _compute_mtreconfig)
