"""Blocking JSON-lines client for the job server.

Used by ``repro submit``, the tests and the benchmarks.  One client is
one connection; requests are serialized on it (the server multiplexes
across connections, not within one).  Stdlib only: a :mod:`socket`
plus newline-delimited JSON.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable, Iterator

from repro.errors import ReproError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a :class:`~repro.service.server.JobServer` endpoint.

    Address it with either ``socket_path=...`` (unix socket) or
    ``host=...``/``port=...`` (localhost TCP) — matching
    :attr:`repro.service.server.ServerThread.address`, so
    ``ServiceClient(**thread.address)`` always connects.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float | None = 300.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ReproError("need socket_path or port to reach the server")
        try:
            if socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(socket_path)
            else:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
        except OSError as exc:
            where = socket_path or f"{host}:{port}"
            raise ReproError(f"cannot reach service at {where}: {exc}") from exc
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _send(self, req: dict[str, Any]) -> None:
        self._file.write(json.dumps(req).encode() + b"\n")
        self._file.flush()

    def _recv(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection")
        return json.loads(line)

    def request(self, req: dict[str, Any]) -> dict[str, Any]:
        """One request, one response; raises on a server-side error."""
        self._send(req)
        resp = self._recv()
        if not resp.get("ok") and "error" in resp and "job" not in resp:
            raise ReproError(resp["error"])
        return resp

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None = None,
        priority: int = 0,
        wait: bool = True,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Submit a job; with ``wait`` (default) returns the finished job.

        The response carries ``disposition`` (``queued`` / ``coalesced``
        / ``cached``) and ``job`` (including ``result`` when done).  A
        failed job raises with its error.
        """
        req: dict[str, Any] = {
            "op": "submit",
            "kind": kind,
            "params": params or {},
            "priority": priority,
            "wait": wait,
        }
        if timeout is not None:
            req["timeout"] = timeout
        resp = self.request(req)
        if wait and not resp.get("ok"):
            raise ReproError(resp.get("error", "job failed"))
        return resp

    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        req: dict[str, Any] = {"op": "wait", "job_id": job_id}
        if timeout is not None:
            req["timeout"] = timeout
        resp = self.request(req)
        if not resp.get("ok"):
            raise ReproError(resp.get("error", "job failed"))
        return resp

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})["job"]

    def watch(
        self,
        job_id: str,
        callback: Callable[[dict[str, Any]], None] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Stream a job's lifecycle events until its terminal summary.

        Yields each event dict (``queued`` / ``started`` / ``spans`` /
        ``done`` / ``failed``) and finally the ``{"done": true, "job":
        ...}`` summary; *callback*, when given, also receives each one.
        """
        self._send({"op": "watch", "job_id": job_id})
        while True:
            event = self._recv()
            if not event.get("ok") and "error" in event:
                raise ReproError(event["error"])
            if callback is not None:
                callback(event)
            yield event
            if event.get("done"):
                return

    def jobs(self) -> list[dict[str, Any]]:
        return self.request({"op": "jobs"})["jobs"]

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
