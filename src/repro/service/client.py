"""Blocking JSON-lines client for the job server.

Used by ``repro submit``, the tests and the benchmarks.  One client is
one connection; requests are serialized on it (the server multiplexes
across connections, not within one).  Stdlib only: a :mod:`socket`
plus newline-delimited JSON.

Self-healing: with ``retries=N`` the client survives a server restart.
A lost connection (:class:`ConnectionLostError`) or a retryable server
rejection (:class:`ServiceBusyError` — queue full, draining, a job
failed by a drain) is retried up to N times with jittered exponential
backoff, reconnecting first when the connection dropped.  This is safe
because jobs are content-keyed: resubmitting after a restart is
idempotent — a job that completed before the restart comes back as an
at-rest cache hit.  ``wait``/``watch`` re-attach across restarts by
resubmitting the remembered job spec when the new server reports
``unknown job_id``.  Every retry increments ``service.client.retries``.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Callable, Iterator

from repro import obs
from repro.errors import ReproError

__all__ = ["ConnectionLostError", "ServiceBusyError", "ServiceClient"]

#: Remembered job specs for wait/watch re-attach, per client (bounded).
_REMEMBER_CAP = 256

#: Ceiling on a single backoff sleep, seconds.
_BACKOFF_CAP = 10.0


class ConnectionLostError(ReproError):
    """The server connection dropped (closed, reset, or unreachable)."""


class ServiceBusyError(ReproError):
    """The server rejected the request but marked it retryable
    (bounded queue full, draining, or a job failed by a drain)."""


class ServiceClient:
    """Talk to a :class:`~repro.service.server.JobServer` endpoint.

    Address it with either ``socket_path=...`` (unix socket) or
    ``host=...``/``port=...`` (localhost TCP) — matching
    :attr:`repro.service.server.ServerThread.address`, so
    ``ServiceClient(**thread.address)`` always connects.

    ``retries``/``backoff`` arm the self-healing described in the
    module docstring; the default ``retries=0`` keeps the old
    fail-fast behaviour.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float | None = 300.0,
        retries: int = 0,
        backoff: float = 0.25,
    ) -> None:
        if socket_path is None and port is None:
            raise ReproError("need socket_path or port to reach the server")
        if retries < 0:
            raise ReproError("retries must be >= 0")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._rng = random.Random()
        self._sock: socket.socket | None = None
        self._file: Any = None
        self._submitted: dict[str, dict[str, Any]] = {}
        self._connect()

    # ------------------------------------------------------------------
    # Connection
    # ------------------------------------------------------------------
    @property
    def _where(self) -> str:
        return self.socket_path or f"{self.host}:{self.port}"

    def _connect(self) -> None:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot reach service at {self._where}: {exc}"
            ) from exc
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _ensure_connected(self) -> None:
        if self._file is None:
            self._connect()

    def _drop_connection(self) -> None:
        file, sock = self._file, self._sock
        self._file = self._sock = None
        for closable in (file, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:  # pragma: no cover - best-effort close
                    pass

    def _backoff_delay(self, attempt: int) -> float:
        """Jittered exponential backoff for retry *attempt* (1-based)."""
        base = min(_BACKOFF_CAP, self.backoff * (2 ** (attempt - 1)))
        return base * (0.5 + self._rng.random())

    def _with_retries(self, fn: Callable[[], Any]) -> Any:
        """Run *fn*, retrying retryable failures with backoff.

        A :class:`ConnectionLostError` drops the connection so the next
        attempt reconnects (the server may have restarted); a
        :class:`ServiceBusyError` retries on the live connection.
        """
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                return fn()
            except (ConnectionLostError, ServiceBusyError) as exc:
                if isinstance(exc, ConnectionLostError):
                    self._drop_connection()
                attempt += 1
                if attempt > self.retries:
                    raise
                obs.inc("service.client.retries")
                time.sleep(self._backoff_delay(attempt))

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _send(self, req: dict[str, Any]) -> None:
        if self._file is None:
            raise ConnectionLostError(
                f"not connected to service at {self._where}"
            )
        try:
            self._file.write(json.dumps(req).encode() + b"\n")
            self._file.flush()
        except OSError as exc:
            raise ConnectionLostError(
                f"lost connection to service at {self._where}: {exc}"
            ) from exc

    def _recv(self) -> dict[str, Any]:
        if self._file is None:
            raise ConnectionLostError(
                f"not connected to service at {self._where}"
            )
        try:
            line = self._file.readline()
        except OSError as exc:
            raise ConnectionLostError(
                f"lost connection to service at {self._where}: {exc}"
            ) from exc
        if not line:
            raise ConnectionLostError(
                f"service at {self._where} closed the connection"
            )
        try:
            return json.loads(line)
        except ValueError as exc:
            # Torn line / garbage: surface a one-line ReproError naming
            # the endpoint instead of leaking a JSONDecodeError.
            raise ReproError(
                f"malformed response from service at {self._where}: {exc}"
            ) from exc

    def request(self, req: dict[str, Any]) -> dict[str, Any]:
        """One request, one response; raises on a server-side error.

        Responses flagged ``retryable`` (queue full, draining, a job
        failed by a drain) raise :class:`ServiceBusyError` so the retry
        layer — or the caller — can back off and resubmit.
        """
        self._send(req)
        resp = self._recv()
        if not resp.get("ok") and resp.get("retryable"):
            raise ServiceBusyError(
                resp.get("error", "service busy; retry later")
            )
        if not resp.get("ok") and "error" in resp and "job" not in resp:
            raise ReproError(resp["error"])
        return resp

    # ------------------------------------------------------------------
    # Re-attach bookkeeping
    # ------------------------------------------------------------------
    def _remember(self, job_id: str, spec: dict[str, Any]) -> None:
        self._submitted[job_id] = spec
        while len(self._submitted) > _REMEMBER_CAP:
            self._submitted.pop(next(iter(self._submitted)))

    def _resubmit(self, spec: dict[str, Any], wait: bool) -> dict[str, Any]:
        """Idempotent resubmit of a remembered spec (content-keyed)."""
        return self.request({
            "op": "submit",
            "kind": spec["kind"],
            "params": spec["params"],
            "priority": spec["priority"],
            "wait": wait,
        })

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(
            self._with_retries(
                lambda: self.request({"op": "ping"})
            ).get("pong")
        )

    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None = None,
        priority: int = 0,
        wait: bool = True,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Submit a job; with ``wait`` (default) returns the finished job.

        The response carries ``disposition`` (``queued`` / ``coalesced``
        / ``cached``) and ``job`` (including ``result`` when done).  A
        failed job raises with its error.  With ``retries`` armed the
        submit transparently survives a server restart: the content key
        makes the resubmit idempotent.
        """
        req: dict[str, Any] = {
            "op": "submit",
            "kind": kind,
            "params": params or {},
            "priority": priority,
            "wait": wait,
        }
        if timeout is not None:
            req["timeout"] = timeout
        resp = self._with_retries(lambda: self.request(req))
        if wait and not resp.get("ok"):
            raise ReproError(resp.get("error", "job failed"))
        job = resp.get("job")
        if isinstance(job, dict) and "id" in job:
            self._remember(
                job["id"],
                {"kind": kind, "params": params or {}, "priority": priority},
            )
        return resp

    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Wait for *job_id*; re-attaches across a server restart by
        resubmitting the remembered spec when the id is unknown."""
        req: dict[str, Any] = {"op": "wait", "job_id": job_id}
        if timeout is not None:
            req["timeout"] = timeout

        def attempt() -> dict[str, Any]:
            try:
                return self.request(req)
            except ServiceBusyError:
                raise
            except ReproError as exc:
                spec = self._submitted.get(job_id)
                if spec is not None and "unknown job_id" in str(exc):
                    # The server restarted and forgot the id: the spec
                    # is content-keyed, so resubmitting is the same job.
                    return self._resubmit(spec, wait=True)
                raise

        resp = self._with_retries(attempt)
        if not resp.get("ok"):
            raise ReproError(resp.get("error", "job failed"))
        return resp

    def status(self, job_id: str) -> dict[str, Any]:
        return self._with_retries(
            lambda: self.request({"op": "status", "job_id": job_id})["job"]
        )

    def watch(
        self,
        job_id: str,
        callback: Callable[[dict[str, Any]], None] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Stream a job's lifecycle events until its terminal summary.

        Yields each event dict (``queued`` / ``started`` / ``spans`` /
        ``done`` / ``failed``) and finally the ``{"done": true, "job":
        ...}`` summary; *callback*, when given, also receives each one.

        With ``retries`` armed the stream survives a server restart:
        the watch re-attaches (resubmitting the remembered spec when
        the id is unknown) and already-yielded events are skipped, so
        consumers never see a duplicate.
        """
        watch_id = job_id
        yielded = 0
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                self._send({"op": "watch", "job_id": watch_id})
                skip = yielded
                while True:
                    event = self._recv()
                    if not event.get("ok") and "error" in event:
                        if event.get("retryable"):
                            raise ServiceBusyError(event["error"])
                        raise ReproError(event["error"])
                    if skip > 0 and not event.get("done"):
                        # Replayed after a reconnect: already yielded.
                        skip -= 1
                        continue
                    if callback is not None:
                        callback(event)
                    yield event
                    yielded += 1
                    if event.get("done"):
                        return
            except (ConnectionLostError, ServiceBusyError) as exc:
                if isinstance(exc, ConnectionLostError):
                    self._drop_connection()
                attempt += 1
                if attempt > self.retries:
                    raise
                obs.inc("service.client.retries")
                time.sleep(self._backoff_delay(attempt))
            except ReproError as exc:
                spec = self._submitted.get(job_id)
                if spec is not None and "unknown job_id" in str(exc):
                    # Restarted server: resubmit (idempotent) and watch
                    # the replacement job's stream instead.
                    resp = self._resubmit(spec, wait=False)
                    watch_id = resp["job"]["id"]
                    self._remember(watch_id, spec)
                    continue
                raise

    def jobs(self) -> list[dict[str, Any]]:
        return self._with_retries(
            lambda: self.request({"op": "jobs"})["jobs"]
        )

    def stats(self) -> dict[str, Any]:
        return self._with_retries(
            lambda: self.request({"op": "stats"})["stats"]
        )

    def health(self) -> dict[str, Any]:
        """The server's cheap readiness snapshot (the ``health`` op)."""
        return self._with_retries(
            lambda: self.request({"op": "health"})["health"]
        )

    def shutdown(self) -> None:
        """Ask the server to stop.

        The server closes the connection as it stops, so the reply and
        the close race: a connection closed after the request was sent
        IS a successful shutdown, not an error.
        """
        try:
            self._ensure_connected()
            self.request({"op": "shutdown"})
        except ConnectionLostError:
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
